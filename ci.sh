#!/bin/sh
# CI gate. Run from the repo root.
#
#   ./ci.sh          fast tier-1 gate: release build, dev-profile tests
#                    (debug assertions on), formatting
#   ./ci.sh --full   everything above plus the release-profile workspace
#                    suites, the bench-serve concurrency smokes, the
#                    daemon serving smokes (a v1 serial client and a
#                    pipelined multi-shard client, each verified
#                    closed-loop with a hot reload and an
#                    injected-corrupt reload), the exact-scheduler
#                    oracle smoke and fleet fuzz (docs/oracle.md), the
#                    static-analysis lint smoke and defect-recall gate
#                    (docs/analysis.md), the workspace clippy gate plus
#                    the panic-free lang/opt gate, and the perf
#                    regression gate against the committed BENCH_8.json
#                    baseline (which now includes the serve/load/*
#                    latency family)
set -eux

FULL=0
case "${1:-}" in
--full) FULL=1 ;;
"") ;;
*)
    echo "usage: ./ci.sh [--full]" >&2
    exit 1
    ;;
esac

# Every intermediate file (metrics dumps, images, lint reports, sockets)
# lives in one artifact directory: removed on success, kept on failure
# so CI can upload it for the post-mortem.  The trap also reaps a
# still-running daemon, so an assertion failing mid-smoke can't leak the
# serve process into the next CI step.
ART="${MDESC_CI_ARTIFACTS:-$(mktemp -d "${TMPDIR:-/tmp}/mdesc-ci.XXXXXX")}"
mkdir -p "$ART"
SERVE_PID=""
cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -eq 0 ]; then
        rm -rf "$ART"
    else
        echo "ci: FAILED (status $status); artifacts kept in $ART" >&2
    fi
}
trap cleanup EXIT
trap 'exit 129' INT TERM

# expect <pattern> <file>: the smoke assertions, with a message naming
# the missing pattern instead of a bare grep exit under set -e.
expect() {
    grep -q "$1" "$2" || {
        echo "ci: expected $1 in $2" >&2
        exit 1
    }
}

# wait_for_socket <path>: daemons bind asynchronously after fork.
wait_for_socket() {
    for _ in $(seq 1 100); do
        test -S "$1" && return 0
        sleep 0.1
    done
    echo "ci: daemon socket $1 never appeared" >&2
    exit 1
}

cargo build --release

# Functional tests run under the dev profile, with debug assertions
# enabled, so internal invariants are checked rather than compiled out.
cargo test -q

cargo fmt --check

test "$FULL" -eq 1 || exit 0

# The concurrency suites (engine pool, conformance, determinism) also run
# under the release profile: optimized codegen reorders more aggressively,
# which is where a data race or fold bug would actually surface.
# --workspace pulls in the member crates' own test targets (the engine
# suites live in crates/engine/tests/, outside the root package).
cargo test --release --workspace -q

# Concurrent-serving smoke: a short bench-serve batch on two workers with
# a pinned seed must finish clean — every job accounted for, no worker
# panics, and no poisoned locks surfaced in the published metrics.  The
# jobs_completed count is exact because the region stream is
# seed-deterministic and the engine's fold is worker-count invariant.
METRICS="$ART/bench-serve-w2.json"
./target/release/mdesc bench-serve --jobs 2 --regions 2000 --seed 42 \
    --metrics "$METRICS"
expect '"engine/jobs_completed":2000' "$METRICS"
expect '"engine/worker_panics":0' "$METRICS"
if grep -qi 'poison' "$METRICS"; then
    echo 'ci: poisoned lock surfaced in bench-serve metrics' >&2
    exit 1
fi

# The same smoke at eight workers: oversubscribed relative to most CI
# boxes, so the chunked/stealing hand-off and per-worker state reuse get
# exercised under real contention — and must still lose zero jobs.
METRICS8="$ART/bench-serve-w8.json"
./target/release/mdesc bench-serve --jobs 8 --regions 2000 --seed 42 \
    --metrics "$METRICS8"
expect '"engine/jobs_completed":2000' "$METRICS8"
expect '"engine/worker_panics":0' "$METRICS8"

# Shared images for both serving smokes: a good reload target (compiled
# from a bundled description) and a corrupt one the daemon must reject.
GOOD_HMDL="$ART/pentium.hmdl"
GOOD_IMG="$ART/pentium.lmdes"
SPARC_HMDL="$ART/supersparc.hmdl"
SPARC_IMG="$ART/supersparc.lmdes"
BAD_IMG="$ART/corrupt.lmdes"
./target/release/mdesc bundled pentium >"$GOOD_HMDL"
./target/release/mdesc compile "$GOOD_HMDL" -o "$GOOD_IMG"
./target/release/mdesc bundled supersparc >"$SPARC_HMDL"
./target/release/mdesc compile "$SPARC_HMDL" -o "$SPARC_IMG"
printf 'not an lmdes image and not hmdl either {' >"$BAD_IMG"

# Serving smoke, v1 serial client: boot a single-shard daemon, then
# drive a verified closed-loop client through 2000 requests with one
# good hot reload and one injected-corrupt reload fired mid-run.  The
# client pipelines nothing and sends no request ids — this is the
# protocol-v1 byte stream, so the daemon's serial rendezvous path stays
# covered.  serve-load exits nonzero if a single request is dropped, an
# answer fails client-side re-scheduling verification, or a reload
# outcome surprises it (good rejected / corrupt accepted); the daemon's
# own metrics must then show the serve counters present, nothing left
# in flight, and zero engine panics.
SERVE_SOCK="$ART/serve-v1.sock"
SERVE_METRICS="$ART/serve-v1-metrics.json"
./target/release/mdesc --metrics "$SERVE_METRICS" serve --machine k5 \
    --socket "$SERVE_SOCK" --workers 4 &
SERVE_PID=$!
wait_for_socket "$SERVE_SOCK"
./target/release/mdesc serve-load --socket "$SERVE_SOCK" --machine k5 \
    --requests 2000 --connections 4 \
    --reload-at "700:$GOOD_IMG" --reload-corrupt-at "1400:$BAD_IMG" \
    --shutdown
wait "$SERVE_PID"
SERVE_PID=""
expect '"serve/shed"' "$SERVE_METRICS"
expect '"serve/dropped":0' "$SERVE_METRICS"
expect '"engine/worker_panics":0' "$SERVE_METRICS"

# Serving smoke, pipelined multi-shard: one daemon serving K5 and
# Pentium as independent shards, driven by a pipelined client (8
# requests in flight per connection) spraying requests across both
# shards, with a good hot reload targeted at the Pentium shard and a
# corrupt reload targeted at K5 fired mid-run.  The per-shard counters
# then prove reload isolation: Pentium swapped images exactly once, K5
# rejected its corrupt image and swapped nothing, and neither shard
# dropped a request.
SHARD_SOCK="$ART/serve-sharded.sock"
SHARD_METRICS="$ART/serve-sharded-metrics.json"
./target/release/mdesc --metrics "$SHARD_METRICS" serve \
    --machine k5,pentium --socket "$SHARD_SOCK" --workers 4 &
SERVE_PID=$!
wait_for_socket "$SHARD_SOCK"
./target/release/mdesc serve-load --socket "$SHARD_SOCK" \
    --machines k5,pentium --pipeline 8 --requests 2000 --connections 4 \
    --reload-at "700@pentium:$SPARC_IMG" \
    --reload-corrupt-at "1400@k5:$BAD_IMG" \
    --shutdown
wait "$SERVE_PID"
SERVE_PID=""
expect '"serve/dropped":0' "$SHARD_METRICS"
expect '"serve/shard/K5/dropped":0' "$SHARD_METRICS"
expect '"serve/shard/Pentium/dropped":0' "$SHARD_METRICS"
expect '"serve/shard/Pentium/reloads":1' "$SHARD_METRICS"
expect '"serve/shard/K5/reloads":0' "$SHARD_METRICS"
expect '"serve/shard/K5/reload_failures":1' "$SHARD_METRICS"
expect '"serve/shard/Pentium/reload_failures":0' "$SHARD_METRICS"
expect '"engine/worker_panics":0' "$SHARD_METRICS"

# Oracle smoke: the exact branch-and-bound scheduler differentials the
# production schedulers over the seed-42 region stream on all six
# bundled machines.  Region counts are seed-deterministic, so the grep
# demands the exact aggregate — any drift means the workload or the
# oracle's op cap changed — and the published metrics must record zero
# invariant inversions (an oracle schedule failing replay, a production
# schedule beating the proven minimum, an II escaping its sandwich).
ORACLE_METRICS="$ART/oracle-metrics.json"
ORACLE_OUT="$ART/oracle-out.txt"
./target/release/mdesc --metrics "$ORACLE_METRICS" oracle --seed 42 \
    | tee "$ORACLE_OUT"
expect '^oracle: 6 machine(s), 72 regions' "$ORACLE_OUT"
expect '"sched/oracle_violations":0' "$ORACLE_METRICS"

# Fleet fuzz: 64 structurally diverse synthetic machines, each run
# through the guarded optimization pipeline (guard incidents must be
# zero) and then the same oracle differential on the optimized spec.
FLEET_METRICS="$ART/fleet-metrics.json"
./target/release/mdesc --metrics "$FLEET_METRICS" oracle --fleet 64 --seed 42
expect '"sched/oracle_violations":0' "$FLEET_METRICS"
expect '"sched/oracle_guard_incidents":0' "$FLEET_METRICS"

# Static-analysis smoke: the bundled machines must stay free of fatal
# diagnostics, with an exact diagnostic count — the analyzer's findings
# on these descriptions are deterministic, so any drift means an
# analysis changed its coverage (update this line and docs/analysis.md
# deliberately, not accidentally).  The full report must also be
# byte-identical run to run: tooling diffs it.
LINT_A="$ART/lint-a.txt"
LINT_B="$ART/lint-b.txt"
./target/release/mdesc lint --machine all | tee "$LINT_A"
expect '^lint: 6 machine(s), 79 diagnostic(s) (0 fatal, 66 warn, 13 info)$' "$LINT_A"
./target/release/mdesc lint --machine all >"$LINT_B"
cmp "$LINT_A" "$LINT_B"

# Analyzer recall gate: a 16-machine fleet with known-bad structure
# planted into every machine (one dominated option + one unsatisfiable
# class each) must be reported at 100% recall, and the planted
# unsatisfiable classes must gate the run with the validation exit
# code (3) — the same code a fatally diagnosed `mdesc check` input gets.
LINT_DEFECTS="$ART/lint-defects.txt"
set +e
./target/release/mdesc lint --fleet 16 --seed 42 --defects >"$LINT_DEFECTS"
LINT_STATUS=$?
set -e
test "$LINT_STATUS" -eq 3
expect '^lint: recall 32/32 planted defect(s) reported$' "$LINT_DEFECTS"

# The whole workspace (every target, tests included) must be clean
# under clippy at -D warnings.
cargo clippy --workspace --all-targets -- -D warnings

# Input-reachable front-end and optimizer code must additionally stay
# panic-free: no unwrap/expect outside #[cfg(test)] modules (test code
# is exempt because only the lib targets are linted here).  See
# docs/robustness.md.
cargo clippy -p mdes-lang -p mdes-opt -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Perf regression gate: rerun the deterministic suite and compare against
# the committed baseline.  Op counts must match exactly (the workloads are
# seed-deterministic); timings compare the fastest of K repetitions with a
# 25% per-work-unit tolerance — shared-runner interference (CPU-quota
# throttling after the suites above) only ever adds time, so min-of-K with
# generous K finds an unthrottled window.  The gate also enforces the
# hardware-aware batch_scaling floor (engine w1 ÷ w4 parallel speedup:
# >= 3.0 on hosts with 4+ CPUs, a 0.85 no-harm bound on smaller boxes),
# the absolute oracle_gap_hinted ceiling (hinted schedules at most
# 15% over the proven minimum — see docs/performance.md and
# docs/oracle.md), and — new with the schema-4 baseline — the daemon's
# closed-loop serve latency: serve_p50_us/serve_p99_us from the
# serve/load/* family may not drift past the baseline by more than the
# same tolerance.  Exit code 5 on regression.
PERF_JSON="$ART/perf-report.json"
./target/release/mdesc perf --reps 15 --json "$PERF_JSON" \
    --baseline BENCH_8.json --max-regression 0.25
