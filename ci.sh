#!/bin/sh
# CI gate. Run from the repo root.
#
#   ./ci.sh          fast tier-1 gate: release build, dev-profile tests
#                    (debug assertions on), formatting
#   ./ci.sh --full   everything above plus the release-profile workspace
#                    suites, the bench-serve concurrency smokes, the
#                    daemon serving smoke (verified closed-loop client
#                    with a hot reload and an injected-corrupt reload),
#                    the exact-scheduler oracle smoke and fleet fuzz
#                    (docs/oracle.md), the static-analysis lint smoke
#                    and defect-recall gate (docs/analysis.md), the
#                    workspace clippy gate plus the panic-free
#                    lang/opt gate, and the perf regression gate
#                    against the committed BENCH_7.json baseline
set -eux

FULL=0
case "${1:-}" in
--full) FULL=1 ;;
"") ;;
*)
    echo "usage: ./ci.sh [--full]" >&2
    exit 1
    ;;
esac

cargo build --release

# Functional tests run under the dev profile, with debug assertions
# enabled, so internal invariants are checked rather than compiled out.
cargo test -q

cargo fmt --check

test "$FULL" -eq 1 || exit 0

# The concurrency suites (engine pool, conformance, determinism) also run
# under the release profile: optimized codegen reorders more aggressively,
# which is where a data race or fold bug would actually surface.
# --workspace pulls in the member crates' own test targets (the engine
# suites live in crates/engine/tests/, outside the root package).
cargo test --release --workspace -q

# Concurrent-serving smoke: a short bench-serve batch on two workers with
# a pinned seed must finish clean — every job accounted for, no worker
# panics, and no poisoned locks surfaced in the published metrics.  The
# jobs_completed count is exact because the region stream is
# seed-deterministic and the engine's fold is worker-count invariant.
METRICS="$(mktemp)"
./target/release/mdesc bench-serve --jobs 2 --regions 2000 --seed 42 \
    --metrics "$METRICS"
grep -q '"engine/jobs_completed":2000' "$METRICS"
grep -q '"engine/worker_panics":0' "$METRICS"
if grep -qi 'poison' "$METRICS"; then
    echo 'ci: poisoned lock surfaced in bench-serve metrics' >&2
    exit 1
fi
rm -f "$METRICS"

# The same smoke at eight workers: oversubscribed relative to most CI
# boxes, so the chunked/stealing hand-off and per-worker state reuse get
# exercised under real contention — and must still lose zero jobs.
METRICS8="$(mktemp)"
./target/release/mdesc bench-serve --jobs 8 --regions 2000 --seed 42 \
    --metrics "$METRICS8"
grep -q '"engine/jobs_completed":2000' "$METRICS8"
grep -q '"engine/worker_panics":0' "$METRICS8"
rm -f "$METRICS8"

# Serving smoke: boot the daemon, then drive a verified closed-loop
# client through 2000 requests with one good hot reload and one
# injected-corrupt reload fired mid-run.  serve-load exits nonzero if a
# single request is dropped, an answer fails client-side re-scheduling
# verification, or a reload outcome surprises it (good rejected /
# corrupt accepted); the daemon's own metrics must then show the serve
# counters present, nothing left in flight, and zero engine panics.
SERVE_SOCK="${TMPDIR:-/tmp}/mdesc-ci-serve-$$.sock"
SERVE_METRICS="$(mktemp)"
GOOD_HMDL="$(mktemp)"
GOOD_IMG="$(mktemp)"
BAD_IMG="$(mktemp)"
./target/release/mdesc bundled pentium >"$GOOD_HMDL"
./target/release/mdesc compile "$GOOD_HMDL" -o "$GOOD_IMG"
printf 'not an lmdes image and not hmdl either {' >"$BAD_IMG"
./target/release/mdesc --metrics "$SERVE_METRICS" serve --machine k5 \
    --socket "$SERVE_SOCK" --workers 4 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    test -S "$SERVE_SOCK" && break
    sleep 0.1
done
./target/release/mdesc serve-load --socket "$SERVE_SOCK" --machine k5 \
    --requests 2000 --connections 4 \
    --reload-at "700:$GOOD_IMG" --reload-corrupt-at "1400:$BAD_IMG" \
    --shutdown
wait "$SERVE_PID"
grep -q '"serve/shed"' "$SERVE_METRICS"
grep -q '"serve/dropped":0' "$SERVE_METRICS"
grep -q '"engine/worker_panics":0' "$SERVE_METRICS"
rm -f "$SERVE_METRICS" "$GOOD_HMDL" "$GOOD_IMG" "$BAD_IMG" "$SERVE_SOCK"

# Oracle smoke: the exact branch-and-bound scheduler differentials the
# production schedulers over the seed-42 region stream on all six
# bundled machines.  Region counts are seed-deterministic, so the grep
# demands the exact aggregate — any drift means the workload or the
# oracle's op cap changed — and the published metrics must record zero
# invariant inversions (an oracle schedule failing replay, a production
# schedule beating the proven minimum, an II escaping its sandwich).
ORACLE_METRICS="$(mktemp)"
ORACLE_OUT="$(mktemp)"
./target/release/mdesc --metrics "$ORACLE_METRICS" oracle --seed 42 \
    | tee "$ORACLE_OUT"
grep -q '^oracle: 6 machine(s), 72 regions' "$ORACLE_OUT"
grep -q '"sched/oracle_violations":0' "$ORACLE_METRICS"
rm -f "$ORACLE_METRICS" "$ORACLE_OUT"

# Fleet fuzz: 64 structurally diverse synthetic machines, each run
# through the guarded optimization pipeline (guard incidents must be
# zero) and then the same oracle differential on the optimized spec.
FLEET_METRICS="$(mktemp)"
./target/release/mdesc --metrics "$FLEET_METRICS" oracle --fleet 64 --seed 42
grep -q '"sched/oracle_violations":0' "$FLEET_METRICS"
grep -q '"sched/oracle_guard_incidents":0' "$FLEET_METRICS"
rm -f "$FLEET_METRICS"

# Static-analysis smoke: the bundled machines must stay free of fatal
# diagnostics, with an exact diagnostic count — the analyzer's findings
# on these descriptions are deterministic, so any drift means an
# analysis changed its coverage (update this line and docs/analysis.md
# deliberately, not accidentally).  The full report must also be
# byte-identical run to run: tooling diffs it.
LINT_A="$(mktemp)"
LINT_B="$(mktemp)"
./target/release/mdesc lint --machine all | tee "$LINT_A"
grep -q '^lint: 6 machine(s), 79 diagnostic(s) (0 fatal, 66 warn, 13 info)$' "$LINT_A"
./target/release/mdesc lint --machine all >"$LINT_B"
cmp "$LINT_A" "$LINT_B"
rm -f "$LINT_A" "$LINT_B"

# Analyzer recall gate: a 16-machine fleet with known-bad structure
# planted into every machine (one dominated option + one unsatisfiable
# class each) must be reported at 100% recall, and the planted
# unsatisfiable classes must gate the run with the validation exit
# code (3) — the same code a fatally diagnosed `mdesc check` input gets.
LINT_DEFECTS="$(mktemp)"
set +e
./target/release/mdesc lint --fleet 16 --seed 42 --defects >"$LINT_DEFECTS"
LINT_STATUS=$?
set -e
test "$LINT_STATUS" -eq 3
grep -q '^lint: recall 32/32 planted defect(s) reported$' "$LINT_DEFECTS"
rm -f "$LINT_DEFECTS"

# The whole workspace (every target, tests included) must be clean
# under clippy at -D warnings.
cargo clippy --workspace --all-targets -- -D warnings

# Input-reachable front-end and optimizer code must additionally stay
# panic-free: no unwrap/expect outside #[cfg(test)] modules (test code
# is exempt because only the lib targets are linted here).  See
# docs/robustness.md.
cargo clippy -p mdes-lang -p mdes-opt -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Perf regression gate: rerun the deterministic suite and compare against
# the committed baseline.  Op counts must match exactly (the workloads are
# seed-deterministic); timings compare the fastest of K repetitions with a
# 25% per-work-unit tolerance — shared-runner interference (CPU-quota
# throttling after the suites above) only ever adds time, so min-of-K with
# generous K finds an unthrottled window.  The gate also enforces the
# hardware-aware batch_scaling floor (engine w1 ÷ w4 parallel speedup:
# >= 3.0 on hosts with 4+ CPUs, a 0.85 no-harm bound on smaller boxes)
# and the absolute oracle_gap_hinted ceiling (hinted schedules at most
# 15% over the proven minimum — see docs/performance.md and
# docs/oracle.md).  Exit code 5 on regression.
PERF_JSON="$(mktemp)"
./target/release/mdesc perf --reps 15 --json "$PERF_JSON" \
    --baseline BENCH_7.json --max-regression 0.25
rm -f "$PERF_JSON"
