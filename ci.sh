#!/bin/sh
# CI gate. Run from the repo root.
#
#   ./ci.sh          fast tier-1 gate: release build, dev-profile tests
#                    (debug assertions on), formatting
#   ./ci.sh --full   everything above plus the release-profile workspace
#                    suites, the bench-serve concurrency smokes, the
#                    panic-free clippy gate, and the perf regression gate
#                    against the committed BENCH_6.json baseline
set -eux

FULL=0
case "${1:-}" in
--full) FULL=1 ;;
"") ;;
*)
    echo "usage: ./ci.sh [--full]" >&2
    exit 1
    ;;
esac

cargo build --release

# Functional tests run under the dev profile, with debug assertions
# enabled, so internal invariants are checked rather than compiled out.
cargo test -q

cargo fmt --check

test "$FULL" -eq 1 || exit 0

# The concurrency suites (engine pool, conformance, determinism) also run
# under the release profile: optimized codegen reorders more aggressively,
# which is where a data race or fold bug would actually surface.
# --workspace pulls in the member crates' own test targets (the engine
# suites live in crates/engine/tests/, outside the root package).
cargo test --release --workspace -q

# Concurrent-serving smoke: a short bench-serve batch on two workers with
# a pinned seed must finish clean — every job accounted for, no worker
# panics, and no poisoned locks surfaced in the published metrics.  The
# jobs_completed count is exact because the region stream is
# seed-deterministic and the engine's fold is worker-count invariant.
METRICS="$(mktemp)"
./target/release/mdesc bench-serve --jobs 2 --regions 2000 --seed 42 \
    --metrics "$METRICS"
grep -q '"engine/jobs_completed":2000' "$METRICS"
grep -q '"engine/worker_panics":0' "$METRICS"
if grep -qi 'poison' "$METRICS"; then
    echo 'ci: poisoned lock surfaced in bench-serve metrics' >&2
    exit 1
fi
rm -f "$METRICS"

# The same smoke at eight workers: oversubscribed relative to most CI
# boxes, so the chunked/stealing hand-off and per-worker state reuse get
# exercised under real contention — and must still lose zero jobs.
METRICS8="$(mktemp)"
./target/release/mdesc bench-serve --jobs 8 --regions 2000 --seed 42 \
    --metrics "$METRICS8"
grep -q '"engine/jobs_completed":2000' "$METRICS8"
grep -q '"engine/worker_panics":0' "$METRICS8"
rm -f "$METRICS8"

# Input-reachable front-end and optimizer code must stay panic-free: no
# unwrap/expect outside #[cfg(test)] modules (test code is exempt
# because only the lib targets are linted here).  See docs/robustness.md.
cargo clippy -p mdes-lang -p mdes-opt -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Perf regression gate: rerun the deterministic suite and compare against
# the committed baseline.  Op counts must match exactly (the workloads are
# seed-deterministic); timings compare the fastest of K repetitions with a
# 25% per-work-unit tolerance — shared-runner interference (CPU-quota
# throttling after the suites above) only ever adds time, so min-of-K with
# generous K finds an unthrottled window.  The gate also enforces the
# hardware-aware batch_scaling floor (engine w1 ÷ w4 parallel speedup:
# >= 3.0 on hosts with 4+ CPUs, a 0.85 no-harm bound on smaller boxes —
# see docs/performance.md).  Exit code 5 on regression.
PERF_JSON="$(mktemp)"
./target/release/mdesc perf --reps 15 --json "$PERF_JSON" \
    --baseline BENCH_6.json --max-regression 0.25
rm -f "$PERF_JSON"
