#!/bin/sh
# Tier-1 gate: build, test, and formatting. Run from the repo root.
set -eux

cargo build --release
cargo test -q
cargo fmt --check
