#!/bin/sh
# Tier-1 gate: build, test, lint, and formatting. Run from the repo root.
set -eux

cargo build --release

# Functional tests run under the dev profile, with debug assertions
# enabled, so internal invariants are checked rather than compiled out.
cargo test -q

# Input-reachable front-end and optimizer code must stay panic-free: no
# unwrap/expect outside #[cfg(test)] modules (test code is exempt
# because only the lib targets are linted here).  See docs/robustness.md.
cargo clippy -p mdes-lang -p mdes-opt -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

cargo fmt --check
