#!/bin/sh
# Tier-1 gate: build, test, lint, and formatting. Run from the repo root.
set -eux

cargo build --release

# Functional tests run under the dev profile, with debug assertions
# enabled, so internal invariants are checked rather than compiled out.
cargo test -q

# The concurrency suites (engine pool, conformance, determinism) also run
# under the release profile: optimized codegen reorders more aggressively,
# which is where a data race or fold bug would actually surface.
# --workspace pulls in the member crates' own test targets (the engine
# suites live in crates/engine/tests/, outside the root package).
cargo test --release --workspace -q

# Concurrent-serving smoke: a short bench-serve batch on two workers must
# finish clean — no worker panics and no poisoned locks surfaced in the
# published metrics.
METRICS="$(mktemp)"
./target/release/mdesc bench-serve --jobs 2 --regions 2000 \
    --metrics "$METRICS"
grep -q '"engine/worker_panics":0' "$METRICS"
if grep -qi 'poison' "$METRICS"; then
    echo 'ci: poisoned lock surfaced in bench-serve metrics' >&2
    exit 1
fi
rm -f "$METRICS"

# Input-reachable front-end and optimizer code must stay panic-free: no
# unwrap/expect outside #[cfg(test)] modules (test code is exempt
# because only the lib targets are linted here).  See docs/robustness.md.
cargo clippy -p mdes-lang -p mdes-opt -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

cargo fmt --check
