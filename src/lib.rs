//! Umbrella crate for the MDES reproduction: re-exports every subsystem so
//! examples and downstream users can depend on one crate.
//!
//! See the individual crates for full documentation:
//!
//! * [`analyze`] — the static diagnostics engine (stable `MD` codes,
//!   semantic dominance proofs, unsatisfiable classes, image triage);
//! * [`core`] — representations, checker, RU map, stats, memory model;
//! * [`lang`] — the high-level machine-description language (HMDL);
//! * [`opt`] — the MDES transformation pipeline;
//! * [`guard`] — the stage guard: validation, differential oracles, rollback;
//! * [`machines`] — the four processor descriptions from the paper;
//! * [`sched`] — dependence graphs and the list / modulo schedulers;
//! * [`workload`] — synthetic SPEC CINT92-equivalent workload generators;
//! * [`automata`] — the finite-state-automaton baseline;
//! * [`telemetry`] — pipeline-wide timing spans, counters, and gauges;
//! * [`engine`] — the concurrent batch-scheduling engine (shared LMDES,
//!   per-worker scheduler state);
//! * [`oracle`] — the exact branch-and-bound scheduler used as a
//!   differential oracle with optimality-gap tracking;
//! * [`perf`] — the seed-deterministic benchmark harness and regression
//!   gate.

#![forbid(unsafe_code)]

pub use mdes_analyze as analyze;
pub use mdes_automata as automata;
pub use mdes_core as core;
pub use mdes_engine as engine;
pub use mdes_guard as guard;
pub use mdes_lang as lang;
pub use mdes_machines as machines;
pub use mdes_opt as opt;
pub use mdes_oracle as oracle;
pub use mdes_perf as perf;
pub use mdes_sched as sched;
pub use mdes_serve as serve;
pub use mdes_telemetry as telemetry;
pub use mdes_workload as workload;
