//! Dynamic soundness of the static analyzer's dead-option claims.
//!
//! `mdes_analyze` reports an OR-tree option as dead (`MD002` syntactic
//! dominance, `MD003` difference-set dominance) only when **no** probe
//! stream can ever select it.  That is a strong claim about runtime
//! behaviour derived purely statically, so this harness replays seeded
//! reserve/release streams through the production checkers (both usage
//! encodings) and the finite-state-automaton baseline on every bundled
//! machine, a 64-machine synthetic fleet, and a defect-seeded fleet with
//! *known* dead options planted in — and asserts that no selection ever
//! lands on a statically-dead `(tree, option)` pair.
//!
//! The defect fleet keeps the harness honest: its planted dominated
//! options guarantee the dead set is non-empty, so the assertion is
//! exercised, not vacuous.  The lint report itself must also be
//! byte-identical across runs — CI diffs it.

use std::collections::BTreeSet;

use mdes::analyze::{analyze_spec, render_text};
use mdes::automata::Automaton;
use mdes::core::spec::MdesSpec;
use mdes::core::{CheckStats, Checker, Choice, ClassId, CompiledMdes, RuMap, UsageEncoding};
use mdes::machines::Machine;
use mdes::workload::{fleet, fleet_with_defects, Pcg32};
use proptest::prelude::*;

/// Probes per machine per encoding; the issue floor is 1k.
const PROBES: usize = 1_024;

/// The six bundled machines: the four `Machine` variants plus the two
/// HMDL-only reconstructions.
fn bundled() -> Vec<(String, MdesSpec)> {
    let mut machines: Vec<(String, MdesSpec)> = Machine::all()
        .into_iter()
        .map(|m| (m.name().to_lowercase(), m.spec()))
        .collect();
    machines.push(("pentiumpro".to_string(), mdes::machines::pentium_pro()));
    machines.push((
        "superspark_approx".to_string(),
        mdes::machines::approximate_superspark(),
    ));
    machines
}

/// The analyzer's dead set for `spec`, as compiled `(tree, option)`
/// index pairs.  Compilation preserves spec indices (one compiled
/// object per spec object, in id order), so the pairs compare directly
/// against [`Choice::selected`].
fn dead_set(spec: &MdesSpec) -> BTreeSet<(usize, usize)> {
    analyze_spec(spec).dead_options().into_iter().collect()
}

/// Replays a seeded reserve/release stream and asserts no selection
/// picks a statically-dead option.  Reservations are *held* (up to a
/// churn window) so later probes see realistic contention — dominance
/// claims must survive arbitrary RU-map states, not just an empty map.
fn replay_checker(
    label: &str,
    spec: &MdesSpec,
    encoding: UsageEncoding,
    seed: u64,
    dead: &BTreeSet<(usize, usize)>,
) -> usize {
    let compiled = CompiledMdes::compile(spec, encoding).unwrap();
    let checker = Checker::new(&compiled);
    let num_classes = compiled.classes().len();
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut rng = Pcg32::new(seed, 0x5059);
    let mut held: Vec<Choice> = Vec::new();
    let mut selections = 0usize;
    for _ in 0..PROBES {
        if !held.is_empty() && rng.gen_range(4) == 0 {
            let slot = rng.gen_range(held.len() as u32) as usize;
            let choice = held.swap_remove(slot);
            checker.release(&mut ru, &choice);
        }
        let class = ClassId::from_index(rng.gen_range(num_classes as u32) as usize);
        let time = rng.gen_range(64) as i32;
        if let Some(choice) = checker.try_reserve(&mut ru, class, time, &mut stats) {
            let trees = &compiled.class(class).or_trees;
            for (k, &opt) in choice.selected.iter().enumerate() {
                let pair = (trees[k] as usize, opt as usize);
                assert!(
                    !dead.contains(&pair),
                    "{label} ({encoding:?}): statically-dead option {} of tree {} \
                     selected for class {} at time {time}",
                    pair.1,
                    pair.0,
                    compiled.class(class).name,
                );
                selections += 1;
            }
            if held.len() < 48 {
                held.push(choice);
            } else {
                checker.release(&mut ru, &choice);
            }
        }
    }
    selections
}

/// Drives the automaton and the table checker through one in-order
/// stream: accept/reject decisions must agree, and every accepted
/// selection (taken from the table side — the automaton's transitions
/// are built from the same checker) must avoid the dead set.
fn replay_automaton(label: &str, spec: &MdesSpec, seed: u64, dead: &BTreeSet<(usize, usize)>) {
    let compiled = CompiledMdes::compile(spec, UsageEncoding::BitVector).unwrap();
    let checker = Checker::new(&compiled);
    let mut fsa = Automaton::new(&compiled);
    let num_classes = compiled.classes().len();
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut rng = Pcg32::new(seed, 0x5059);
    let mut state = Automaton::START;
    let mut cycle = 0i32;
    for step in 0..PROBES {
        if rng.gen_range(4) == 0 {
            cycle += 1;
            state = fsa.advance(state);
            continue;
        }
        let class = ClassId::from_index(rng.gen_range(num_classes as u32) as usize);
        let table = checker.try_reserve(&mut ru, class, cycle, &mut stats);
        match fsa.issue(state, class) {
            Some(next) => {
                let choice = table.unwrap_or_else(|| {
                    panic!("{label} step {step}: FSA accepted, tables rejected")
                });
                let trees = &compiled.class(class).or_trees;
                for (k, &opt) in choice.selected.iter().enumerate() {
                    assert!(
                        !dead.contains(&(trees[k] as usize, opt as usize)),
                        "{label}: automaton-accepted issue selected dead option {opt} \
                         of tree {}",
                        trees[k],
                    );
                }
                state = next;
            }
            None => assert!(
                table.is_none(),
                "{label} step {step}: FSA rejected, tables accepted"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Bundled machines, arbitrary stream seeds, both encodings plus
    /// the automaton: statically-dead options are never selected.
    #[test]
    fn bundled_machines_never_select_dead_options(seed in any::<u64>()) {
        for (name, spec) in bundled() {
            let dead = dead_set(&spec);
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                replay_checker(&name, &spec, encoding, seed, &dead);
            }
            replay_automaton(&name, &spec, seed, &dead);
        }
    }
}

#[test]
fn fleet_machines_never_select_dead_options() {
    for machine in fleet(0x50FA, 64) {
        let dead = dead_set(&machine.spec);
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            replay_checker(&machine.name, &machine.spec, encoding, 0xD1CE, &dead);
        }
    }
}

/// The defect fleet has planted dominated options, so here the dead set
/// is provably non-empty: the soundness assertion runs with teeth.  The
/// planted unsatisfiable class also rides along — its reservations must
/// simply always fail, never wedge or panic the checkers.
#[test]
fn defect_fleets_have_nonempty_dead_sets_that_are_never_selected() {
    let mut live_selections = 0usize;
    for seeded in fleet_with_defects(0xBAD5, 16, 1.0) {
        let dead = dead_set(&seeded.machine.spec);
        assert!(
            !dead.is_empty(),
            "{}: planted dominated option must enter the dead set",
            seeded.machine.name
        );
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            live_selections += replay_checker(
                &seeded.machine.name,
                &seeded.machine.spec,
                encoding,
                7,
                &dead,
            );
        }
    }
    // The streams genuinely scheduled work around the planted defects.
    assert!(live_selections > 0);
}

#[test]
fn lint_reports_are_byte_identical_across_runs() {
    let render = || -> String {
        bundled()
            .iter()
            .map(|(name, spec)| render_text(name, &analyze_spec(spec)))
            .collect()
    };
    assert_eq!(render(), render());
}
