//! The transformations optimize the *resource-constraint* description;
//! everything else the MDES carries — classes, latencies, flags, opcode
//! vocabulary, forwarding exceptions — must survive untouched.

use mdes::core::spec::MdesSpec;
use mdes::machines::Machine;
use mdes::opt::pipeline::{optimize, PipelineConfig};

/// (class names, class latencies, #opcodes, #bypasses).
type Metadata = (Vec<String>, Vec<(i32, i32, i32)>, usize, usize);

fn metadata(spec: &MdesSpec) -> Metadata {
    let names = spec
        .class_ids()
        .map(|id| spec.class(id).name.clone())
        .collect();
    let latencies = spec
        .class_ids()
        .map(|id| {
            let l = spec.class(id).latency;
            (l.dest, l.src, l.mem)
        })
        .collect();
    (
        names,
        latencies,
        spec.opcodes().len(),
        spec.bypasses().len(),
    )
}

#[test]
fn pipeline_preserves_all_non_constraint_metadata() {
    for machine in Machine::all() {
        let original = machine.spec();
        let before = metadata(&original);
        for config in [
            PipelineConfig::section5(),
            PipelineConfig::through_section7(),
            PipelineConfig::full(),
        ] {
            let mut spec = original.clone();
            optimize(&mut spec, &config);
            assert_eq!(
                metadata(&spec),
                before,
                "{}: metadata changed under {config:?}",
                machine.name()
            );
            // Opcode resolutions still point at the same class names.
            for (mnemonic, class) in spec.opcodes() {
                assert_eq!(
                    spec.class(*class).name,
                    original
                        .class(original.opcode_class(mnemonic).unwrap())
                        .name,
                    "{}: opcode {mnemonic} re-pointed",
                    machine.name()
                );
            }
        }
    }
}

#[test]
fn expansion_preserves_all_non_constraint_metadata() {
    for machine in Machine::all() {
        let original = machine.spec();
        let before = metadata(&original);
        let (expanded, _) = mdes::opt::expand_to_or(&original);
        assert_eq!(metadata(&expanded), before, "{}", machine.name());
    }
}

#[test]
fn approximate_description_is_never_stricter_than_the_accurate_one() {
    // The FU-mix approximation drops constraints; its greedy schedules
    // can only be shorter or equal, never longer (it promises at least
    // as much as the real machine allows).
    use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
    use mdes::sched::ListScheduler;
    use mdes::workload::{generate, WorkloadConfig};

    let machine = Machine::SuperSparc;
    let accurate_spec = machine.spec();
    let approx_spec = mdes::machines::approximate_superspark();
    let accurate = CompiledMdes::compile(&accurate_spec, UsageEncoding::BitVector).unwrap();
    let approx = CompiledMdes::compile(&approx_spec, UsageEncoding::BitVector).unwrap();
    let workload = generate(
        machine,
        &accurate_spec,
        &WorkloadConfig::paper_default(machine).with_total_ops(1_500),
    );
    let mut stats_a = CheckStats::new();
    let mut stats_b = CheckStats::new();
    for block in &workload.blocks {
        let real = ListScheduler::new(&accurate).schedule(block, &mut stats_a);
        let optimistic = ListScheduler::new(&approx).schedule(block, &mut stats_b);
        assert!(
            optimistic.length <= real.length,
            "approximation was stricter: {} vs {}",
            optimistic.length,
            real.length
        );
    }
}
