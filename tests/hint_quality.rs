//! Hint-first scheduling quality, measured against the exact oracle.
//!
//! The HMDL `hint` attribute reorders option trials; it must never
//! change *whether* a schedule is valid, only *how long* the schedule
//! is — and the length penalty has to stay inside the absolute
//! optimality-gap ceiling the perf gate enforces
//! ([`mdes::perf::ORACLE_GAP_CEILING`]). Both schedulers, hinted and
//! unhinted, consume the identical seeded region stream on every
//! bundled machine so the comparison is apples-to-apples.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::oracle::{differential_gap, GapReport, OracleScheduler};
use mdes::perf::ORACLE_GAP_CEILING;
use mdes::sched::{DepGraph, ListScheduler};
use mdes::workload::{generate_regions, RegionConfig};

/// The six bundled machines: the four `Machine` variants plus the two
/// HMDL-only descriptions.
fn bundled() -> Vec<(String, mdes::core::MdesSpec)> {
    let mut specs: Vec<(String, mdes::core::MdesSpec)> = mdes::machines::Machine::all()
        .into_iter()
        .map(|machine| (machine.name().to_lowercase(), machine.spec()))
        .collect();
    specs.push(("pentiumpro".into(), mdes::machines::pentium_pro()));
    specs.push((
        "superspark_approx".into(),
        mdes::machines::approximate_superspark(),
    ));
    specs
}

#[test]
fn hints_change_length_not_validity() {
    for (name, spec) in bundled() {
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let blocks = generate_regions(&spec, &RegionConfig::small(10).with_seed(42)).blocks;
        let unhinted = ListScheduler::new(&mdes);
        let hinted = ListScheduler::new(&mdes).with_hints(true);
        let mut stats = CheckStats::new();
        for (index, block) in blocks.iter().enumerate() {
            let graph = DepGraph::build(block, &mdes);
            let plain = unhinted.schedule(block, &mut stats);
            let biased = hinted.schedule(block, &mut stats);
            // Validity is hint-independent: both placements must replay
            // cleanly against the same dependence graph and RU map.
            plain
                .verify(&graph, &mdes)
                .unwrap_or_else(|e| panic!("{name} region {index}: unhinted fails replay: {e}"));
            biased
                .verify(&graph, &mdes)
                .unwrap_or_else(|e| panic!("{name} region {index}: hinted fails replay: {e}"));
            assert_eq!(
                plain.ops.len(),
                biased.ops.len(),
                "{name} region {index}: hints dropped or duplicated operations"
            );
        }
    }
}

#[test]
fn hinted_gap_stays_under_the_perf_ceiling() {
    // Same node budget as the `oracle/bnb/*` perf family: regions that
    // exhaust it keep the list incumbent, which only pulls the measured
    // gap toward 1 — it cannot hide a blown ceiling caused by hints.
    let mut total = GapReport::default();
    for (name, spec) in bundled() {
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let blocks = generate_regions(&spec, &RegionConfig::small(10).with_seed(42)).blocks;
        let oracle = OracleScheduler::new(&mdes).with_node_limit(200_000);
        let mut stats = CheckStats::new();
        let report = differential_gap(&mdes, &blocks, &oracle, &mut stats);
        assert_eq!(
            report.violations, 0,
            "{name}: {:?}",
            report.violation_details
        );
        total.merge(&report);
    }
    assert!(total.regions > 0, "differential measured nothing");
    assert!(
        total.gap() >= 1.0 && total.hinted_gap() >= 1.0,
        "a gap below 1.0 means a production scheduler beat the oracle"
    );
    assert!(
        total.hinted_gap() <= ORACLE_GAP_CEILING,
        "hinted optimality gap {:.3} blew the {ORACLE_GAP_CEILING} ceiling",
        total.hinted_gap()
    );
}
