//! Model-based property test: the RU map must behave exactly like a set
//! of (cycle, resource) pairs under any interleaving of reserve, release
//! and query operations.

use proptest::prelude::*;
use std::collections::HashSet;

use mdes::core::RuMap;

#[derive(Clone, Debug)]
enum Action {
    Reserve(i32, u64),
    Release(i32, u64),
    Query(i32, u64),
    Clear,
}

fn arb_action() -> impl Strategy<Value = Action> {
    let cycle = -20i32..40;
    let mask = 0u64..(1 << 12);
    prop_oneof![
        4 => (cycle.clone(), mask.clone()).prop_map(|(c, m)| Action::Reserve(c, m)),
        3 => (cycle.clone(), mask.clone()).prop_map(|(c, m)| Action::Release(c, m)),
        4 => (cycle, mask).prop_map(|(c, m)| Action::Query(c, m)),
        1 => Just(Action::Clear),
    ]
}

/// Reference model: explicit set of reserved (cycle, bit) pairs.
#[derive(Default)]
struct Model {
    reserved: HashSet<(i32, u32)>,
}

impl Model {
    fn apply(&mut self, action: &Action) {
        match *action {
            Action::Reserve(cycle, mask) => {
                for bit in 0..64 {
                    if mask & (1 << bit) != 0 {
                        self.reserved.insert((cycle, bit));
                    }
                }
            }
            Action::Release(cycle, mask) => {
                for bit in 0..64 {
                    if mask & (1 << bit) != 0 {
                        self.reserved.remove(&(cycle, bit));
                    }
                }
            }
            Action::Clear => self.reserved.clear(),
            Action::Query(..) => {}
        }
    }

    fn is_free(&self, cycle: i32, mask: u64) -> bool {
        (0..64).all(|bit| mask & (1 << bit) == 0 || !self.reserved.contains(&(cycle, bit)))
    }

    fn population(&self) -> usize {
        self.reserved.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rumap_matches_the_set_model(actions in prop::collection::vec(arb_action(), 1..80)) {
        let mut ru = RuMap::new();
        let mut model = Model::default();
        for action in &actions {
            match *action {
                Action::Reserve(cycle, mask) => ru.reserve(cycle, mask),
                Action::Release(cycle, mask) => ru.release(cycle, mask),
                Action::Clear => ru.clear(),
                Action::Query(cycle, mask) => {
                    prop_assert_eq!(ru.is_free(cycle, mask), model.is_free(cycle, mask));
                }
            }
            model.apply(action);
            prop_assert_eq!(ru.population(), model.population());
        }
        // Min/max reserved cycles agree with the model.
        let model_min = model.reserved.iter().map(|&(c, _)| c).min();
        let model_max = model.reserved.iter().map(|&(c, _)| c).max();
        prop_assert_eq!(ru.min_reserved_cycle(), model_min);
        prop_assert_eq!(ru.max_reserved_cycle(), model_max);
    }
}
