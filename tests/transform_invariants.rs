//! Property tests for the transformation passes on randomly generated
//! machines: collision-vector preservation, idempotence, monotone size.

mod common;

use common::{arb_spec_plan, build_spec};
use mdes::core::collision::forbidden_latencies;
use mdes::core::size::measure;
use mdes::core::spec::MdesSpec;
use mdes::core::{CheckStats, Checker, ClassId, CompiledMdes, RuMap, UsageEncoding};
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::opt::timeshift::Direction;
use proptest::prelude::*;

/// All pairwise collision vectors of a spec, keyed by option index.
/// Valid for comparing specs whose option pools are index-aligned.
fn collision_matrix(spec: &MdesSpec) -> Vec<Vec<std::collections::BTreeSet<i32>>> {
    let ids: Vec<_> = spec.option_ids().collect();
    ids.iter()
        .map(|&a| {
            ids.iter()
                .map(|&b| forbidden_latencies(spec.option(a), spec.option(b)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The usage-time transformation preserves every pairwise collision
    /// vector (the Section-7 theory), in both directions.
    #[test]
    fn time_shift_preserves_collision_vectors(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        let before = collision_matrix(&spec);
        for direction in [Direction::Forward, Direction::Backward] {
            let mut shifted = spec.clone();
            mdes::opt::shift_usage_times(&mut shifted, direction);
            prop_assert_eq!(&collision_matrix(&shifted), &before);
        }
    }

    /// Forward shifting leaves no negative usage times; backward leaves
    /// no positive ones.
    #[test]
    fn time_shift_normalizes_signs(plan in arb_spec_plan()) {
        let mut fwd = build_spec(&plan);
        mdes::opt::shift_usage_times(&mut fwd, Direction::Forward);
        for id in fwd.option_ids() {
            for usage in &fwd.option(id).usages {
                prop_assert!(usage.time >= 0);
            }
        }
        let mut bwd = build_spec(&plan);
        mdes::opt::shift_usage_times(&mut bwd, Direction::Backward);
        for id in bwd.option_ids() {
            for usage in &bwd.option(id).usages {
                prop_assert!(usage.time <= 0);
            }
        }
    }

    /// The Eichenberger–Davidson-style minimizer preserves collision
    /// vectors too (its defining soundness condition).
    #[test]
    fn minimizer_preserves_collision_vectors(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        let before = collision_matrix(&spec);
        let mut minimized = spec.clone();
        mdes::opt::minimize_usages(&mut minimized);
        prop_assert_eq!(&collision_matrix(&minimized), &before);
    }

    /// Running the full pipeline twice equals running it once.
    #[test]
    fn pipeline_is_idempotent(plan in arb_spec_plan()) {
        let mut spec = build_spec(&plan);
        optimize(&mut spec, &PipelineConfig::full());
        let once = spec.clone();
        optimize(&mut spec, &PipelineConfig::full());
        prop_assert_eq!(spec, once);
    }

    /// No transformation stage ever grows the compiled footprint under
    /// the scalar encoding, and the bit-vector encoding never exceeds the
    /// scalar one.
    #[test]
    fn sizes_shrink_monotonically(plan in arb_spec_plan()) {
        let original = build_spec(&plan);
        let mut cleaned = original.clone();
        optimize(&mut cleaned, &PipelineConfig::section5());
        let mut shifted = original.clone();
        optimize(&mut shifted, &PipelineConfig::through_section7());

        let bytes = |spec: &MdesSpec, enc: UsageEncoding| {
            measure(&CompiledMdes::compile(spec, enc).unwrap()).total()
        };
        let o = bytes(&original, UsageEncoding::Scalar);
        let c = bytes(&cleaned, UsageEncoding::Scalar);
        let s = bytes(&shifted, UsageEncoding::Scalar);
        prop_assert!(c <= o, "cleanup grew {o} -> {c}");
        prop_assert!(s <= c, "shift grew {c} -> {s}");
        prop_assert!(
            bytes(&shifted, UsageEncoding::BitVector) <= s,
            "bit-vectors grew the representation"
        );
    }

    /// Every pass leaves a validating spec behind, in any order of the
    /// two Section-5 passes.
    #[test]
    fn passes_preserve_validity_in_any_order(plan in arb_spec_plan(), order in 0u8..4) {
        let mut spec = build_spec(&plan);
        match order {
            0 => {
                mdes::opt::eliminate_redundancy(&mut spec);
                mdes::opt::eliminate_dominated_options(&mut spec);
            }
            1 => {
                mdes::opt::eliminate_dominated_options(&mut spec);
                mdes::opt::eliminate_redundancy(&mut spec);
            }
            2 => {
                mdes::opt::factor_common_usages(&mut spec);
                mdes::opt::eliminate_redundancy(&mut spec);
            }
            _ => {
                mdes::opt::shift_usage_times(&mut spec, Direction::Forward);
                mdes::opt::sort_checks_zero_first(&mut spec, Direction::Forward);
                mdes::opt::sort_and_or_trees(&mut spec);
            }
        }
        prop_assert!(spec.validate().is_ok());
    }

    /// The packed bit-vector check/reserve is semantically identical to
    /// the naive per-usage scalar walk: same accept/reject verdicts, the
    /// same chosen options, and byte-identical occupancy afterwards.
    #[test]
    fn bitvector_reserve_matches_naive_semantics(
        plan in arb_spec_plan(),
        probes in prop::collection::vec((any::<u16>(), 0u8..3), 1..48),
    ) {
        let spec = build_spec(&plan);
        let scalar = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        let bitvec = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let scalar_checker = Checker::new(&scalar);
        let bitvec_checker = Checker::new(&bitvec);
        let mut scalar_ru = RuMap::new();
        let mut bitvec_ru = RuMap::new();
        let mut scalar_stats = CheckStats::new();
        let mut bitvec_stats = CheckStats::new();
        let classes = scalar.classes().len();
        let mut cycle = 0i32;
        for &(pick, advance) in &probes {
            cycle += i32::from(advance);
            let class = ClassId::from_index(pick as usize % classes);
            let from_scalar =
                scalar_checker.try_reserve(&mut scalar_ru, class, cycle, &mut scalar_stats);
            let from_bitvec =
                bitvec_checker.try_reserve(&mut bitvec_ru, class, cycle, &mut bitvec_stats);
            match (&from_scalar, &from_bitvec) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a.selected, &b.selected);
                    prop_assert_eq!(a.time, b.time);
                    prop_assert_eq!(a.class, b.class);
                }
                (None, None) => {}
                _ => prop_assert!(
                    false,
                    "encodings disagree at cycle {}: scalar={:?} bitvec={:?}",
                    cycle, from_scalar, from_bitvec
                ),
            }
        }
        for c in -4..=cycle + 8 {
            prop_assert_eq!(scalar_ru.word(c), bitvec_ru.word(c), "occupancy differs at {}", c);
        }
    }

    /// Expansion reports exactly the cross-product option counts.
    #[test]
    fn expansion_counts_are_cross_products(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        let (expanded, _) = mdes::opt::expand_to_or(&spec);
        for id in spec.class_ids() {
            prop_assert_eq!(
                spec.class_option_count(id),
                expanded.class_option_count(id)
            );
        }
    }
}
