//! Differential testing of the low-level constraint checker against a
//! naive oracle.
//!
//! The oracle implements the semantics directly from the paper's
//! definitions, with no short-circuiting, no bit tricks and no sharing:
//! an operation may issue iff some cross-product combination of options
//! (in lexicographic priority order) has every (resource, cycle) cell
//! free in an explicit set; reserving inserts those cells.  The real
//! checker must agree on every accept/reject decision *and* pick the
//! same cells, under both encodings, for arbitrary machines and issue
//! scripts.

mod common;

use std::collections::BTreeSet;

use common::{arb_spec_plan, build_spec};
use mdes::core::spec::{Constraint, MdesSpec};
use mdes::core::{CheckStats, Checker, ClassId, CompiledMdes, RuMap, UsageEncoding};
use proptest::prelude::*;

/// The oracle machine state: explicit (cycle, resource) cells.
#[derive(Default)]
struct Oracle {
    busy: BTreeSet<(i32, usize)>,
}

impl Oracle {
    /// All cross-product usage combinations of a class, in priority
    /// order (first OR-tree outermost).
    fn combinations(spec: &MdesSpec, class: ClassId) -> Vec<Vec<(i32, usize)>> {
        let trees: Vec<_> = match spec.class(class).constraint {
            Constraint::Or(t) => vec![t],
            Constraint::AndOr(a) => spec.and_or_tree(a).or_trees.clone(),
        };
        let mut combos: Vec<Vec<(i32, usize)>> = vec![Vec::new()];
        for tree in trees {
            let mut next = Vec::new();
            for prefix in &combos {
                for &opt in &spec.or_tree(tree).options {
                    let mut cells = prefix.clone();
                    for usage in &spec.option(opt).usages {
                        cells.push((usage.time, usage.resource.index()));
                    }
                    next.push(cells);
                }
            }
            combos = next;
        }
        combos
    }

    /// Tries to issue: first fully-free combination wins.
    fn try_issue(&mut self, spec: &MdesSpec, class: ClassId, time: i32) -> bool {
        for combo in Self::combinations(spec, class) {
            let cells: Vec<(i32, usize)> = combo.iter().map(|&(t, r)| (time + t, r)).collect();
            if cells.iter().all(|c| !self.busy.contains(c)) {
                self.busy.extend(cells);
                return true;
            }
        }
        false
    }
}

/// Extracts the reserved cells of an RU map for comparison.
fn ru_cells(ru: &RuMap, lo: i32, hi: i32) -> BTreeSet<(i32, usize)> {
    let mut cells = BTreeSet::new();
    for cycle in lo..=hi {
        let word = ru.word(cycle);
        for bit in 0..64 {
            if word & (1 << bit) != 0 {
                cells.insert((cycle, bit as usize));
            }
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checker_agrees_with_the_naive_oracle(
        plan in arb_spec_plan(),
        script in prop::collection::vec((0usize..8, 0i32..6), 1..24),
    ) {
        let spec = build_spec(&plan);
        let num_classes = spec.num_classes();
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            let compiled = CompiledMdes::compile(&spec, encoding).unwrap();
            let checker = Checker::new(&compiled);
            let mut ru = RuMap::new();
            let mut stats = CheckStats::new();
            let mut oracle = Oracle::default();

            for &(class_seed, time) in &script {
                let class = ClassId::from_index(class_seed % num_classes);
                let real = checker.try_reserve(&mut ru, class, time, &mut stats).is_some();
                let expected = oracle.try_issue(&spec, class, time);
                prop_assert_eq!(
                    real, expected,
                    "decision divergence for class {:?} at {} under {:?}",
                    class, time, encoding
                );
            }
            // Same final machine state: both sides reserved exactly the
            // same (cycle, resource) cells.
            let cells = ru_cells(&ru, -8, 16);
            prop_assert_eq!(cells, oracle.busy.clone());
        }
    }

    #[test]
    fn checker_release_restores_oracle_state(
        plan in arb_spec_plan(),
        script in prop::collection::vec((0usize..8, 0i32..4), 1..12),
    ) {
        // Reserve everything, then release everything: the map must be
        // empty regardless of representation or interleaving.
        let spec = build_spec(&plan);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();
        let mut choices = Vec::new();
        for &(class_seed, time) in &script {
            let class = ClassId::from_index(class_seed % spec.num_classes());
            if let Some(choice) = checker.try_reserve(&mut ru, class, time, &mut stats) {
                choices.push(choice);
            }
        }
        for choice in choices.iter().rev() {
            checker.release(&mut ru, choice);
        }
        prop_assert_eq!(ru.population(), 0);
    }
}
