//! Robustness of the HMDL front end: arbitrary input must produce a
//! clean diagnostic or a valid spec, never a panic, and every diagnostic
//! must render with a sensible source location.

use mdes::lang::{compile, parse, parse_recovering, MAX_NESTING_DEPTH};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (as a string) never panics the front end.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,200}") {
        let _ = compile(&input);
    }

    /// Arbitrary sequences of HMDL-ish tokens never panic the parser.
    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "resource", "option", "or_tree", "and_or_tree", "class", "op",
                "first_of", "all_of", "cross", "for", "in", "if", "let",
                "constraint", "latency", "flags", "load",
                "{", "}", "(", ")", "[", "]", "@", "..", ":", ";", ",", "=",
                "+", "-", "*", "/", "%", "<", "<=", "==", "&&", "||",
                "x", "y", "M", "0", "1", "42",
            ]),
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        let _ = compile(&source);
    }

    /// Every error renders with a line/column inside (or just past) the
    /// source, and the renderer itself never panics.
    #[test]
    fn diagnostics_always_render(input in ".{0,160}") {
        if let Err(err) = parse(&input) {
            let rendered = err.render(&input);
            prop_assert!(rendered.contains("error:"));
            prop_assert!(rendered.contains("line "));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Nesting past the hard depth limit produces the typed depth
    /// diagnostic — never a stack overflow — whichever recursive
    /// construct carries the nesting.
    #[test]
    fn over_deep_nesting_is_a_typed_error(
        over in 1usize..128,
        construct in 0usize..3,
    ) {
        let depth = MAX_NESTING_DEPTH + over;
        let source = match construct {
            0 => format!("let x = {}1{};", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("let x = {}1;", "-".repeat(depth)),
            _ => {
                let mut body = String::from("{ R @ 0 }");
                for i in (0..depth).rev() {
                    body = format!("for v{i} in 0..1: {body}");
                }
                format!(
                    "resource R;\nor_tree T = first_of({body});\nclass c {{ constraint = T; }}"
                )
            }
        };
        let errors = parse_recovering(&source).expect_err("must be rejected");
        prop_assert!(
            errors.iter().any(|e| e.message.contains("nesting exceeds")),
            "no depth diagnostic in {errors:?}"
        );
    }

    /// Comprehension widths past the expansion limit fail with a typed
    /// diagnostic before any allocation, however large the range — the
    /// size check itself must not overflow.
    #[test]
    fn pathological_widths_are_a_typed_error(hi in 1_048_577i64..i64::MAX) {
        let source = format!(
            "resource R[4];\n\
             or_tree T = first_of(for i in 0..{hi}: {{ R[i % 4] @ 0 }});\n\
             class c {{ constraint = T; }}"
        );
        let err = compile(&source).expect_err("must be rejected");
        prop_assert!(
            err.message.contains("too large") || err.message.contains("expands"),
            "unexpected diagnostic: {}", err.message
        );
    }
}

#[test]
fn pathological_nesting_is_rejected_not_overflowed() {
    // Deeply nested parenthesized expressions: the recursive-descent
    // parser must survive a reasonable depth (callers feed files, not
    // adversarial megabytes).
    let depth = 200;
    let mut expr = String::from("1");
    for _ in 0..depth {
        expr = format!("({expr})");
    }
    let source = format!("let x = {expr};");
    // (parse only: a lone `let` is syntactically fine but a description
    // without classes rightly fails validation)
    assert!(parse(&source).is_ok());
}

#[test]
fn enormous_comprehension_fails_fast_with_a_diagnostic() {
    let source = "
        resource R[4];
        or_tree T = first_of(for i in 0..9999999: { R[i % 4] @ 0 });
        class c { constraint = T; }
    ";
    let err = compile(source).unwrap_err();
    assert!(err.message.contains("too large") || err.message.contains("expands"));
}

#[test]
fn deep_for_nesting_expands_correctly() {
    let source = "
        resource R[2];
        or_tree T = first_of(
            for a in 0..2, b in 0..2, c in 0..2, d in 0..2, e in 0..2:
                { R[(a + b + c + d + e) % 2] @ 0 });
        class c { constraint = T; }
    ";
    let spec = compile(source).unwrap();
    assert_eq!(spec.num_options(), 32);
}
