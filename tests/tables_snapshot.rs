//! Snapshot stability of the regenerated paper tables under the parallel
//! driver: the engine's worker count must never change a rendered byte,
//! so `results/tables.txt` stays reproducible on any `--jobs` setting.

use mdes::core::UsageEncoding;
use mdes::machines::Machine;
use mdes_bench::experiment::{default_workload, prepare_spec, run_on, run_on_jobs, Rep, Stage};
use mdes_bench::tables::{table5, TableConfig};
use mdes_workload::generate;

#[test]
fn run_on_jobs_is_worker_count_invariant() {
    let machine = Machine::Pa7100;
    let spec = prepare_spec(machine, Rep::AndOr, Stage::Full);
    let workload = generate(machine, &spec, &default_workload(machine, 1_200));

    let serial = run_on(&spec, &workload, UsageEncoding::BitVector);
    for jobs in [2, 4] {
        let parallel = run_on_jobs(&spec, &workload, UsageEncoding::BitVector, jobs);
        assert_eq!(parallel.schedule_hash, serial.schedule_hash, "{jobs} jobs");
        assert_eq!(parallel.stats, serial.stats, "{jobs} jobs");
        assert_eq!(
            parallel.memory.total(),
            serial.memory.total(),
            "{jobs} jobs"
        );
    }
}

#[test]
fn table_rendering_is_byte_stable_across_regenerations() {
    // Two independent regenerations (each internally served by run_on,
    // which now routes through the engine) must render the same bytes.
    let config = TableConfig { total_ops: 1_200 };
    let first = table5(&config);
    let second = table5(&config);
    assert_eq!(first, second);
    assert!(first.contains("MDES"), "unexpected table header:\n{first}");
}
