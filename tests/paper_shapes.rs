//! End-to-end assertions of the paper's headline result *shapes* — the
//! qualitative claims the reproduction must preserve even though absolute
//! numbers come from a synthetic workload:
//!
//! * AND/OR-trees cut the representation of flexible machines
//!   (SuperSPARC, K5) by one to two orders of magnitude, and cut their
//!   checks per attempt by most of an order (Tables 6, 5);
//! * the Pentium gains nothing from AND/OR (and pays a small size
//!   overhead) (Tables 3, 6);
//! * after the Section-7 transformations, checks per option approach the
//!   ideal 1.0 (Table 12);
//! * the full pipeline plus AND/OR cuts checks per attempt by roughly an
//!   order of magnitude on the flexible machines (Table 15);
//! * the SuperSPARC Figure-2 distribution is bimodal: a large peak at
//!   one option checked and a second mass at 48.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::sched::ListScheduler;
use mdes::workload::generate;
use mdes_bench::experiment::{default_workload, prepare_spec, run, Rep, Stage};

const OPS: usize = 4_000;

#[test]
fn and_or_collapses_flexible_machine_sizes() {
    use mdes_bench::experiment::measure_only;
    for machine in [Machine::SuperSparc, Machine::K5] {
        let or = measure_only(machine, Rep::OrTree, Stage::Original, UsageEncoding::Scalar);
        let andor = measure_only(machine, Rep::AndOr, Stage::Original, UsageEncoding::Scalar);
        let factor = or.total() as f64 / andor.total() as f64;
        let expected = if machine == Machine::K5 { 50.0 } else { 8.0 };
        assert!(
            factor > expected,
            "{}: AND/OR only {}x smaller",
            machine.name(),
            factor
        );
    }
}

#[test]
fn pentium_gets_no_benefit_and_small_size_overhead() {
    use mdes_bench::experiment::measure_only;
    let machine = Machine::Pentium;
    let config = default_workload(machine, OPS);
    let or = run(
        machine,
        Rep::OrTree,
        Stage::Original,
        UsageEncoding::Scalar,
        &config,
    );
    let andor = run(
        machine,
        Rep::AndOr,
        Stage::Original,
        UsageEncoding::Scalar,
        &config,
    );
    assert_eq!(
        or.stats.resource_checks, andor.stats.resource_checks,
        "Pentium checks must be identical (0.0% reduction, Table 5)"
    );
    let or_bytes = measure_only(machine, Rep::OrTree, Stage::Original, UsageEncoding::Scalar);
    let andor_bytes = measure_only(machine, Rep::AndOr, Stage::Original, UsageEncoding::Scalar);
    assert!(andor_bytes.total() > or_bytes.total());
    assert!(andor_bytes.total() < or_bytes.total() * 2);
}

#[test]
fn checks_per_option_approach_one_after_section_7() {
    for machine in Machine::all() {
        let config = default_workload(machine, OPS);
        for rep in Rep::both() {
            let result = run(
                machine,
                rep,
                Stage::Shifted,
                UsageEncoding::BitVector,
                &config,
            );
            let ratio = result.stats.checks_per_option();
            assert!(
                (0.99..1.45).contains(&ratio),
                "{} {:?}: checks/option {ratio}",
                machine.name(),
                rep
            );
        }
    }
}

#[test]
fn aggregate_check_reduction_is_about_an_order_of_magnitude() {
    for machine in [Machine::SuperSparc, Machine::K5] {
        let config = default_workload(machine, OPS);
        let unopt = run(
            machine,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
            &config,
        );
        let full = run(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &config,
        );
        let factor = unopt.stats.checks_per_attempt() / full.stats.checks_per_attempt();
        assert!(
            factor > 4.0,
            "{}: only {factor:.1}x check reduction",
            machine.name()
        );
    }
}

#[test]
fn conflict_detection_ordering_helps_flexible_machines_only() {
    for machine in Machine::all() {
        let config = default_workload(machine, OPS);
        let before = run(
            machine,
            Rep::AndOr,
            Stage::Shifted,
            UsageEncoding::BitVector,
            &config,
        );
        let after = run(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &config,
        );
        let b = before.stats.options_per_attempt_avg();
        let a = after.stats.options_per_attempt_avg();
        if machine.is_flexible() {
            assert!(a < b * 0.98, "{}: {b} -> {a}", machine.name());
        } else {
            assert!(
                a <= b * 1.02,
                "{}: ordering hurt ({b} -> {a})",
                machine.name()
            );
        }
    }
}

#[test]
fn figure2_distribution_is_bimodal_for_superspark_or_rep() {
    let machine = Machine::SuperSparc;
    let spec = prepare_spec(machine, Rep::OrTree, Stage::Original);
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
    let scheduler = ListScheduler::new(&compiled);
    let workload = generate(machine, &spec, &default_workload(machine, OPS));
    let mut stats = CheckStats::new();
    for block in &workload.blocks {
        scheduler.schedule(block, &mut stats);
    }
    let hist = &stats.options_per_attempt;
    let at_one = hist.fraction(1) * 100.0;
    let mid_mass = hist.fraction_range(24, 72) * 100.0;
    // Paper: 38.02% at one option; 45.52% between 24 and 72.
    assert!((20.0..60.0).contains(&at_one), "peak at 1: {at_one:.1}%");
    assert!(
        (25.0..70.0).contains(&mid_mass),
        "24..=72 mass: {mid_mass:.1}%"
    );
    // 48-option failures exist (the ialu_1src class).
    assert!(hist.fraction(48) > 0.01);
}

#[test]
fn redundancy_elimination_benefits_the_and_or_representation_more() {
    // Section 4/5: "the AND/OR-tree representation for the SuperSPARC
    // and K5 machine descriptions benefited more from eliminating
    // redundant information than the OR-tree representation."
    use mdes_bench::experiment::measure_only;
    for machine in [Machine::SuperSparc, Machine::K5] {
        let reduction = |rep: Rep| {
            let before = measure_only(machine, rep, Stage::Original, UsageEncoding::Scalar);
            let after = measure_only(machine, rep, Stage::Cleaned, UsageEncoding::Scalar);
            (before.total() - after.total()) as f64 / before.total() as f64
        };
        assert!(
            reduction(Rep::AndOr) > reduction(Rep::OrTree),
            "{}: AND/OR {:.3} vs OR {:.3}",
            machine.name(),
            reduction(Rep::AndOr),
            reduction(Rep::OrTree)
        );
    }
}

#[test]
fn attempt_rates_are_in_the_papers_regime() {
    // Paper Table 5: 1.47..=2.05 attempts per op.  Allow a generous band;
    // the key property is that a meaningful share of attempts fail.
    for machine in Machine::all() {
        let config = default_workload(machine, OPS);
        let result = run(
            machine,
            Rep::AndOr,
            Stage::Original,
            UsageEncoding::Scalar,
            &config,
        );
        let rate = result.stats.attempts_per_op();
        assert!(
            (1.15..2.6).contains(&rate),
            "{}: {rate:.2} attempts/op",
            machine.name()
        );
    }
}
