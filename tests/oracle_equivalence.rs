//! Differential testing of the exact branch-and-bound scheduler.
//!
//! Two invariants anchor the oracle's trustworthiness:
//!
//! 1. **Exactness** — on regions small enough to enumerate, the pruned
//!    branch-and-bound search must find exactly the schedule length of
//!    the independent brute-force enumerator
//!    ([`mdes::oracle::exhaustive_min_length`]), which shares none of
//!    its pruning machinery (no heights, no lower bounds, no placement
//!    heuristic, no option dedup).
//! 2. **Upper-bound soundness** — the production list scheduler may
//!    never produce a *shorter* schedule than the oracle: both replay
//!    the same `CompiledMdes` queries, so a below-oracle schedule means
//!    the production scheduler produced an unverifiable placement.
//!
//! Machines come from the synthetic fleet generator so the invariants
//! are exercised across interchangeable-unit groups, multi-cycle
//! staging, AND/OR classes and bypasses — not just the bundled six.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::oracle::{exhaustive_min_length, OracleScheduler};
use mdes::sched::{DepGraph, ListScheduler};
use mdes::workload::{fleet_machine, generate_regions, RegionConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branch_and_bound_matches_brute_force_on_small_regions(
        machine_index in 0usize..24,
        region_seed in 0u64..1024,
    ) {
        // Mean 4 body ops bounds a region at 7 body + 1 terminator = 8
        // operations: small enough for the un-pruned enumerator.
        let machine = fleet_machine(0xF1EE7, machine_index);
        let mdes = CompiledMdes::compile(&machine.spec, UsageEncoding::BitVector).unwrap();
        let config = RegionConfig::new(2).with_mean_ops(4).with_seed(region_seed);
        let oracle = OracleScheduler::new(&mdes);
        for block in &generate_regions(&machine.spec, &config).blocks {
            let mut stats = CheckStats::new();
            let outcome = oracle
                .schedule(block, &mut stats)
                .expect("≤8-op regions are within the oracle's cap");
            prop_assert!(outcome.proved, "{}: search should finish on ≤8 ops", machine.name);

            let brute = exhaustive_min_length(&mdes, block, &mut stats);
            prop_assert_eq!(
                outcome.length(), brute,
                "{}: branch-and-bound disagrees with brute force", machine.name.clone()
            );

            let graph = DepGraph::build(block, &mdes);
            outcome
                .schedule
                .verify(&graph, &mdes)
                .unwrap_or_else(|e| panic!("{}: oracle schedule fails replay: {e}", machine.name));
        }
    }

    #[test]
    fn list_scheduler_never_beats_the_oracle(
        machine_index in 0usize..24,
        region_seed in 0u64..1024,
        hinted in any::<bool>(),
    ) {
        let machine = fleet_machine(0xF1EE7, machine_index);
        let mdes = CompiledMdes::compile(&machine.spec, UsageEncoding::BitVector).unwrap();
        let config = RegionConfig::new(2).with_mean_ops(4).with_seed(region_seed);
        let oracle = OracleScheduler::new(&mdes);
        let scheduler = ListScheduler::new(&mdes).with_hints(hinted);
        for block in &generate_regions(&machine.spec, &config).blocks {
            let mut stats = CheckStats::new();
            let outcome = oracle.schedule(block, &mut stats).unwrap();
            let production = scheduler.schedule(block, &mut stats);
            prop_assert!(
                production.length >= outcome.length(),
                "{}: production schedule ({}) beats the proven minimum ({}) — \
                 it cannot be a valid schedule",
                machine.name.clone(), production.length, outcome.length()
            );
        }
    }
}
