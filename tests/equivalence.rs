//! The paper's central correctness invariant (Section 4): "the exact same
//! schedule is produced in each case, since all the execution constraints
//! described in the machine descriptions are being preserved" — across
//! representations (OR vs AND/OR), transformation stages, and usage
//! encodings, on all four bundled machines *and* on randomly generated
//! machines.

mod common;

use common::{arb_block_plan, arb_spec_plan, build_block, build_spec};
use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::expand::expand_to_or;
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::sched::ListScheduler;
use mdes::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

/// Schedules a whole workload and returns all issue cycles.
fn schedule_all(
    spec: &mdes::core::MdesSpec,
    workload: &mdes::workload::Workload,
    encoding: UsageEncoding,
) -> Vec<i32> {
    let compiled = CompiledMdes::compile(spec, encoding).expect("compiles");
    let scheduler = ListScheduler::new(&compiled);
    let mut stats = CheckStats::new();
    let mut cycles = Vec::new();
    for block in &workload.blocks {
        cycles.extend(scheduler.schedule(block, &mut stats).cycles());
    }
    cycles
}

#[test]
fn bundled_machines_schedule_identically_across_all_configurations() {
    for machine in Machine::all() {
        let authored = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(1_200);
        let workload = generate(machine, &authored, &config);

        let reference = schedule_all(&authored, &workload, UsageEncoding::Scalar);

        let mut variants: Vec<(String, mdes::core::MdesSpec)> = Vec::new();
        variants.push(("expanded OR".into(), expand_to_or(&authored).0));
        for (label, cfg) in [
            ("section 5", PipelineConfig::section5()),
            ("section 7", PipelineConfig::through_section7()),
            ("full", PipelineConfig::full()),
        ] {
            let mut spec = authored.clone();
            optimize(&mut spec, &cfg);
            variants.push((format!("AND/OR {label}"), spec));

            let mut or_spec = expand_to_or(&authored).0;
            optimize(&mut or_spec, &cfg);
            variants.push((format!("OR {label}"), or_spec));
        }

        for (label, spec) in &variants {
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                let cycles = schedule_all(spec, &workload, encoding);
                assert_eq!(
                    cycles,
                    reference,
                    "{}: `{label}` with {encoding:?} diverged",
                    machine.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random resource-disjoint machines: greedy AND/OR checking equals
    /// the expanded cross-product OR-tree, before and after the full
    /// pipeline, under both encodings.
    #[test]
    fn random_machines_schedule_identically(
        plan in arb_spec_plan(),
        block_seed in arb_block_plan(8),
    ) {
        let spec = build_spec(&plan);
        let block_plan: Vec<_> = block_seed
            .into_iter()
            .map(|(c, d, s1, s2)| (c % plan.classes.len(), d, s1, s2))
            .collect();
        let block = build_block(&block_plan);

        let schedule = |spec: &mdes::core::MdesSpec, encoding: UsageEncoding| -> Vec<i32> {
            let compiled = CompiledMdes::compile(spec, encoding).unwrap();
            let mut stats = CheckStats::new();
            ListScheduler::new(&compiled).schedule(&block, &mut stats).cycles()
        };

        let reference = schedule(&spec, UsageEncoding::Scalar);

        let (expanded, _) = expand_to_or(&spec);
        prop_assert_eq!(&schedule(&expanded, UsageEncoding::Scalar), &reference);
        prop_assert_eq!(&schedule(&expanded, UsageEncoding::BitVector), &reference);

        let mut optimized = spec.clone();
        optimize(&mut optimized, &PipelineConfig::full());
        prop_assert_eq!(&schedule(&optimized, UsageEncoding::Scalar), &reference);
        prop_assert_eq!(&schedule(&optimized, UsageEncoding::BitVector), &reference);

        let mut optimized_or = expanded.clone();
        optimize(&mut optimized_or, &PipelineConfig::full());
        prop_assert_eq!(&schedule(&optimized_or, UsageEncoding::BitVector), &reference);
    }
}
