//! Shared helpers and proptest strategies for the integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use mdes::core::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
use mdes::core::{ResourceId, ResourceUsage};
use mdes::sched::{Block, Op, Reg};
use proptest::prelude::*;

/// Blueprint for one resource group of a generated machine: the options
/// of the group's OR-tree, each a list of (resource-within-group, time).
pub type GroupPlan = Vec<Vec<(usize, i32)>>;

/// Blueprint for a whole machine: groups plus classes (set of group
/// indices, latency).
#[derive(Clone, Debug)]
pub struct SpecPlan {
    /// Resources per group.
    pub group_sizes: Vec<usize>,
    /// OR-tree options per group.
    pub groups: Vec<GroupPlan>,
    /// Classes: which groups each class requires, and its latency.
    pub classes: Vec<(Vec<usize>, i32)>,
}

/// Strategy for machine blueprints whose AND/OR sub-trees are
/// resource-disjoint (each sub-tree draws from its own group), the
/// condition under which greedy AND/OR checking equals the expanded
/// cross-product OR-tree.
pub fn arb_spec_plan() -> impl Strategy<Value = SpecPlan> {
    // 2..=4 groups of 1..=3 resources.
    let group_sizes = prop::collection::vec(1usize..=3, 2..=4);
    group_sizes.prop_flat_map(|sizes| {
        let groups: Vec<_> = sizes
            .iter()
            .map(|&size| {
                // 1..=3 options per group; each option 1..=2 usages on the
                // group's resources at times -2..=3.
                prop::collection::vec(prop::collection::vec((0..size, -2i32..=3), 1..=2), 1..=3)
            })
            .collect();
        let num_groups = sizes.len();
        let classes = prop::collection::vec(
            (
                prop::collection::btree_set(0..num_groups, 1..=num_groups.min(3)),
                1i32..=3,
            ),
            1..=3,
        );
        (Just(sizes), groups, classes).prop_map(|(group_sizes, groups, classes)| SpecPlan {
            group_sizes,
            groups,
            classes: classes
                .into_iter()
                .map(|(set, lat)| (set.into_iter().collect(), lat))
                .collect(),
        })
    })
}

/// Materializes a blueprint into a validated spec.
pub fn build_spec(plan: &SpecPlan) -> MdesSpec {
    let mut spec = MdesSpec::new();
    let mut group_resources: Vec<Vec<ResourceId>> = Vec::new();
    for (g, &size) in plan.group_sizes.iter().enumerate() {
        group_resources.push(
            spec.resources_mut()
                .add_indexed(&format!("g{g}"), size)
                .expect("group resources"),
        );
    }
    let mut group_trees = Vec::new();
    for (g, options) in plan.groups.iter().enumerate() {
        let ids: Vec<_> = options
            .iter()
            .map(|usages| {
                let mut list: Vec<ResourceUsage> = usages
                    .iter()
                    .map(|&(r, t)| ResourceUsage::new(group_resources[g][r], t))
                    .collect();
                // Duplicate (resource, time) pairs within one option are
                // legal but make expansion/minimization comparisons
                // noisy; drop duplicates while preserving order.
                let mut seen = Vec::new();
                list.retain(|u| {
                    if seen.contains(u) {
                        false
                    } else {
                        seen.push(*u);
                        true
                    }
                });
                spec.add_option(TableOption::new(list))
            })
            .collect();
        group_trees.push(spec.add_or_tree(OrTree::named(format!("t{g}"), ids)));
    }
    for (c, (groups, latency)) in plan.classes.iter().enumerate() {
        let trees: Vec<_> = groups.iter().map(|&g| group_trees[g]).collect();
        let constraint = if trees.len() == 1 {
            Constraint::Or(trees[0])
        } else {
            let andor = spec.add_and_or_tree(AndOrTree::named(format!("a{c}"), trees));
            Constraint::AndOr(andor)
        };
        spec.add_class(
            format!("c{c}"),
            constraint,
            Latency::new(*latency),
            OpFlags::none(),
        )
        .expect("unique class names");
    }
    spec.validate().expect("generated spec is valid");
    spec
}

/// Strategy for a small block over `num_classes` classes: per op a class
/// index, a destination register and two source registers from a pool of
/// six.
pub fn arb_block_plan(num_classes: usize) -> impl Strategy<Value = Vec<(usize, u32, u32, u32)>> {
    prop::collection::vec((0..num_classes, 0u32..6, 0u32..6, 0u32..6), 1..=12)
}

/// Materializes a block blueprint.
pub fn build_block(plan: &[(usize, u32, u32, u32)]) -> Block {
    plan.iter()
        .map(|&(class, dest, s1, s2)| {
            Op::new(
                mdes::core::ClassId::from_index(class),
                vec![Reg(dest)],
                vec![Reg(s1), Reg(s2)],
            )
        })
        .collect()
}
