//! Backward list scheduling across the bundled machines: valid schedules
//! under both MDES tunings, and the tunings never change *which*
//! schedules are legal (only how cheaply conflicts are detected).

mod common;

use common::{arb_block_plan, arb_spec_plan, build_block, build_spec};
use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::pipeline::PipelineConfig;
use mdes::opt::timeshift::Direction;
use mdes::sched::Priority;
use mdes::sched::{DepGraph, ListScheduler};
use mdes::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

fn tuned(machine: Machine, direction: Direction) -> CompiledMdes {
    let mut spec = machine.spec();
    mdes::opt::optimize(
        &mut spec,
        &PipelineConfig {
            direction,
            ..PipelineConfig::full()
        },
    );
    CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
}

#[test]
fn backward_schedules_are_valid_on_every_machine() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let workload = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine).with_total_ops(1_000),
        );
        let scheduler = ListScheduler::new(&mdes);
        let mut stats = CheckStats::new();
        for block in &workload.blocks {
            let schedule = scheduler.schedule_backward(block, &mut stats);
            let graph = DepGraph::build(block, &mdes);
            schedule
                .verify(&graph, &mdes)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
        }
    }
}

#[test]
fn tuning_direction_never_changes_backward_schedules() {
    for machine in [Machine::SuperSparc, Machine::Pentium] {
        let forward = tuned(machine, Direction::Forward);
        let backward = tuned(machine, Direction::Backward);
        let workload = generate(
            machine,
            &machine.spec(),
            &WorkloadConfig::paper_default(machine).with_total_ops(800),
        );
        let mut stats_f = CheckStats::new();
        let mut stats_b = CheckStats::new();
        for block in &workload.blocks {
            let a = ListScheduler::new(&forward).schedule_backward(block, &mut stats_f);
            let b = ListScheduler::new(&backward).schedule_backward(block, &mut stats_b);
            assert_eq!(a.cycles(), b.cycles(), "{}", machine.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every priority function yields a valid schedule on random
    /// machines and blocks, and the critical-path priority never loses
    /// to more than a small factor against the best of the three.
    #[test]
    fn every_priority_produces_valid_schedules(
        plan in arb_spec_plan(),
        block_seed in arb_block_plan(8),
    ) {
        let spec = build_spec(&plan);
        let block_plan: Vec<_> = block_seed
            .into_iter()
            .map(|(c, d, s1, s2)| (c % plan.classes.len(), d, s1, s2))
            .collect();
        let block = build_block(&block_plan);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let graph = DepGraph::build(&block, &compiled);

        let mut lengths = Vec::new();
        for priority in [Priority::Height, Priority::Slack, Priority::SourceOrder] {
            let mut stats = CheckStats::new();
            let schedule = ListScheduler::new(&compiled)
                .with_priority(priority)
                .schedule(&block, &mut stats);
            prop_assert!(schedule.verify(&graph, &compiled).is_ok());
            lengths.push(schedule.length);
        }
        let best = *lengths.iter().min().unwrap();
        prop_assert!(
            lengths[0] <= best * 2 + 2,
            "height priority pathologically bad: {:?}",
            lengths
        );
    }
}

#[test]
fn operation_driven_scheduling_is_valid_on_every_machine() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let workload = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine).with_total_ops(800),
        );
        let scheduler = ListScheduler::new(&mdes);
        let mut stats = CheckStats::new();
        for block in &workload.blocks {
            let schedule = scheduler.schedule_operation_driven(block, &mut stats);
            let graph = DepGraph::build(block, &mdes);
            schedule
                .verify(&graph, &mdes)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
        }
    }
}
