//! In-order issue simulation across the bundled machines.
//!
//! The list schedule of a block is a *promise*; the simulator is the
//! machine. For descriptions whose long-occupancy operations cannot be
//! issued greedily out of turn (PA7100, SuperSPARC, K5 as modeled), the
//! promise is kept exactly; the Pentium's 9–17-cycle both-pipe
//! operations expose the classic greedy in-order anomaly (issuing a long
//! operation *earlier* than scheduled can delay its neighbours), which
//! stays within a small bound.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::sched::{order_of_schedule, simulate_in_order, ListScheduler};
use mdes::workload::{generate, WorkloadConfig};

fn planned_vs_simulated(machine: Machine, total_ops: usize) -> (i64, i64) {
    let spec = machine.spec();
    let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let workload = generate(
        machine,
        &spec,
        &WorkloadConfig::paper_default(machine).with_total_ops(total_ops),
    );
    let scheduler = ListScheduler::new(&mdes);
    let mut stats = CheckStats::new();
    let (mut planned, mut simulated) = (0i64, 0i64);
    for block in &workload.blocks {
        let schedule = scheduler.schedule(block, &mut stats);
        let result = simulate_in_order(block, &order_of_schedule(&schedule), &mdes);
        planned += i64::from(schedule.length);
        simulated += i64::from(result.cycles);
    }
    (planned, simulated)
}

#[test]
fn accurate_schedules_simulate_exactly_on_machines_without_greedy_anomalies() {
    for machine in [Machine::Pa7100, Machine::SuperSparc, Machine::K5] {
        let (planned, simulated) = planned_vs_simulated(machine, 2_500);
        assert_eq!(planned, simulated, "{}: promise broken", machine.name());
    }
}

#[test]
fn pentium_greedy_anomaly_stays_small() {
    let (planned, simulated) = planned_vs_simulated(Machine::Pentium, 2_500);
    assert!(simulated >= planned);
    let ratio = simulated as f64 / planned as f64;
    assert!(
        ratio < 1.05,
        "Pentium in-order anomaly too large: {planned} -> {simulated}"
    );
}

#[test]
fn simulation_is_invariant_under_the_transformation_pipeline() {
    // The optimized description must accept and time the same issue
    // streams as the original.
    let machine = Machine::SuperSparc;
    let spec = machine.spec();
    let mut optimized = spec.clone();
    mdes::opt::optimize(&mut optimized, &mdes::opt::PipelineConfig::full());

    let original = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let optimized = CompiledMdes::compile(&optimized, UsageEncoding::BitVector).unwrap();
    let workload = generate(
        machine,
        &spec,
        &WorkloadConfig::paper_default(machine).with_total_ops(1_500),
    );
    let scheduler = ListScheduler::new(&original);
    let mut stats = CheckStats::new();
    for block in &workload.blocks {
        let schedule = scheduler.schedule(block, &mut stats);
        let order = order_of_schedule(&schedule);
        let a = simulate_in_order(block, &order, &original);
        let b = simulate_in_order(block, &order, &optimized);
        assert_eq!(a, b, "optimization changed simulated timing");
    }
}
