//! Golden-inventory tests: the bundled machine descriptions are the
//! substrate of every experiment, so their structure is pinned down
//! exactly — resources, per-class option counts (the paper's Tables 1–4),
//! class flags and the AND/OR-vs-OR split.  A failing test here means an
//! edit changed what the experiments measure.

use std::collections::BTreeMap;

use mdes::core::spec::Constraint;
use mdes::machines::Machine;

fn inventory(machine: Machine) -> (Vec<String>, BTreeMap<String, usize>) {
    let spec = machine.spec();
    let resources = spec
        .resources()
        .iter()
        .map(|(_, n)| n.to_string())
        .collect();
    let counts = spec
        .class_ids()
        .map(|id| (spec.class(id).name.clone(), spec.class_option_count(id)))
        .collect();
    (resources, counts)
}

#[test]
fn superspark_inventory_is_pinned() {
    let (resources, counts) = inventory(Machine::SuperSparc);
    assert_eq!(
        resources,
        vec![
            "Decoder[0]",
            "Decoder[1]",
            "Decoder[2]",
            "RP[0]",
            "RP[1]",
            "RP[2]",
            "RP[3]",
            "WrPt[0]",
            "WrPt[1]",
            "IALU[0]",
            "IALU[1]",
            "Shifter",
            "M",
            "BR",
            "FPU",
        ]
    );
    let expected: BTreeMap<String, usize> = [
        ("branch", 1),
        ("serial_op", 1),
        ("fp_op", 3),
        ("fp_div", 3),
        ("load", 6),
        ("store", 12),
        ("shift_1src", 24),
        ("shift_2src", 36),
        ("cascade_1src", 24),
        ("cascade_2src", 36),
        ("ialu_1src", 48),
        ("ialu_move", 48),
        ("ialu_2src", 72),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    assert_eq!(counts, expected);
}

#[test]
fn k5_inventory_matches_table_4_buckets() {
    let (_, counts) = inventory(Machine::K5);
    // Every Table-4 bucket is inhabited.
    let mut buckets: BTreeMap<usize, usize> = BTreeMap::new();
    for &count in counts.values() {
        *buckets.entry(count).or_default() += 1;
    }
    for bucket in [16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768] {
        assert!(
            buckets.contains_key(&bucket),
            "Table-4 bucket {bucket} has no class"
        );
    }
    // And nothing outside the paper's buckets.
    for &bucket in buckets.keys() {
        assert!(
            [16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768].contains(&bucket),
            "unexpected K5 option count {bucket}"
        );
    }
}

#[test]
fn pentium_is_pure_or_and_pa7100_keeps_its_stale_duplicate() {
    let pentium = Machine::Pentium.spec();
    assert_eq!(pentium.num_and_or_trees(), 0, "Pentium must stay OR-only");
    for id in pentium.class_ids() {
        assert!(matches!(pentium.class(id).constraint, Constraint::Or(_)));
        let count = pentium.class_option_count(id);
        assert!(
            count == 1 || count == 2,
            "Pentium class with {count} options"
        );
    }

    let pa = Machine::Pa7100.spec();
    let load = pa.class_by_name("load").unwrap();
    assert_eq!(
        pa.class_option_count(load),
        3,
        "the Table-8 stale duplicate must ship in the PA7100 description"
    );
}

#[test]
fn branch_classes_and_memory_classes_are_flagged_consistently() {
    for machine in Machine::all() {
        let spec = machine.spec();
        for id in spec.class_ids() {
            let class = spec.class(id);
            let name = &class.name;
            if name.contains("load") || name.starts_with("ldcw") {
                assert!(
                    class.flags.load,
                    "{}: {name} not load-flagged",
                    machine.name()
                );
            }
            if name.contains("store") {
                assert!(
                    class.flags.store,
                    "{}: {name} not store-flagged",
                    machine.name()
                );
            }
            if name.contains("br") && !name.contains("sub") {
                assert!(
                    class.flags.branch,
                    "{}: {name} not branch-flagged",
                    machine.name()
                );
            }
        }
    }
}

#[test]
fn every_machine_fits_one_occupancy_word() {
    for machine in Machine::all() {
        let spec = machine.spec();
        assert!(
            spec.resources().len() <= 64,
            "{}: {} resources exceed one word",
            machine.name(),
            spec.resources().len()
        );
    }
}

#[test]
fn usage_time_conventions_hold() {
    // Paper Section 2: decode-stage resources have negative usage times;
    // execution resources start at 0.  The Pentium's pairing model needs
    // no decode stage (its earliest usages sit at 0); the other three
    // machines model decode at -1.
    for machine in Machine::all() {
        let spec = machine.spec();
        let min_time = spec
            .option_ids()
            .flat_map(|id| spec.option(id).usages.clone())
            .map(|u| u.time)
            .min()
            .unwrap();
        let expected = if machine == Machine::Pentium { 0 } else { -1 };
        assert_eq!(
            min_time,
            expected,
            "{}: decode stage convention",
            machine.name()
        );
    }
}
