//! Rendering robustness: the pretty-printer, DOT exporter and occupancy
//! chart must handle arbitrary machines and schedules without panicking,
//! and must mention everything they claim to render.

mod common;

use common::{arb_block_plan, arb_spec_plan, build_block, build_spec};
use mdes::core::spec::Constraint;
use mdes::core::{pretty, CheckStats, CompiledMdes, UsageEncoding};
use mdes::sched::{occupancy_chart, resource_utilization, ListScheduler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pretty_renders_every_class_of_random_machines(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        for id in spec.class_ids() {
            let name = spec.class(id).name.clone();
            let text = pretty::class_constraint(&spec, &name).unwrap();
            let header = format!("class {name}:");
            prop_assert!(text.contains(&header));
            // Every option of the constraint is numbered.
            match spec.class(id).constraint {
                Constraint::Or(or) => {
                    let count = spec.or_tree(or).options.len();
                    let label = format!("Option {count}:");
                    prop_assert!(text.contains(&label));
                }
                Constraint::AndOr(andor) => {
                    let subtrees = spec.and_or_tree(andor).or_trees.len();
                    let label = format!("({subtrees} sub-OR-trees)");
                    prop_assert!(text.contains(&label), "{}", text);
                }
            }
        }
    }

    #[test]
    fn dot_export_is_well_formed_for_random_machines(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        for id in spec.class_ids() {
            let name = spec.class(id).name.clone();
            let dot = mdes::core::dot::class_constraint(&spec, &name).unwrap();
            prop_assert!(dot.starts_with("digraph"));
            let closed = dot.trim_end().ends_with('}');
            prop_assert!(closed);
            // Balanced braces and quotes.
            prop_assert_eq!(dot.matches('{').count(), dot.matches('}').count());
            prop_assert_eq!(dot.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn occupancy_chart_and_utilization_agree(
        plan in arb_spec_plan(),
        block_seed in arb_block_plan(8),
    ) {
        let spec = build_spec(&plan);
        let block_plan: Vec<_> = block_seed
            .into_iter()
            .map(|(c, d, s1, s2)| (c % plan.classes.len(), d, s1, s2))
            .collect();
        let block = build_block(&block_plan);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&compiled).schedule(&block, &mut stats);

        let chart = occupancy_chart(&spec, &compiled, &block, &schedule);
        let util = resource_utilization(&compiled, &schedule);
        prop_assert_eq!(util.len(), spec.resources().len());

        // A resource appears as a chart row iff its utilization is
        // non-zero, and all utilizations are valid fractions.
        for (id, name) in spec.resources().iter() {
            let in_chart = chart.lines().any(|l| l.trim_start().starts_with(&format!("{name} |")));
            let used = util[id.index()] > 0.0;
            prop_assert_eq!(in_chart, used, "resource {}", name);
            prop_assert!((0.0..=1.0).contains(&util[id.index()]));
        }
    }
}
