//! The binary LMDES image must round-trip the bundled machines exactly,
//! and a loaded image must drive the scheduler identically to the
//! in-memory compilation.

mod common;

use common::{arb_spec_plan, build_spec};
use mdes::core::lmdes;
use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::sched::ListScheduler;
use mdes::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

#[test]
fn bundled_machines_round_trip_through_lmdes() {
    for machine in Machine::all() {
        for stage_full in [false, true] {
            let mut spec = machine.spec();
            if stage_full {
                mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
            }
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
                let image = lmdes::write(&mdes);
                let loaded =
                    lmdes::read(&image).unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
                assert_eq!(loaded, mdes, "{}", machine.name());
            }
        }
    }
}

#[test]
fn loaded_image_schedules_identically() {
    let machine = Machine::SuperSparc;
    let spec = machine.spec();
    let config = WorkloadConfig::paper_default(machine).with_total_ops(800);
    let workload = generate(machine, &spec, &config);

    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let loaded = lmdes::read(&lmdes::write(&compiled)).unwrap();

    let mut stats_a = CheckStats::new();
    let mut stats_b = CheckStats::new();
    for block in &workload.blocks {
        let a = ListScheduler::new(&compiled).schedule(block, &mut stats_a);
        let b = ListScheduler::new(&loaded).schedule(block, &mut stats_b);
        assert_eq!(a.cycles(), b.cycles());
    }
    assert_eq!(stats_a.resource_checks, stats_b.resource_checks);
}

#[test]
fn image_size_is_modest() {
    // The optimized AND/OR K5 image should be a few kilobytes — the
    // artifact a compiler would load at start-up.
    let mut spec = Machine::K5.spec();
    mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
    let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let image = lmdes::write(&mdes);
    assert!(image.len() < 16_384, "K5 image is {} bytes", image.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_machines_round_trip(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
            prop_assert_eq!(lmdes::read(&lmdes::write(&mdes)).unwrap(), mdes);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_loader(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the decoder: errors are fine, panics are not.
        let _ = lmdes::read(&bytes);
    }

    #[test]
    fn prefixed_garbage_never_panics(tail in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut bytes = lmdes::MAGIC.to_vec();
        bytes.extend(tail);
        let _ = lmdes::read(&bytes);
    }

    #[test]
    fn seeded_corruptions_error_cleanly_instead_of_panicking(seed in any::<u64>()) {
        // Structured corruption of a real image (vs. the pure byte fuzz
        // above): every guaranteed-fatal fault must come back as an
        // `LmdesError` — never a panic, never an over-allocation — and
        // a bit flip may decode or error but must do so cleanly too.
        let image = k5_image();
        for fault in mdes::guard::ImageFault::fatal() {
            let corrupted = mdes::guard::corrupt_image(image, fault, seed);
            prop_assert!(
                lmdes::read(&corrupted).is_err(),
                "{} image decoded despite corruption (seed {seed})",
                fault.name()
            );
        }
        let flipped = mdes::guard::corrupt_image(image, mdes::guard::ImageFault::BitFlip, seed);
        let _ = lmdes::read(&flipped);
    }
}

/// One shared optimized K5 image for the corruption cases (compiling
/// per proptest case would dominate the suite's runtime).
fn k5_image() -> &'static [u8] {
    use std::sync::OnceLock;
    static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
    IMAGE.get_or_init(|| {
        let mut spec = Machine::K5.spec();
        mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
        lmdes::write(&CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap())
    })
}
