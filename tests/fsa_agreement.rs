//! The finite-state-automaton baseline must accept exactly the same
//! issue sequences as the reservation-table checker, on the bundled
//! machines and on random machines.

mod common;

use common::{arb_spec_plan, build_spec};
use mdes::automata::Automaton;
use mdes::core::{CheckStats, Checker, ClassId, CompiledMdes, RuMap, UsageEncoding};
use mdes::machines::Machine;
use mdes::workload::Pcg32;
use proptest::prelude::*;

/// Drives both detectors through a pseudorandom issue/advance script and
/// asserts identical decisions.
fn agree(compiled: &CompiledMdes, seed: u64, steps: usize) {
    let classes: Vec<ClassId> = (0..compiled.classes().len())
        .map(ClassId::from_index)
        .collect();
    let checker = Checker::new(compiled);
    let mut fsa = Automaton::new(compiled);
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut rng = Pcg32::new(seed, 99);
    let mut state = Automaton::START;
    let mut cycle = 0i32;

    for step in 0..steps {
        if rng.gen_range(4) == 0 {
            cycle += 1;
            state = fsa.advance(state);
            continue;
        }
        let class = classes[rng.gen_range(classes.len() as u32) as usize];
        let table_ok = checker
            .try_reserve(&mut ru, class, cycle, &mut stats)
            .is_some();
        match fsa.issue(state, class) {
            Some(next) => {
                assert!(table_ok, "step {step}: FSA accepted, tables rejected");
                state = next;
            }
            None => {
                assert!(!table_ok, "step {step}: FSA rejected, tables accepted");
            }
        }
    }
}

#[test]
fn fsa_agrees_with_checker_on_all_bundled_machines() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        agree(&compiled, 7, 400);
    }
}

#[test]
fn fsa_agrees_on_optimized_machines() {
    for machine in Machine::all() {
        let mut spec = machine.spec();
        mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        agree(&compiled, 11, 400);
    }
}

/// Table-checker twin of `Automaton::pack_in_order`: greedy in-order
/// packing against the RU map.
fn pack_with_tables(compiled: &CompiledMdes, classes: &[ClassId]) -> i32 {
    if classes.is_empty() {
        return 0;
    }
    let checker = Checker::new(compiled);
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut cycle = 0i32;
    for &class in classes {
        let mut spins = 0;
        while checker
            .try_reserve(&mut ru, class, cycle, &mut stats)
            .is_none()
        {
            cycle += 1;
            spins += 1;
            assert!(spins < 1 << 12, "class can never issue");
        }
    }
    cycle + 1
}

#[test]
fn fsa_packing_matches_table_packing_on_every_machine() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let classes: Vec<ClassId> = (0..compiled.classes().len())
            .map(ClassId::from_index)
            .collect();
        // A pseudorandom dependence-free stream of 120 operations.
        let mut rng = Pcg32::new(31, 5);
        let stream: Vec<ClassId> = (0..120)
            .map(|_| classes[rng.gen_range(classes.len() as u32) as usize])
            .collect();

        let mut fsa = Automaton::new(&compiled);
        let (fsa_cycles, _) = fsa.pack_in_order(&stream);
        let table_cycles = pack_with_tables(&compiled, &stream);
        assert_eq!(fsa_cycles, table_cycles, "{}", machine.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fsa_agrees_on_random_machines(plan in arb_spec_plan(), seed in 0u64..1_000) {
        let spec = build_spec(&plan);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        agree(&compiled, seed, 200);
    }

    #[test]
    fn fsa_packing_matches_table_packing_on_random_machines(
        plan in arb_spec_plan(),
        picks in prop::collection::vec(0usize..8, 1..40),
    ) {
        let spec = build_spec(&plan);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let stream: Vec<ClassId> = picks
            .into_iter()
            .map(|p| ClassId::from_index(p % compiled.classes().len()))
            .collect();
        let mut fsa = Automaton::new(&compiled);
        let (fsa_cycles, _) = fsa.pack_in_order(&stream);
        prop_assert_eq!(fsa_cycles, pack_with_tables(&compiled, &stream));
    }
}
