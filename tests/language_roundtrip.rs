//! HMDL round-trip tests: printing a spec and re-parsing it must yield a
//! structurally identical spec — for the bundled machine descriptions and
//! for randomly generated machines.

mod common;

use common::{arb_spec_plan, build_spec};
use mdes::lang::{compile, print, structurally_equal};
use mdes::machines::Machine;
use proptest::prelude::*;

#[test]
fn bundled_machines_round_trip() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let printed = print(&spec).expect("bundled specs are printable");
        let reparsed = compile(&printed)
            .unwrap_or_else(|e| panic!("{}: {}", machine.name(), e.render(&printed)));
        assert!(
            structurally_equal(&spec, &reparsed),
            "{} round trip changed the description",
            machine.name()
        );
    }
}

#[test]
fn bundled_machines_round_trip_is_a_fixpoint() {
    // print(parse(print(spec))) == print(spec): the flat form is stable.
    for machine in Machine::all() {
        let spec = machine.spec();
        let first = print(&spec).unwrap();
        let second = print(&compile(&first).unwrap()).unwrap();
        assert_eq!(
            first,
            second,
            "{} printing is not a fixpoint",
            machine.name()
        );
    }
}

#[test]
fn optimized_machines_still_round_trip() {
    // Transformed specs (factored trees, shifted times) must also be
    // expressible in the language.
    for machine in Machine::all() {
        let mut spec = machine.spec();
        mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
        let printed = print(&spec).expect("optimized specs are printable");
        let reparsed = compile(&printed).expect("optimized specs reparse");
        assert!(structurally_equal(&spec, &reparsed), "{}", machine.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_specs_round_trip(plan in arb_spec_plan()) {
        let spec = build_spec(&plan);
        let printed = print(&spec).expect("generated specs are printable");
        let reparsed = compile(&printed).expect("generated specs reparse");
        prop_assert!(structurally_equal(&spec, &reparsed), "printed:\n{printed}");
    }

    #[test]
    fn random_specs_survive_optimize_then_round_trip(plan in arb_spec_plan()) {
        let mut spec = build_spec(&plan);
        mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
        let printed = print(&spec).expect("printable");
        let reparsed = compile(&printed).expect("reparses");
        prop_assert!(structurally_equal(&spec, &reparsed));
    }
}
