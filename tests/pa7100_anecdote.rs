//! Regression test for the paper's PA7100 anecdote (Section 5).
//!
//! During the original PA7100 retargeting, two reservation-table options
//! for memory operations became identical and "the MDES author never
//! realized this since correct output was still generated".  Redundancy +
//! dominated-option elimination must (a) remove such a duplicate, (b)
//! keep only the higher-priority copy, and (c) leave every schedule
//! unchanged.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::sched::ListScheduler;
use mdes::workload::{generate_uniform, uniform_config};

/// Re-enacts the authoring mistake: appends an exact duplicate of the
/// highest-priority option to the end (lowest priority) of the busiest
/// OR-tree of the PA7100 description.
fn pa7100_with_duplicate() -> (mdes::core::MdesSpec, mdes::core::OptionId) {
    let mut spec = Machine::Pa7100.spec();
    let tree_id = spec
        .or_tree_ids()
        .max_by_key(|&id| spec.or_tree(id).options.len())
        .expect("PA7100 has OR-trees");
    let original = spec.or_tree(tree_id).options[0];
    let duplicate = spec.add_option(spec.option(original).clone());
    spec.or_tree_mut(tree_id).options.push(duplicate);
    assert!(spec.validate().is_ok(), "injected spec must stay valid");
    (spec, duplicate)
}

#[test]
fn duplicate_option_is_eliminated_and_higher_priority_copy_kept() {
    let (mut spec, duplicate) = pa7100_with_duplicate();
    let report = optimize(&mut spec, &PipelineConfig::section5());

    let removed =
        report.redundancy.unwrap().options_merged + report.dominance.unwrap().options_removed;
    assert!(removed >= 1, "the duplicate survived the Section-5 passes");
    // The duplicate (lower-priority copy) is gone from every tree; ties
    // keep the higher-priority option only.
    for tree in spec.or_tree_ids() {
        assert!(
            !spec.or_tree(tree).options.contains(&duplicate),
            "a tree still references the injected duplicate"
        );
    }
}

#[test]
fn cleanup_restores_the_description_to_its_optimized_form() {
    let (mut tainted, _) = pa7100_with_duplicate();
    let mut pristine = Machine::Pa7100.spec();
    let config = PipelineConfig::full();
    optimize(&mut tainted, &config);
    optimize(&mut pristine, &config);
    // Same options, trees, and classes: the duplicate left no trace.
    assert_eq!(tainted.num_options(), pristine.num_options());
    assert_eq!(tainted.num_or_trees(), pristine.num_or_trees());
    assert_eq!(tainted.num_classes(), pristine.num_classes());
}

#[test]
fn schedules_are_identical_with_and_without_the_duplicate() {
    let (mut tainted, _) = pa7100_with_duplicate();
    let pristine = Machine::Pa7100.spec();
    optimize(&mut tainted, &PipelineConfig::full());

    // Workload comes from the pristine spec so both sides schedule the
    // same class stream.
    let workload = generate_uniform(&pristine, &uniform_config(2_000));
    let mut cycles = Vec::new();
    for spec in [&pristine, &tainted] {
        let compiled = CompiledMdes::compile(spec, UsageEncoding::BitVector).unwrap();
        let scheduler = ListScheduler::new(&compiled);
        let mut stats = CheckStats::new();
        let all: Vec<i32> = workload
            .blocks
            .iter()
            .flat_map(|b| scheduler.schedule(b, &mut stats).cycles())
            .collect();
        cycles.push(all);
    }
    assert_eq!(cycles[0], cycles[1], "the duplicate changed a schedule");
}
