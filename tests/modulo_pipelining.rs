//! Iterative modulo scheduling across the bundled machines: every loop
//! verifies, II respects both lower bounds, and unscheduling actually
//! happens under contention (the Section-10 capability argument).

mod common;

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::sched::{LoopBlock, ModuloScheduler};
use mdes::workload::{generate, WorkloadConfig};

/// Builds loop bodies from workload blocks (dropping the trailing branch,
/// which a software-pipelined loop replaces with its own back edge).
fn loops_for(machine: Machine, count: usize) -> (CompiledMdes, Vec<LoopBlock>) {
    let spec = machine.spec();
    let config = WorkloadConfig::paper_default(machine).with_total_ops(count * 16);
    let workload = generate(machine, &spec, &config);
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let mut loops = mdes::workload::as_loop_bodies(&workload);
    loops.truncate(count);
    (compiled, loops)
}

#[test]
fn modulo_schedules_verify_on_every_machine() {
    for machine in Machine::all() {
        let (compiled, loops) = loops_for(machine, 12);
        let scheduler = ModuloScheduler::new(&compiled);
        let mut stats = CheckStats::new();
        for (i, looped) in loops.iter().enumerate() {
            let schedule = scheduler.schedule(looped, &mut stats);
            schedule
                .verify(looped, &compiled)
                .unwrap_or_else(|e| panic!("{} loop {i}: {e}", machine.name()));
            assert!(
                schedule.ii >= scheduler.res_mii(looped),
                "{} loop {i}: II below ResMII",
                machine.name()
            );
            assert!(
                schedule.ii >= scheduler.rec_mii(looped),
                "{} loop {i}: II below RecMII",
                machine.name()
            );
        }
    }
}

#[test]
fn modulo_scheduling_also_works_on_optimized_descriptions() {
    // The transformations must not break modulo scheduling: the MRT is
    // just another RU map.
    let machine = Machine::SuperSparc;
    let (_, loops) = loops_for(machine, 6);
    let mut spec = machine.spec();
    mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let scheduler = ModuloScheduler::new(&compiled);
    let mut stats = CheckStats::new();
    for looped in &loops {
        let schedule = scheduler.schedule(looped, &mut stats);
        schedule.verify(looped, &compiled).unwrap();
    }
}

#[test]
fn achieved_ii_matches_between_original_and_optimized_descriptions() {
    // Same constraints → the resource-bound II should agree.
    let machine = Machine::K5;
    let (original, loops) = loops_for(machine, 6);
    let mut spec = machine.spec();
    mdes::opt::optimize(&mut spec, &mdes::opt::PipelineConfig::full());
    let optimized = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();

    let mut stats = CheckStats::new();
    for looped in &loops {
        let a = ModuloScheduler::new(&original).schedule(looped, &mut stats);
        let b = ModuloScheduler::new(&optimized).schedule(looped, &mut stats);
        assert_eq!(a.ii, b.ii, "{:?}", looped.body.ops.len());
    }
}
