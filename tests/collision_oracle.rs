//! Collision-vector oracle tests (Section 7).
//!
//! `forbidden_latencies` is the analytical form of a question the RU map
//! answers operationally: may an operation using option B issue `t`
//! cycles after one using option A?  These tests pin the two answers
//! together on every bundled machine description, and check the
//! structural properties that make collision vectors usable as an
//! analysis tool (direction duality, zero-latency symmetry, full matrix
//! coverage).

use mdes_core::collision::{collision_matrix, forbidden_latencies, latency_allowed};
use mdes_core::spec::TableOption;
use mdes_core::RuMap;
use mdes_machines::Machine;

/// The latency window worth probing for a pair: beyond the span of
/// either table no usage times can coincide, so every larger latency is
/// trivially allowed.
fn probe_window(a: &TableOption, b: &TableOption) -> i32 {
    let span = |o: &TableOption| {
        let lo = o.usages.iter().map(|u| u.time).min().unwrap_or(0);
        let hi = o.usages.iter().map(|u| u.time).max().unwrap_or(0);
        hi - lo
    };
    span(a) + span(b) + 2
}

/// Replays the pair on a fresh RU map: reserve all of `a`'s usages at
/// issue cycle 0, then ask whether all of `b`'s usages are free at issue
/// cycle `t`.  One resource bit per spec resource, exactly like the
/// scalar usage encoding.
fn replay_allows(a: &TableOption, b: &TableOption, t: i32) -> bool {
    let mut ru = RuMap::new();
    for ua in &a.usages {
        ru.reserve(ua.time, 1u64 << ua.resource.index());
    }
    b.usages
        .iter()
        .all(|ub| ru.is_free(t + ub.time, 1u64 << ub.resource.index()))
}

/// `latency_allowed` must agree with brute-force RU-map replay for every
/// ordered option pair of every bundled machine, across the whole
/// window where collisions are possible.
#[test]
fn latency_allowed_agrees_with_rumap_replay_on_bundled_machines() {
    for machine in Machine::all() {
        let spec = machine.spec();
        assert!(
            spec.resources().len() <= 64,
            "{}: replay oracle needs one bit per resource",
            machine.name()
        );
        for a in spec.option_ids() {
            for b in spec.option_ids() {
                let (oa, ob) = (spec.option(a), spec.option(b));
                for t in 0..=probe_window(oa, ob) {
                    assert_eq!(
                        latency_allowed(oa, ob, t),
                        replay_allows(oa, ob, t),
                        "{}: pair ({a:?}, {b:?}) at latency {t}",
                        machine.name()
                    );
                }
            }
        }
    }
}

/// A zero-latency collision is issue-slot contention, which cannot
/// depend on which operation is called "first": 0 is forbidden for
/// (a, b) exactly when it is forbidden for (b, a).
#[test]
fn zero_latency_collisions_are_symmetric() {
    for machine in Machine::all() {
        let spec = machine.spec();
        for a in spec.option_ids() {
            for b in spec.option_ids() {
                let ab = forbidden_latencies(spec.option(a), spec.option(b));
                let ba = forbidden_latencies(spec.option(b), spec.option(a));
                assert_eq!(
                    ab.contains(&0),
                    ba.contains(&0),
                    "{}: pair ({a:?}, {b:?})",
                    machine.name()
                );
            }
        }
    }
}

/// Direction duality: "b collides t cycles after a" is the same event
/// as "a collides t cycles *before* b", so the two ordered collision
/// vectors together are exactly the pair's usage-time difference set.
#[test]
fn reversed_pairs_partition_the_difference_set() {
    for machine in Machine::all() {
        let spec = machine.spec();
        for a in spec.option_ids() {
            for b in spec.option_ids() {
                let (oa, ob) = (spec.option(a), spec.option(b));
                let mut differences: Vec<i32> = oa
                    .usages
                    .iter()
                    .flat_map(|ua| {
                        ob.usages
                            .iter()
                            .filter(|ub| ub.resource == ua.resource)
                            .map(|ub| ua.time - ub.time)
                    })
                    .collect();
                differences.sort_unstable();
                differences.dedup();

                let forward = forbidden_latencies(oa, ob);
                let backward = forbidden_latencies(ob, oa);
                let mut reunited: Vec<i32> = forward
                    .iter()
                    .copied()
                    .chain(backward.iter().map(|&t| -t))
                    .collect();
                reunited.sort_unstable();
                reunited.dedup();
                assert_eq!(
                    differences,
                    reunited,
                    "{}: pair ({a:?}, {b:?})",
                    machine.name()
                );
            }
        }
    }
}

/// `collision_matrix` covers every ordered pair exactly once and each
/// entry matches a direct `forbidden_latencies` call.
#[test]
fn collision_matrix_is_complete_and_consistent() {
    for machine in Machine::all() {
        let spec = machine.spec();
        let options: Vec<_> = spec.option_ids().collect();
        let matrix = collision_matrix(&spec);
        assert_eq!(
            matrix.len(),
            options.len() * options.len(),
            "{}",
            machine.name()
        );
        for ((a, b), vector) in &matrix {
            assert_eq!(
                *vector,
                forbidden_latencies(spec.option(*a), spec.option(*b)),
                "{}: pair ({a:?}, {b:?})",
                machine.name()
            );
            // Forbidden latencies are initiation intervals: non-negative
            // by construction.
            assert!(vector.iter().all(|&t| t >= 0), "{}", machine.name());
        }
        // Every ordered pair appears exactly once.
        let mut keys: Vec<_> = matrix.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), matrix.len(), "{}", machine.name());
    }
}
