//! Multi-seed schedule invariance: the Section-4 "exact same schedule"
//! guarantee must hold for *any* workload, not just the default seed.
//! Four seeds per machine, comparing the authored description against
//! the expanded-OR baseline and the fully optimized form.

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::expand::expand_to_or;
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::sched::ListScheduler;
use mdes::workload::{generate, WorkloadConfig};

fn schedule_hash(spec: &mdes::core::MdesSpec, workload: &mdes::workload::Workload) -> u64 {
    let compiled = CompiledMdes::compile(spec, UsageEncoding::BitVector).unwrap();
    let scheduler = ListScheduler::new(&compiled);
    let mut stats = CheckStats::new();
    let mut hash: u64 = 0xcbf29ce484222325;
    for block in &workload.blocks {
        for cycle in scheduler.schedule(block, &mut stats).cycles() {
            hash ^= cycle as u32 as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

#[test]
fn schedules_are_invariant_across_representations_for_many_seeds() {
    for machine in Machine::all() {
        let authored = machine.spec();
        let (expanded, _) = expand_to_or(&authored);
        let mut optimized = authored.clone();
        optimize(&mut optimized, &PipelineConfig::full());
        let mut optimized_or = expanded.clone();
        optimize(&mut optimized_or, &PipelineConfig::full());

        for seed in [1u64, 0xBEEF, 0x5EED, 42] {
            let workload = generate(
                machine,
                &authored,
                &WorkloadConfig::paper_default(machine)
                    .with_total_ops(700)
                    .with_seed(seed),
            );
            let reference = schedule_hash(&authored, &workload);
            for (label, spec) in [
                ("expanded OR", &expanded),
                ("optimized AND/OR", &optimized),
                ("optimized OR", &optimized_or),
            ] {
                assert_eq!(
                    schedule_hash(spec, &workload),
                    reference,
                    "{} seed {seed:#x}: `{label}` diverged",
                    machine.name()
                );
            }
        }
    }
}

#[test]
fn schedules_are_invariant_under_higher_ilp_pressure() {
    // The invariance must also hold where contention (and therefore the
    // number of failing attempts whose short-circuiting differs between
    // representations) is much higher.
    let machine = Machine::SuperSparc;
    let authored = machine.spec();
    let mut optimized = authored.clone();
    optimize(&mut optimized, &PipelineConfig::full());
    let (expanded, _) = expand_to_or(&authored);

    let workload = generate(
        machine,
        &authored,
        &WorkloadConfig::paper_default(machine)
            .with_total_ops(900)
            .with_ilp_scale(4.0),
    );
    let reference = schedule_hash(&authored, &workload);
    assert_eq!(schedule_hash(&optimized, &workload), reference);
    assert_eq!(schedule_hash(&expanded, &workload), reference);
}
