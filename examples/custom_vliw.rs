//! Retarget the facility to a machine of your own: an 8-wide, two-cluster
//! VLIW that never existed.  Twenty lines of HMDL describe constraints
//! whose traditional OR-tree form needs thousands of enumerated
//! reservation tables — the scalability argument for AND/OR-trees on
//! future machines (the paper expected "the latest generation of
//! microprocessors" to look like its K5 numbers; a clustered VLIW is
//! worse).
//!
//! Run with: `cargo run --release --example custom_vliw`

use mdes::core::size::measure;
use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::sched::{Block, ListScheduler, Op, Reg};

const VLIW: &str = "
    let SLOTS = 8;
    resource Slot[SLOTS];          // global issue slots
    resource Alu0[3];              // cluster-0 ALUs
    resource Alu1[3];              // cluster-1 ALUs
    resource Mem0; resource Mem1;  // one memory port per cluster
    resource XBus[2];              // inter-cluster copy buses
    resource Br;

    or_tree AnySlot = first_of(for s in 0..SLOTS: { Slot[s] @ 0 });
    or_tree AnyAlu0 = first_of(for a in 0..3: { Alu0[a] @ 0 });
    or_tree AnyAlu1 = first_of(for a in 0..3: { Alu1[a] @ 0 });
    or_tree UseMem0 = first_of({ Mem0 @ 0, Mem0 @ 1 });
    or_tree UseMem1 = first_of({ Mem1 @ 0, Mem1 @ 1 });
    or_tree AnyXBus = first_of(for x in 0..2: { XBus[x] @ 0 });
    or_tree UseBr   = first_of({ Br @ 0 });

    and_or_tree Alu0Op  = all_of(AnyAlu0, AnySlot);
    and_or_tree Alu1Op  = all_of(AnyAlu1, AnySlot);
    and_or_tree Load0   = all_of(UseMem0, AnySlot);
    and_or_tree Load1   = all_of(UseMem1, AnySlot);
    and_or_tree CopyOp  = all_of(AnyXBus, AnySlot);
    and_or_tree BrOp    = all_of(UseBr, AnySlot);

    class alu0  { constraint = Alu0Op; latency = 1; }
    class alu1  { constraint = Alu1Op; latency = 1; }
    class load0 { constraint = Load0; latency = 3; flags = load; }
    class load1 { constraint = Load1; latency = 3; flags = load; }
    class xcopy { constraint = CopyOp; latency = 2; }
    class br    { constraint = BrOp; latency = 1; flags = branch; }
";

fn main() {
    let spec = mdes::lang::compile(VLIW).expect("valid HMDL");

    // The representation argument, on a machine nobody has built yet.
    let andor = measure(&CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap());
    let (expanded, report) = mdes::opt::expand_to_or(&spec);
    let or = measure(&CompiledMdes::compile(&expanded, UsageEncoding::Scalar).unwrap());
    println!(
        "AND/OR description: {} options, {} bytes",
        andor.num_options,
        andor.total()
    );
    println!(
        "expanded OR baseline: {} options ({} generated), {} bytes — {:.0}x larger\n",
        or.num_options,
        report.options_created,
        or.total(),
        or.total() as f64 / andor.total() as f64
    );

    // Optimize and schedule a cross-cluster block.
    let mut optimized = spec.clone();
    optimize(&mut optimized, &PipelineConfig::full());
    let mdes = CompiledMdes::compile(&optimized, UsageEncoding::BitVector).unwrap();
    let class = |n: &str| mdes.class_by_name(n).unwrap();

    let mut block = Block::new();
    // Cluster 0 computes an address, loads, and ships the value across.
    block.push(Op::new(class("alu0"), vec![Reg(1)], vec![Reg(0)]).with_mnemonic("add0 r1,r0"));
    block.push(Op::new(class("load0"), vec![Reg(2)], vec![Reg(1)]).with_mnemonic("ld0 r2,[r1]"));
    block.push(
        Op::new(class("xcopy"), vec![Reg(32)], vec![Reg(2)]).with_mnemonic("xcopy c1:r32,r2"),
    );
    // Cluster 1 works independently, then combines.
    block.push(Op::new(class("alu1"), vec![Reg(33)], vec![Reg(34)]).with_mnemonic("add1 r33,r34"));
    block
        .push(Op::new(class("load1"), vec![Reg(35)], vec![Reg(33)]).with_mnemonic("ld1 r35,[r33]"));
    block.push(
        Op::new(class("alu1"), vec![Reg(36)], vec![Reg(32), Reg(35)])
            .with_mnemonic("add1 r36,r32,r35"),
    );
    block.push(Op::new(class("br"), vec![], vec![Reg(36)]).with_mnemonic("brnz r36"));

    let mut stats = CheckStats::new();
    let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
    println!("cycle | VLIW word");
    println!("------+-------------------------------------------");
    for cycle in 0..schedule.length {
        let word: Vec<&str> = (0..block.len())
            .filter(|&i| schedule.ops[i].cycle == cycle)
            .map(|i| block.ops[i].mnemonic.as_str())
            .collect();
        println!("{cycle:>5} | {}", word.join("  ||  "));
    }
    println!(
        "\n{} cycles; {:.2} checks/attempt on the optimized AND/OR description",
        schedule.length,
        stats.checks_per_attempt()
    );
}
