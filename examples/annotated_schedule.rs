//! Schedule a real-looking SPARC basic block and print the cycle-by-cycle
//! result with opcode mnemonics from the machine's `op` vocabulary.
//!
//! Run with: `cargo run --example annotated_schedule`

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::optimized;
use mdes::sched::ListScheduler;
use mdes::workload::{generate, WorkloadConfig};

fn main() {
    let machine = Machine::SuperSparc;
    let spec = optimized(&machine.spec());
    let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let scheduler = ListScheduler::new(&mdes);

    let config = WorkloadConfig::paper_default(machine)
        .with_total_ops(120)
        .with_mnemonics();
    let workload = generate(machine, &spec, &config);

    let mut stats = CheckStats::new();
    for (b, block) in workload.blocks.iter().take(3).enumerate() {
        let schedule = scheduler.schedule(block, &mut stats);
        println!(
            "block {b} — {} ops in {} cycles",
            block.len(),
            schedule.length
        );
        for cycle in 0..schedule.length {
            let issued: Vec<String> = (0..block.len())
                .filter(|&i| schedule.ops[i].cycle == cycle)
                .map(|i| {
                    let op = &block.ops[i];
                    let dests: Vec<String> = op.dests.iter().map(|r| format!("r{}", r.0)).collect();
                    let srcs: Vec<String> = op.srcs.iter().map(|r| format!("r{}", r.0)).collect();
                    let name = if op.mnemonic.is_empty() {
                        spec.class(op.class).name.clone()
                    } else {
                        op.mnemonic.clone()
                    };
                    match (dests.is_empty(), srcs.is_empty()) {
                        (false, false) => format!("{name} {}, {}", dests.join(","), srcs.join(",")),
                        (false, true) => format!("{name} {}", dests.join(",")),
                        (true, false) => format!("{name} {}", srcs.join(",")),
                        (true, true) => name,
                    }
                })
                .collect();
            println!("  {cycle:>3} | {}", issued.join("  ;  "));
        }
        println!();
    }
    println!(
        "({} attempts, {:.2} options and {:.2} checks per attempt on the optimized AND/OR MDES)",
        stats.attempts,
        stats.options_per_attempt_avg(),
        stats.checks_per_attempt()
    );
}
