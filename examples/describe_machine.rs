//! Inspect one of the bundled machine descriptions: per-class option
//! counts (the paper's Tables 1–4 "Number of Options" column), the
//! constraint trees of a chosen class rendered as reservation tables, and
//! the memory footprint before/after the optimization pipeline.
//!
//! Run with: `cargo run --example describe_machine -- SuperSPARC load`

use mdes::core::size::measure;
use mdes::core::{pretty, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::pipeline::{optimize, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let machine_name = args.first().map(String::as_str).unwrap_or("SuperSPARC");
    let class_name = args.get(1).map(String::as_str).unwrap_or("load");

    let machine = Machine::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(machine_name))
        .unwrap_or_else(|| {
            eprintln!("unknown machine `{machine_name}` (PA7100, Pentium, SuperSPARC, K5)");
            std::process::exit(2);
        });

    let spec = machine.spec();
    println!("=== {} ===", machine.name());
    println!(
        "{} resources, {} options, {} OR-trees, {} AND/OR-trees, {} classes\n",
        spec.resources().len(),
        spec.num_options(),
        spec.num_or_trees(),
        spec.num_and_or_trees(),
        spec.num_classes()
    );

    println!("class                 options");
    println!("---------------------+--------");
    for id in spec.class_ids() {
        println!(
            "{:<21}| {:>6}",
            spec.class(id).name,
            spec.class_option_count(id)
        );
    }

    println!("\nconstraint of class `{class_name}`:");
    match pretty::class_constraint(&spec, class_name) {
        Some(rendered) => println!("{rendered}"),
        None => println!("  (class `{class_name}` not found)"),
    }

    // Memory footprint before and after optimization.
    let original = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
    let mut optimized_spec = spec.clone();
    optimize(&mut optimized_spec, &PipelineConfig::full());
    let optimized = CompiledMdes::compile(&optimized_spec, UsageEncoding::BitVector).unwrap();
    let before = measure(&original);
    let after = measure(&optimized);
    println!(
        "memory: {} bytes as authored (scalar) -> {} bytes fully optimized (bit-vector)",
        before.total(),
        after.total()
    );
    println!(
        "options in pool: {} -> {}; RU-map probes stored: {} -> {}",
        before.num_options, after.num_options, before.num_checks, after.num_checks
    );
}
