//! Quickstart: describe a machine in HMDL, optimize the description,
//! and schedule a basic block with the MDES-driven list scheduler.
//!
//! Run with: `cargo run --example quickstart`

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::opt::pipeline::{optimize, PipelineConfig};
use mdes::sched::{Block, ListScheduler, Op, Reg};

fn main() {
    // 1. A small dual-issue machine, written in the high-level language:
    //    two decoders, one memory port, two ALUs, one write-back bus port
    //    per side.
    let source = "
        resource Decoder[2];
        resource M;
        resource ALU[2];

        or_tree AnyDecoder = first_of(for d in 0..2: { Decoder[d] @ -1 });
        or_tree AnyAlu     = first_of(for a in 0..2: { ALU[a] @ 0 });
        or_tree UseM       = first_of({ M @ 0 });

        and_or_tree AluOp  = all_of(AnyAlu, AnyDecoder);
        and_or_tree MemOp  = all_of(UseM, AnyDecoder);

        class alu  { constraint = AluOp; latency = 1; }
        class load { constraint = MemOp; latency = 2; flags = load; }
        class store { constraint = MemOp; latency = 1; flags = store; }
    ";
    let mut spec = mdes::lang::compile(source).expect("valid HMDL");

    // 2. Run the paper's transformation pipeline (redundancy elimination,
    //    dominated-option removal, usage-time shifting, check ordering,
    //    AND/OR conflict-detection ordering, common-usage factoring).
    let report = optimize(&mut spec, &PipelineConfig::full());
    println!("pipeline: {report:#?}\n");

    // 3. Compile to the low-level bit-vector representation.
    let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).expect("compiles");
    let alu = mdes.class_by_name("alu").unwrap();
    let load = mdes.class_by_name("load").unwrap();
    let store = mdes.class_by_name("store").unwrap();

    // 4. A little block: two loads feed two adds, results are stored.
    let mut block = Block::new();
    block.push(Op::new(load, vec![Reg(1)], vec![Reg(10)]).with_mnemonic("ld r1,[r10]"));
    block.push(Op::new(load, vec![Reg(2)], vec![Reg(11)]).with_mnemonic("ld r2,[r11]"));
    block.push(Op::new(alu, vec![Reg(3)], vec![Reg(1), Reg(2)]).with_mnemonic("add r3,r1,r2"));
    block.push(Op::new(alu, vec![Reg(4)], vec![Reg(3), Reg(2)]).with_mnemonic("add r4,r3,r2"));
    block.push(Op::new(store, vec![], vec![Reg(4), Reg(12)]).with_mnemonic("st [r12],r4"));

    // 5. Schedule and report.
    let mut stats = CheckStats::new();
    let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);

    println!("cycle | operation");
    println!("------+-----------------");
    let mut order: Vec<usize> = (0..block.len()).collect();
    order.sort_by_key(|&i| schedule.ops[i].cycle);
    for i in order {
        println!("{:>5} | {}", schedule.ops[i].cycle, block.ops[i].mnemonic);
    }
    println!(
        "\nschedule length: {} cycles; {} scheduling attempts, {:.2} resource checks/attempt",
        schedule.length,
        stats.attempts,
        stats.checks_per_attempt()
    );

    // 6. The RU map made visible: which operation holds which resource
    //    in which cycle.
    println!("\nresource occupancy (ops labeled 0-4):");
    print!(
        "{}",
        mdes::sched::occupancy_chart(&spec, &mdes, &block, &schedule)
    );
}
