//! Software-pipeline a loop with iterative modulo scheduling (Rau [12]),
//! the "advanced scheduling technique" whose unscheduling requirement the
//! paper uses to argue for reservation tables over finite-state automata
//! (Section 10).
//!
//! Run with: `cargo run --example software_pipeline`

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::sched::{Block, LoopBlock, ModuloScheduler, Op, Reg};

fn main() {
    // A single-memory-port, dual-ALU machine.
    let spec = mdes::lang::compile(
        "
        resource M;
        resource ALU[2];
        or_tree UseM   = first_of({ M @ 0 });
        or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
        class load  { constraint = UseM;   latency = 2; flags = load;  }
        class store { constraint = UseM;   latency = 1; flags = store; }
        class alu   { constraint = AnyAlu; latency = 1; }
    ",
    )
    .expect("valid HMDL");
    let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let load = mdes.class_by_name("load").unwrap();
    let store = mdes.class_by_name("store").unwrap();
    let alu = mdes.class_by_name("alu").unwrap();

    // The loop body:  a[i] = a[i] * 3 + 1  (load; two ALU ops; store),
    // with the address increment carried to the next iteration.
    let mut body = Block::new();
    let ld = body.push(Op::new(load, vec![Reg(1)], vec![Reg(0)]).with_mnemonic("ld r1,[r0]"));
    let mul = body.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]).with_mnemonic("mul r2,r1,3"));
    let add = body.push(Op::new(alu, vec![Reg(3)], vec![Reg(2)]).with_mnemonic("add r3,r2,1"));
    let st = body.push(Op::new(store, vec![], vec![Reg(3), Reg(0)]).with_mnemonic("st [r0],r3"));
    let inc = body.push(Op::new(alu, vec![Reg(0)], vec![Reg(0)]).with_mnemonic("add r0,r0,4"));

    let looped = LoopBlock {
        body,
        // r0 computed by `inc` feeds next iteration's load and store.
        carried: vec![(inc, ld, 1, 1), (inc, st, 1, 1)],
    };

    let scheduler = ModuloScheduler::new(&mdes);
    println!(
        "ResMII = {} (two memory ops per iteration through one port)",
        scheduler.res_mii(&looped)
    );
    println!("RecMII = {}", scheduler.rec_mii(&looped));

    let mut stats = CheckStats::new();
    let schedule = scheduler.schedule(&looped, &mut stats);
    schedule
        .verify(&looped, &mdes)
        .expect("valid modulo schedule");

    println!("achieved II = {}\n", schedule.ii);
    println!("op                  cycle  MRT slot (cycle mod II)");
    println!("------------------  -----  -----------------------");
    let names = [
        "ld r1,[r0]",
        "mul r2,r1,3",
        "add r3,r2,1",
        "st [r0],r3",
        "add r0,r0,4",
    ];
    for (i, name) in names.iter().enumerate() {
        let _ = (ld, mul, add, st); // indices documented above
        println!(
            "{name:<18}  {:>5}  {:>6}",
            schedule.cycles[i],
            schedule.cycles[i].rem_euclid(schedule.ii)
        );
    }
    println!(
        "\nsteady state: one iteration starts every {} cycles (loop body spans {} cycles)",
        schedule.ii,
        schedule.cycles.iter().max().unwrap() - schedule.cycles.iter().min().unwrap() + 1
    );
}
