//! Walk the MDES transformation pipeline stage by stage on one machine,
//! showing what each of the paper's transformations contributes to the
//! size of the low-level representation.
//!
//! Run with: `cargo run --example optimize_pipeline -- K5`

use mdes::core::size::measure;
use mdes::core::{CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::timeshift::Direction;

fn main() {
    let machine_name = std::env::args().nth(1).unwrap_or_else(|| "K5".to_string());
    let machine = Machine::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(&machine_name))
        .unwrap_or_else(|| {
            eprintln!("unknown machine `{machine_name}` (PA7100, Pentium, SuperSPARC, K5)");
            std::process::exit(2);
        });

    let mut spec = machine.spec();
    println!("=== {} — transformation pipeline ===\n", machine.name());

    let snapshot = |label: &str, spec: &mdes::core::MdesSpec, encoding: UsageEncoding| {
        let compiled = CompiledMdes::compile(spec, encoding).unwrap();
        let memory = measure(&compiled);
        println!(
            "{label:<42} {:>5} options {:>7} bytes ({} probes stored)",
            memory.num_options,
            memory.total(),
            memory.num_checks
        );
    };

    snapshot(
        "as authored (scalar encoding)",
        &spec,
        UsageEncoding::Scalar,
    );

    let redundancy = mdes::opt::eliminate_redundancy(&mut spec);
    snapshot(
        &format!(
            "+ redundancy elimination ({} merged/swept)",
            redundancy.total()
        ),
        &spec,
        UsageEncoding::Scalar,
    );

    let dominance = mdes::opt::eliminate_dominated_options(&mut spec);
    snapshot(
        &format!(
            "+ dominated options ({} removed)",
            dominance.options_removed
        ),
        &spec,
        UsageEncoding::Scalar,
    );

    snapshot("+ bit-vector encoding", &spec, UsageEncoding::BitVector);

    let shift = mdes::opt::shift_usage_times(&mut spec, Direction::Forward);
    snapshot(
        &format!(
            "+ usage-time shifting ({} resources moved)",
            shift.resources_shifted()
        ),
        &spec,
        UsageEncoding::BitVector,
    );

    let sort = mdes::opt::sort_checks_zero_first(&mut spec, Direction::Forward);
    snapshot(
        &format!(
            "+ zero-first check order ({} reordered)",
            sort.options_reordered
        ),
        &spec,
        UsageEncoding::BitVector,
    );

    let tree_sort = mdes::opt::sort_and_or_trees(&mut spec);
    snapshot(
        &format!(
            "+ AND/OR conflict-detect order ({} trees)",
            tree_sort.trees_reordered
        ),
        &spec,
        UsageEncoding::BitVector,
    );

    let factor = mdes::opt::factor_common_usages(&mut spec);
    mdes::opt::eliminate_redundancy(&mut spec);
    snapshot(
        &format!(
            "+ common-usage factoring ({} merged, {} new trees)",
            factor.usages_merged, factor.trees_created
        ),
        &spec,
        UsageEncoding::BitVector,
    );
}
