//! The cost of inaccurate machine descriptions — the paper's opening
//! argument, demonstrated end to end.
//!
//! A SPEC-CINT92-like SuperSPARC stream is scheduled twice: with the
//! accurate description (register ports, branch-decoder rule, cascade
//! rule) and with a gcc-style "function unit mix and operation
//! latencies" approximation.  Both schedules are then *executed* by the
//! in-order issue simulator on the accurate machine.
//!
//! Run with: `cargo run --release --example inaccurate_mdes`

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::{approximate_superspark, Machine};
use mdes::sched::{order_of_schedule, simulate_in_order, ListScheduler};
use mdes::workload::{generate, WorkloadConfig};

fn main() {
    let machine = Machine::SuperSparc;
    let accurate_spec = machine.spec();
    let approx_spec = approximate_superspark();
    let accurate = CompiledMdes::compile(&accurate_spec, UsageEncoding::BitVector).unwrap();
    let approx = CompiledMdes::compile(&approx_spec, UsageEncoding::BitVector).unwrap();

    let config = WorkloadConfig::paper_default(machine).with_total_ops(20_000);
    let workload = generate(machine, &accurate_spec, &config);
    println!(
        "scheduling {} SuperSPARC operations in {} blocks\n",
        workload.total_ops,
        workload.blocks.len()
    );

    println!(
        "{:<24} {:>10} {:>10} {:>9} {:>7}",
        "scheduler description", "planned", "executed", "surprise", "IPC"
    );
    let mut executed_accurate = 0i64;
    for (label, mdes) in [
        ("accurate MDES", &accurate),
        ("FU-mix approximation", &approx),
    ] {
        let scheduler = ListScheduler::new(mdes);
        let mut stats = CheckStats::new();
        let (mut planned, mut executed) = (0i64, 0i64);
        for block in &workload.blocks {
            let schedule = scheduler.schedule(block, &mut stats);
            planned += i64::from(schedule.length);
            let result = simulate_in_order(block, &order_of_schedule(&schedule), &accurate);
            executed += i64::from(result.cycles);
        }
        if executed_accurate == 0 {
            executed_accurate = executed;
        }
        let surprise = (executed - planned) as f64 / planned as f64 * 100.0;
        println!(
            "{:<24} {:>10} {:>10} {:>8.1}% {:>7.2}",
            label,
            planned,
            executed,
            surprise,
            workload.total_ops as f64 / executed as f64
        );
    }
    println!(
        "\nThe approximation believes its schedules are shorter, but the real\n\
         machine's unmodeled constraints (register write ports, the branch\n\
         decoder rule, the cascade-unit rule) surface as stalls — the\n\
         \"unexpected execution cycles\" of the paper's introduction."
    );
}
