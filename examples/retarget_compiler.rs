//! The retargetability story of the paper's introduction: one generic,
//! high-quality list scheduler driven by an MDES, pointed at four very
//! different processors by swapping the machine description.
//!
//! A synthetic SPEC CINT92-like stream is generated per machine (mixes
//! calibrated to the paper's Tables 1–4) and scheduled; the program
//! prints per-machine schedule quality and checker-efficiency numbers.
//!
//! Run with: `cargo run --release --example retarget_compiler`

use mdes::core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes::machines::Machine;
use mdes::opt::optimized;
use mdes::sched::ListScheduler;
use mdes::workload::{generate, WorkloadConfig};

fn main() {
    let total_ops = 10_000;
    println!(
        "{:<11} {:>7} {:>7} {:>8} {:>9} {:>10} {:>10}",
        "machine", "ops", "blocks", "cycles", "ops/cyc", "attempts", "chk/att"
    );
    for machine in Machine::all() {
        // The identical scheduler core runs on every machine; only the
        // description changes.
        let spec = optimized(&machine.spec());
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let scheduler = ListScheduler::new(&mdes);

        let config = WorkloadConfig::paper_default(machine).with_total_ops(total_ops);
        let workload = generate(machine, &spec, &config);

        let mut stats = CheckStats::new();
        let mut total_cycles: i64 = 0;
        for block in &workload.blocks {
            let schedule = scheduler.schedule(block, &mut stats);
            total_cycles += i64::from(schedule.length);
        }

        println!(
            "{:<11} {:>7} {:>7} {:>8} {:>9.2} {:>10} {:>10.2}",
            machine.name(),
            workload.total_ops,
            workload.blocks.len(),
            total_cycles,
            workload.total_ops as f64 / total_cycles as f64,
            stats.attempts,
            stats.checks_per_attempt()
        );
    }
}
