//! # mdes-telemetry
//!
//! Pipeline-wide observability for the MDES facility: hierarchical timing
//! spans, monotonic counters, and gauges, collected into a [`Report`] that
//! serializes to JSON or a human-readable table.
//!
//! The crate has **zero external dependencies** — JSON support is provided
//! by the small [`json`] module.
//!
//! ## Model
//!
//! A [`Telemetry`] handle is a cheap [`Clone`] wrapper around shared state,
//! so it can be threaded through the language front end, the optimizer
//! pipeline, the compiler, and the schedulers without lifetime plumbing.
//!
//! * **Spans** measure wall-clock time for a named phase. [`Telemetry::span`]
//!   returns an RAII [`SpanGuard`]; the time between creation and drop is
//!   accumulated under a `/`-joined hierarchical path derived from the spans
//!   currently open on the same handle (e.g. `pipeline/redundancy`).
//! * **Counters** are monotonic `u64` sums ([`Telemetry::counter_add`]),
//!   safe to bump from multiple threads sharing a handle.
//! * **Gauges** are last-write-wins `f64` observations
//!   ([`Telemetry::gauge_set`]), used for before/after sizes and ratios.
//!
//! A handle created with [`Telemetry::disabled`] records nothing, so
//! instrumented code paths can run un-instrumented at near-zero cost.
//!
//! ```
//! let tel = mdes_telemetry::Telemetry::new();
//! {
//!     let _outer = tel.span("pipeline");
//!     let _inner = tel.span("redundancy");
//!     tel.counter_add("usages_removed", 17);
//! }
//! let report = tel.report();
//! assert!(report.span("pipeline/redundancy").is_some());
//! assert_eq!(report.counter("usages_removed"), Some(17));
//! ```

pub mod json;
pub mod latency;

pub use latency::LatencyRecorder;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use json::Json;

/// Schema tag written into every JSON report.
pub const SCHEMA: &str = "mdes-telemetry/1";

#[derive(Clone, Copy, Debug, Default)]
struct SpanStat {
    count: u64,
    nanos: u128,
}

#[derive(Default)]
struct State {
    /// Names of currently-open spans, innermost last.
    stack: Vec<String>,
    /// Accumulated time per hierarchical path.
    spans: BTreeMap<String, SpanStat>,
    /// Paths in first-open order, for stable report ordering.
    span_order: Vec<String>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events: Vec<EventEntry>,
}

struct Inner {
    start: Instant,
    state: Mutex<State>,
}

/// Shared, clonable telemetry registry.
///
/// All clones record into the same underlying state; see the crate docs
/// for the span/counter/gauge model.
#[derive(Clone)]
pub struct Telemetry {
    /// `None` means a disabled handle: every operation is a no-op.
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => f.write_str("Telemetry(enabled)"),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// Creates an enabled registry; the wall clock starts now.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Creates a disabled handle: spans, counters, and gauges are all
    /// no-ops and [`Telemetry::report`] returns an empty report.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.inner
            .as_ref()
            .map(|inner| inner.state.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Opens a timing span named `name`, nested under any span already open
    /// on this handle. The returned guard records the elapsed time when it
    /// is dropped.
    ///
    /// Span nesting is tracked per *registry*, not per thread: concurrent
    /// spans from threads sharing a handle would interleave on one stack,
    /// so open spans from one thread at a time (counters and gauges are
    /// unrestricted). Guards dropped out of order are handled by
    /// truncating the stack to the guard's depth.
    #[must_use = "the span ends when the guard is dropped"]
    pub fn span(&self, name: &str) -> SpanGuard {
        let depth = match self.lock() {
            Some(mut state) => {
                let path = if state.stack.is_empty() {
                    name.to_string()
                } else {
                    format!("{}/{}", state.stack.join("/"), name)
                };
                state.stack.push(name.to_string());
                if !state.spans.contains_key(&path) {
                    state.span_order.push(path.clone());
                    state.spans.insert(path, SpanStat::default());
                }
                state.stack.len()
            }
            None => 0,
        };
        SpanGuard {
            telemetry: self.clone(),
            started: Instant::now(),
            depth,
        }
    }

    /// Records one completed interval of `nanos` directly under `path`,
    /// bypassing the nesting stack.
    ///
    /// This is the thread-safe complement to [`Telemetry::span`]: workers
    /// that time their own phases on the side (queue wait, busy time) can
    /// fold the measurements in concurrently without interleaving on the
    /// registry's single span stack. The path is taken literally — it is
    /// not prefixed by any currently-open span.
    pub fn record_span(&self, path: &str, nanos: u128) {
        if let Some(mut state) = self.lock() {
            if !state.spans.contains_key(path) {
                state.span_order.push(path.to_string());
            }
            let stat = state.spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.nanos += nanos;
        }
    }

    /// Adds `delta` to the monotonic counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(mut state) = self.lock() {
            *state.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// The current value of counter `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.lock()
            .and_then(|state| state.counters.get(name).copied())
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut state) = self.lock() {
            state.gauges.insert(name.to_string(), value);
        }
    }

    /// The current value of gauge `name`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock()
            .and_then(|state| state.gauges.get(name).copied())
    }

    /// Appends a structured event named `name` with string key/value
    /// fields, preserving arrival order.
    ///
    /// Events carry one-off structured records that do not aggregate the
    /// way counters and gauges do — e.g. a pipeline-guard incident with
    /// its stage, seed, and minimized failing probe.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        if let Some(mut state) = self.lock() {
            state.events.push(EventEntry {
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
    }

    /// Snapshots everything recorded so far into a [`Report`].
    pub fn report(&self) -> Report {
        let Some(inner) = &self.inner else {
            return Report::default();
        };
        let state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let spans = state
            .span_order
            .iter()
            .map(|path| {
                let stat = state.spans[path];
                SpanEntry {
                    path: path.clone(),
                    count: stat.count,
                    nanos: stat.nanos,
                }
            })
            .collect();
        Report {
            wall_nanos: inner.start.elapsed().as_nanos(),
            spans,
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            events: state.events.clone(),
        }
    }
}

/// RAII guard returned by [`Telemetry::span`]; records elapsed time into
/// the span's path when dropped.
pub struct SpanGuard {
    telemetry: Telemetry,
    started: Instant,
    /// Stack depth right after this span was pushed (0 for disabled handles).
    depth: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return; // disabled handle
        }
        let elapsed = self.started.elapsed().as_nanos();
        if let Some(mut state) = self.telemetry.lock() {
            // If inner guards leaked past this one (dropped out of order),
            // close them too by truncating to this guard's own frame.
            state.stack.truncate(self.depth);
            let path = state.stack.join("/");
            state.stack.pop();
            let stat = state.spans.entry(path).or_default();
            stat.count += 1;
            stat.nanos += elapsed;
        }
    }
}

/// One span row in a [`Report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEntry {
    /// Hierarchical `/`-joined path, e.g. `pipeline/redundancy`.
    pub path: String,
    /// How many times the span was entered and closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all entries.
    pub nanos: u128,
}

/// One structured event in a [`Report`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventEntry {
    /// Event name, e.g. `guard/incident`.
    pub name: String,
    /// String key/value payload.
    pub fields: BTreeMap<String, String>,
}

/// Immutable snapshot of a [`Telemetry`] registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Nanoseconds from registry creation to the snapshot.
    pub wall_nanos: u128,
    /// Spans in first-open order.
    pub spans: Vec<SpanEntry>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    /// Structured events in arrival order.
    pub events: Vec<EventEntry>,
}

impl Report {
    /// The span at exactly `path`, if present.
    pub fn span(&self, path: &str) -> Option<&SpanEntry> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All events named `name`, in arrival order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventEntry> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Serializes to compact JSON with schema [`SCHEMA`].
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("schema".to_string(), Json::Str(SCHEMA.to_string()));
        root.insert("wall_nanos".to_string(), Json::Num(self.wall_nanos as f64));
        let spans = self
            .spans
            .iter()
            .map(|span| {
                let mut obj = BTreeMap::new();
                obj.insert("path".to_string(), Json::Str(span.path.clone()));
                obj.insert("count".to_string(), Json::Num(span.count as f64));
                obj.insert("nanos".to_string(), Json::Num(span.nanos as f64));
                Json::Obj(obj)
            })
            .collect();
        root.insert("spans".to_string(), Json::Arr(spans));
        root.insert(
            "counters".to_string(),
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Json::Obj(
                self.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        );
        let events = self
            .events
            .iter()
            .map(|event| {
                let mut obj = BTreeMap::new();
                obj.insert("name".to_string(), Json::Str(event.name.clone()));
                obj.insert(
                    "fields".to_string(),
                    Json::Obj(
                        event
                            .fields
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                );
                Json::Obj(obj)
            })
            .collect();
        root.insert("events".to_string(), Json::Arr(events));
        Json::Obj(root).render()
    }

    /// Parses a report previously produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing/unknown schema tag,
    /// or structurally invalid fields.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let root = Json::parse(text)?;
        match root.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unknown schema `{other}`")),
            None => return Err("missing schema field".to_string()),
        }
        let wall_nanos = root
            .get("wall_nanos")
            .and_then(Json::as_f64)
            .ok_or("missing wall_nanos")? as u128;
        let mut spans = Vec::new();
        for entry in root
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans")?
        {
            spans.push(SpanEntry {
                path: entry
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("span missing path")?
                    .to_string(),
                count: entry
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or("span missing count")?,
                nanos: entry
                    .get("nanos")
                    .and_then(Json::as_f64)
                    .ok_or("span missing nanos")? as u128,
            });
        }
        let mut counters = BTreeMap::new();
        for (key, value) in root
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("missing counters")?
        {
            counters.insert(
                key.clone(),
                value
                    .as_u64()
                    .ok_or_else(|| format!("counter `{key}` not a u64"))?,
            );
        }
        let mut gauges = BTreeMap::new();
        for (key, value) in root
            .get("gauges")
            .and_then(Json::as_obj)
            .ok_or("missing gauges")?
        {
            gauges.insert(
                key.clone(),
                value
                    .as_f64()
                    .ok_or_else(|| format!("gauge `{key}` not a number"))?,
            );
        }
        // `events` is absent from reports written before the field existed;
        // treat a missing array as empty rather than failing the parse.
        let mut events = Vec::new();
        if let Some(entries) = root.get("events").and_then(Json::as_arr) {
            for entry in entries {
                let name = entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("event missing name")?
                    .to_string();
                let mut fields = BTreeMap::new();
                for (key, value) in entry
                    .get("fields")
                    .and_then(Json::as_obj)
                    .ok_or("event missing fields")?
                {
                    fields.insert(
                        key.clone(),
                        value
                            .as_str()
                            .ok_or_else(|| format!("event field `{key}` not a string"))?
                            .to_string(),
                    );
                }
                events.push(EventEntry { name, fields });
            }
        }
        Ok(Report {
            wall_nanos,
            spans,
            counters,
            gauges,
            events,
        })
    }

    /// Formats a human-readable summary table: spans indented by nesting
    /// depth with times scaled to a readable unit, then counters, then
    /// gauges.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry report (wall {})",
            format_nanos(self.wall_nanos)
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "  spans:");
            let width = self
                .spans
                .iter()
                .map(|s| s.path.len() + 2)
                .max()
                .unwrap_or(0)
                .max(24);
            // Indent below the nearest ancestor that is itself a recorded
            // span (a span *named* "sched/list" opened at the root is not
            // a child of anything, even though its name has a slash).
            let mut depths: BTreeMap<&str, usize> = BTreeMap::new();
            for span in &self.spans {
                let (depth, name) = longest_recorded_prefix(&span.path, &depths)
                    .map(|(prefix, d)| (d + 1, &span.path[prefix.len() + 1..]))
                    .unwrap_or((0, span.path.as_str()));
                depths.insert(&span.path, depth);
                let indent = "  ".repeat(depth);
                let label = format!("{indent}{name}");
                let _ = writeln!(
                    out,
                    "    {label:<width$} {:>10}  x{}",
                    format_nanos(span.nanos),
                    span.count,
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            let width = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "    {name:<width$} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            let width = self.gauges.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "    {name:<width$} {value:>12.3}");
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "  events:");
            for event in &self.events {
                let fields: Vec<String> = event
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = writeln!(out, "    {} {}", event.name, fields.join(" "));
            }
        }
        out
    }
}

/// The longest proper `/`-prefix of `path` that is a recorded span, with
/// its table depth.
fn longest_recorded_prefix<'a>(
    path: &'a str,
    depths: &BTreeMap<&str, usize>,
) -> Option<(&'a str, usize)> {
    path.char_indices()
        .rev()
        .filter(|&(_, c)| c == '/')
        .map(|(i, _)| &path[..i])
        .find_map(|prefix| depths.get(prefix).map(|&d| (prefix, d)))
}

/// Renders a nanosecond quantity with a unit suited to its magnitude.
fn format_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_by_open_order() {
        let tel = Telemetry::new();
        {
            let _a = tel.span("a");
            {
                let _b = tel.span("b");
                let _c = tel.span("c");
            }
            let _d = tel.span("d");
        }
        let report = tel.report();
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["a", "a/b", "a/b/c", "a/d"]);
        assert!(report.spans.iter().all(|s| s.count == 1));
    }

    #[test]
    fn reentering_a_span_accumulates() {
        let tel = Telemetry::new();
        for _ in 0..3 {
            let _s = tel.span("phase");
        }
        let entry = tel.report().span("phase").cloned().unwrap();
        assert_eq!(entry.count, 3);
    }

    #[test]
    fn out_of_order_drop_closes_inner_spans() {
        let tel = Telemetry::new();
        let outer = tel.span("outer");
        let inner = tel.span("inner");
        drop(outer); // closes inner's frame too
        drop(inner); // records under a truncated (root) path, not a panic
        let report = tel.report();
        assert!(report.span("outer").is_some());
        assert!(report.span("outer/inner").is_some());
        // A fresh span after the mess nests at the root again.
        drop(tel.span("later"));
        assert!(tel.report().span("later").is_some());
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let tel = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = tel.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        handle.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(tel.report().counter("hits"), Some(4000));
    }

    #[test]
    fn record_span_aggregates_across_threads() {
        let tel = Telemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        handle.record_span("engine/worker/busy", 5);
                    }
                });
            }
        });
        let entry = tel.report().span("engine/worker/busy").cloned().unwrap();
        assert_eq!(entry.count, 400);
        assert_eq!(entry.nanos, 2000);
    }

    #[test]
    fn record_span_ignores_the_nesting_stack() {
        let tel = Telemetry::new();
        let _outer = tel.span("outer");
        tel.record_span("worker0/wait", 7);
        let report = tel.report();
        assert!(report.span("worker0/wait").is_some());
        assert!(report.span("outer/worker0/wait").is_none());
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let tel = Telemetry::new();
        tel.gauge_set("size", 10.0);
        tel.gauge_set("size", 4.0);
        assert_eq!(tel.report().gauge("size"), Some(4.0));
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        {
            let _s = tel.span("phase");
            tel.counter_add("hits", 5);
            tel.gauge_set("size", 1.0);
        }
        assert_eq!(tel.report(), Report::default());
    }

    #[test]
    fn json_round_trip_preserves_report() {
        let tel = Telemetry::new();
        {
            let _outer = tel.span("pipeline");
            let _inner = tel.span("redundancy");
            tel.counter_add("usages_removed", 17);
            tel.gauge_set("options/before", 42.0);
        }
        let report = tel.report();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let bad = r#"{"schema":"other/9","wall_nanos":0,"spans":[],"counters":{},"gauges":{}}"#;
        assert!(Report::from_json(bad).is_err());
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("not json").is_err());
    }

    #[test]
    fn table_renders_all_sections() {
        let tel = Telemetry::new();
        {
            let _outer = tel.span("pipeline");
            let _inner = tel.span("redundancy");
        }
        tel.counter_add("checks", 12);
        tel.gauge_set("ratio", 0.5);
        let table = tel.report().to_table();
        assert!(table.contains("spans:"));
        assert!(table.contains("redundancy"));
        assert!(table.contains("counters:"));
        assert!(table.contains("checks"));
        assert!(table.contains("gauges:"));
        assert!(table.contains("ratio"));
    }

    #[test]
    fn events_record_round_trip_and_render() {
        let tel = Telemetry::new();
        tel.event("guard/incident", &[("stage", "factor"), ("seed", "42")]);
        tel.event("guard/incident", &[("stage", "shifting"), ("seed", "42")]);
        let report = tel.report();
        let incidents: Vec<_> = report.events_named("guard/incident").collect();
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].fields["stage"], "factor");
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        let table = report.to_table();
        assert!(table.contains("events:"));
        assert!(table.contains("stage=factor"));
    }

    #[test]
    fn from_json_tolerates_missing_events() {
        let old =
            r#"{"schema":"mdes-telemetry/1","wall_nanos":0,"spans":[],"counters":{},"gauges":{}}"#;
        let report = Report::from_json(old).unwrap();
        assert!(report.events.is_empty());
    }

    #[test]
    fn format_nanos_picks_sane_units() {
        assert_eq!(format_nanos(12), "12ns");
        assert_eq!(format_nanos(1_500), "1.5us");
        assert_eq!(format_nanos(2_000_000), "2.000ms");
        assert_eq!(format_nanos(3_000_000_000), "3.000s");
    }
}
