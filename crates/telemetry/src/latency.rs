//! Thread-safe latency percentile tracking.
//!
//! Serving paths need `p50`/`p99` gauges without unbounded memory: a
//! [`LatencyRecorder`] keeps the most recent `capacity` observations in a
//! fixed ring shared across threads.  Percentiles are computed over a
//! snapshot copy, so recording stays O(1) under the lock and a reader
//! never blocks writers for longer than one `memcpy`.
//!
//! ```
//! use mdes_telemetry::latency::LatencyRecorder;
//!
//! let recorder = LatencyRecorder::new(1024);
//! for us in [10, 20, 30, 40, 50] {
//!     recorder.record(us);
//! }
//! assert_eq!(recorder.percentile(0.50), Some(30));
//! assert_eq!(recorder.percentile(0.99), Some(50));
//! ```

use std::sync::Mutex;

/// A bounded, thread-safe reservoir of `u64` observations (typically
/// microseconds) supporting percentile queries over the most recent
/// `capacity` samples.
#[derive(Debug)]
pub struct LatencyRecorder {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    samples: Vec<u64>,
    /// Next write position once the ring is full.
    cursor: usize,
    /// Total observations ever recorded (can exceed `samples.len()`).
    recorded: u64,
    capacity: usize,
}

impl Default for LatencyRecorder {
    /// A recorder over the latest 4096 samples.
    fn default() -> LatencyRecorder {
        LatencyRecorder::new(4096)
    }
}

impl LatencyRecorder {
    /// Creates a recorder keeping the latest `capacity` samples
    /// (clamped to at least one).
    pub fn new(capacity: usize) -> LatencyRecorder {
        let capacity = capacity.max(1);
        LatencyRecorder {
            inner: Mutex::new(Ring {
                samples: Vec::with_capacity(capacity.min(4096)),
                cursor: 0,
                recorded: 0,
                capacity,
            }),
        }
    }

    /// Records one observation.  A poisoned lock (a panic while holding
    /// it) is tolerated: the recorder keeps working on the data as-is,
    /// matching the serving daemon's keep-serving-through-faults policy.
    pub fn record(&self, value: u64) {
        let mut ring = match self.inner.lock() {
            Ok(ring) => ring,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.recorded += 1;
        if ring.samples.len() < ring.capacity {
            ring.samples.push(value);
        } else {
            let at = ring.cursor;
            ring.samples[at] = value;
            ring.cursor = (at + 1) % ring.capacity;
        }
    }

    /// Total observations ever recorded (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        match self.inner.lock() {
            Ok(ring) => ring.recorded,
            Err(poisoned) => poisoned.into_inner().recorded,
        }
    }

    /// The value at quantile `q` (0.0 ..= 1.0) over the retained window,
    /// or `None` before the first observation.  Uses the nearest-rank
    /// method: `percentile(0.0)` is the minimum, `percentile(1.0)` the
    /// maximum.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        let mut snapshot = {
            let ring = match self.inner.lock() {
                Ok(ring) => ring,
                Err(poisoned) => poisoned.into_inner(),
            };
            if ring.samples.is_empty() {
                return None;
            }
            ring.samples.clone()
        };
        snapshot.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * snapshot.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(snapshot.len() - 1);
        Some(snapshot[rank])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_has_no_percentiles() {
        let recorder = LatencyRecorder::new(16);
        assert_eq!(recorder.percentile(0.5), None);
        assert_eq!(recorder.recorded(), 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let recorder = LatencyRecorder::new(100);
        for v in 1..=100u64 {
            recorder.record(v);
        }
        assert_eq!(recorder.percentile(0.0), Some(1));
        assert_eq!(recorder.percentile(0.50), Some(50));
        assert_eq!(recorder.percentile(0.99), Some(99));
        assert_eq!(recorder.percentile(1.0), Some(100));
    }

    #[test]
    fn ring_keeps_only_the_latest_window() {
        let recorder = LatencyRecorder::new(4);
        for v in [1u64, 2, 3, 4, 100, 200, 300, 400] {
            recorder.record(v);
        }
        assert_eq!(recorder.recorded(), 8);
        assert_eq!(recorder.percentile(0.0), Some(100));
        assert_eq!(recorder.percentile(1.0), Some(400));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let recorder = std::sync::Arc::new(LatencyRecorder::new(256));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let recorder = std::sync::Arc::clone(&recorder);
                scope.spawn(move || {
                    for i in 0..100 {
                        recorder.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(recorder.recorded(), 400);
        assert!(recorder.percentile(0.5).is_some());
    }
}
