//! A minimal JSON value, writer and parser.
//!
//! The telemetry crate must have zero external dependencies, so it carries
//! its own JSON support: enough of RFC 8259 for [`crate::Report`]
//! round-trips and for consumers validating `--metrics` files. Numbers are
//! kept as `f64` (counter values above 2^53 would lose precision; MDES
//! query counters are orders of magnitude below that).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for telemetry
                            // names; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&value.render()).unwrap(), value);
        assert_eq!(value.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn strings_escape_control_characters() {
        let rendered = Json::Str("a\"b\\c\u{1}".to_string()).render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("a\"b\\c\u{1}")
        );
    }
}
