//! Processor resources and the resource pool.
//!
//! A *resource* in an MDES is an abstract, named entity that at most one
//! operation may use in a given cycle: a decoder slot, a register write
//! port, a memory unit, a result bus.  As the paper notes, "the resources
//! modeled often do not represent actual processor resources, but are
//! abstractions used to model the processor's scheduling rules."

use std::collections::HashMap;
use std::fmt;

use crate::error::MdesError;

/// Maximum number of resources supported by one machine description.
///
/// Resource occupancy for a cycle must fit in one 64-bit word so a full
/// cycle can be checked or reserved with a single AND/OR (Section 6 of the
/// paper).  All four processors in the paper need fewer than 32.
pub const MAX_RESOURCES: usize = 64;

/// A compact identifier for a resource within one [`ResourcePool`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(u32);

impl ResourceId {
    /// Returns the zero-based index of this resource in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Intended for deserialization and tests; ids are normally obtained
    /// from [`ResourcePool::add`].
    pub fn from_index(index: usize) -> ResourceId {
        ResourceId(index as u32)
    }

    /// Returns the single-bit occupancy mask for this resource.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in 64 bits; pools enforce
    /// [`MAX_RESOURCES`] so ids they hand out never panic here.
    pub fn bit(self) -> u64 {
        assert!(
            (self.0 as usize) < MAX_RESOURCES,
            "resource index {} out of bit range",
            self.0
        );
        1u64 << self.0
    }
}

impl fmt::Debug for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The set of resources declared by one machine description.
///
/// Names are unique; lookups are O(1) in both directions.
///
/// # Examples
///
/// ```
/// use mdes_core::resource::ResourcePool;
///
/// # fn main() -> Result<(), mdes_core::MdesError> {
/// let mut pool = ResourcePool::new();
/// let decoder0 = pool.add("Decoder0")?;
/// assert_eq!(pool.name(decoder0), "Decoder0");
/// assert_eq!(pool.lookup("Decoder0"), Some(decoder0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourcePool {
    names: Vec<String>,
    index: HashMap<String, ResourceId>,
}

impl ResourcePool {
    /// Creates an empty pool.
    pub fn new() -> ResourcePool {
        ResourcePool::default()
    }

    /// Declares a new resource and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::DuplicateResource`] if the name already exists
    /// and [`MdesError::TooManyResources`] past [`MAX_RESOURCES`].
    pub fn add(&mut self, name: impl Into<String>) -> Result<ResourceId, MdesError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(MdesError::DuplicateResource(name));
        }
        if self.names.len() >= MAX_RESOURCES {
            return Err(MdesError::TooManyResources {
                count: self.names.len() + 1,
                max: MAX_RESOURCES,
            });
        }
        let id = ResourceId(self.names.len() as u32);
        self.index.insert(name.clone(), id);
        self.names.push(name);
        Ok(id)
    }

    /// Declares `count` indexed instances, `base[0]` … `base[count-1]`.
    ///
    /// This mirrors the `resource Decoder[3];` form of the high-level
    /// language.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`ResourcePool::add`].
    pub fn add_indexed(&mut self, base: &str, count: usize) -> Result<Vec<ResourceId>, MdesError> {
        (0..count)
            .map(|i| self.add(format!("{base}[{i}]")))
            .collect()
    }

    /// Looks a resource up by name.
    pub fn lookup(&self, name: &str) -> Option<ResourceId> {
        self.index.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    pub fn name(&self, id: ResourceId) -> &str {
        &self.names[id.index()]
    }

    /// Number of resources declared.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no resources have been declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ResourceId(i as u32), n.as_str()))
    }

    /// Checks that `id` is valid for this pool.
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::UnknownResource`] when out of range.
    pub fn check(&self, id: ResourceId) -> Result<(), MdesError> {
        if id.index() < self.names.len() {
            Ok(())
        } else {
            Err(MdesError::UnknownResource(id.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_round_trip() {
        let mut pool = ResourcePool::new();
        let m = pool.add("M").unwrap();
        let wp = pool.add("WrPt[0]").unwrap();
        assert_eq!(pool.lookup("M"), Some(m));
        assert_eq!(pool.lookup("WrPt[0]"), Some(wp));
        assert_eq!(pool.lookup("absent"), None);
        assert_eq!(pool.name(m), "M");
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut pool = ResourcePool::new();
        pool.add("M").unwrap();
        assert_eq!(pool.add("M"), Err(MdesError::DuplicateResource("M".into())));
    }

    #[test]
    fn indexed_resources_get_bracketed_names() {
        let mut pool = ResourcePool::new();
        let ids = pool.add_indexed("Decoder", 3).unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(pool.name(ids[0]), "Decoder[0]");
        assert_eq!(pool.name(ids[2]), "Decoder[2]");
        assert_eq!(pool.lookup("Decoder[1]"), Some(ids[1]));
    }

    #[test]
    fn resource_bits_are_distinct_powers_of_two() {
        let mut pool = ResourcePool::new();
        let a = pool.add("a").unwrap();
        let b = pool.add("b").unwrap();
        assert_eq!(a.bit(), 1);
        assert_eq!(b.bit(), 2);
        assert_eq!(a.bit() & b.bit(), 0);
    }

    #[test]
    fn pool_enforces_max_resources() {
        let mut pool = ResourcePool::new();
        for i in 0..MAX_RESOURCES {
            pool.add(format!("r{i}")).unwrap();
        }
        let err = pool.add("overflow").unwrap_err();
        assert!(matches!(err, MdesError::TooManyResources { .. }));
    }

    #[test]
    fn check_validates_membership() {
        let mut pool = ResourcePool::new();
        let a = pool.add("a").unwrap();
        assert!(pool.check(a).is_ok());
        assert_eq!(
            pool.check(ResourceId::from_index(7)),
            Err(MdesError::UnknownResource(7))
        );
    }

    #[test]
    fn iter_yields_declaration_order() {
        let mut pool = ResourcePool::new();
        pool.add("x").unwrap();
        pool.add("y").unwrap();
        let names: Vec<&str> = pool.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
