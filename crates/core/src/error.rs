//! Error types for the core MDES representations.

use std::fmt;

/// Errors produced while constructing or validating an MDES.
///
/// Every fallible public constructor and validator in this crate returns
/// [`MdesError`] so callers can report precise, user-facing diagnostics
/// (the high-level language front end wraps these with source spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdesError {
    /// A resource with the same name was declared twice.
    DuplicateResource(String),
    /// An operation class with the same name was declared twice.
    DuplicateClass(String),
    /// A reference to a resource id that is not in the pool.
    UnknownResource(u32),
    /// A reference to a reservation-table option that does not exist.
    UnknownOption(u32),
    /// A reference to an OR-tree that does not exist.
    UnknownOrTree(u32),
    /// A reference to an AND/OR-tree that does not exist.
    UnknownAndOrTree(u32),
    /// A reference to an operation class that does not exist.
    UnknownClass(String),
    /// A reservation-table option with no resource usages.
    EmptyOption,
    /// An OR-tree with no options: it could never be satisfied.
    EmptyOrTree,
    /// An AND/OR-tree with no sub-OR-trees: it would constrain nothing.
    EmptyAndOrTree,
    /// Too many resources to fit the bit-vector word model.
    TooManyResources {
        /// How many resources were declared.
        count: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The MDES defines no operation classes.
    NoClasses,
}

impl fmt::Display for MdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdesError::DuplicateResource(name) => {
                write!(f, "resource `{name}` declared more than once")
            }
            MdesError::DuplicateClass(name) => {
                write!(f, "operation class `{name}` declared more than once")
            }
            MdesError::UnknownResource(id) => write!(f, "unknown resource id {id}"),
            MdesError::UnknownOption(id) => {
                write!(f, "unknown reservation-table option id {id}")
            }
            MdesError::UnknownOrTree(id) => write!(f, "unknown OR-tree id {id}"),
            MdesError::UnknownAndOrTree(id) => write!(f, "unknown AND/OR-tree id {id}"),
            MdesError::UnknownClass(name) => write!(f, "unknown operation class `{name}`"),
            MdesError::EmptyOption => {
                write!(f, "reservation-table option has no resource usages")
            }
            MdesError::EmptyOrTree => write!(f, "OR-tree has no options"),
            MdesError::EmptyAndOrTree => write!(f, "AND/OR-tree has no sub-OR-trees"),
            MdesError::TooManyResources { count, max } => {
                write!(f, "{count} resources exceed the supported maximum of {max}")
            }
            MdesError::NoClasses => write!(f, "machine description defines no operation classes"),
        }
    }
}

impl std::error::Error for MdesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(MdesError, &str)> = vec![
            (MdesError::DuplicateResource("M".into()), "resource `M`"),
            (MdesError::DuplicateClass("load".into()), "class `load`"),
            (MdesError::UnknownResource(3), "resource id 3"),
            (MdesError::UnknownOption(9), "option id 9"),
            (MdesError::UnknownOrTree(1), "OR-tree id 1"),
            (MdesError::UnknownAndOrTree(0), "AND/OR-tree id 0"),
            (MdesError::UnknownClass("st".into()), "class `st`"),
            (MdesError::EmptyOption, "no resource usages"),
            (MdesError::EmptyOrTree, "no options"),
            (MdesError::EmptyAndOrTree, "no sub-OR-trees"),
            (
                MdesError::TooManyResources { count: 80, max: 64 },
                "80 resources",
            ),
            (MdesError::NoClasses, "no operation classes"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message `{msg}` should contain `{needle}`"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MdesError>();
    }
}
