//! Core representations of the two-tier machine-description (MDES) model
//! from Gyllenhaal, Hwu & Rau, *Optimization of Machine Descriptions for
//! Efficient Use* (MICRO-29, 1996).
//!
//! This crate provides:
//!
//! * the mid-level [`spec::MdesSpec`] — resources, reservation-table
//!   options, prioritized OR-trees, the paper's AND/OR-trees, and
//!   operation classes; this is what the `mdes-lang` front end emits and
//!   what the `mdes-opt` transformations rewrite;
//! * the compiled low-level [`compile::CompiledMdes`] with scalar or
//!   bit-vector usage encodings, and the [`compile::Checker`] that answers
//!   "can this operation issue at cycle *t*" against a [`rumap::RuMap`];
//! * [`stats::CheckStats`] counters matching the paper's metrics (options
//!   checked and resource checks per scheduling attempt, Figure-2
//!   histograms);
//! * the [`collision`] module implementing forbidden-latency /
//!   collision-vector theory that justifies the usage-time transformation;
//! * the [`probe`] module — a deterministic, seeded query-sequence engine
//!   used by the pipeline guard to differentially compare two
//!   descriptions' observable behaviour;
//! * the [`size`] memory model reproducing the paper's byte accounting;
//! * [`pretty`] renderers for reservation tables and constraint trees.
//!
//! # Example
//!
//! ```
//! use mdes_core::compile::{Checker, CompiledMdes, UsageEncoding};
//! use mdes_core::rumap::RuMap;
//! use mdes_core::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
//! use mdes_core::stats::CheckStats;
//! use mdes_core::usage::ResourceUsage;
//!
//! # fn main() -> Result<(), mdes_core::MdesError> {
//! // A machine with one ALU; ALU ops occupy it for one cycle.
//! let mut spec = MdesSpec::new();
//! let alu = spec.resources_mut().add("ALU")?;
//! let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(alu, 0)]));
//! let tree = spec.add_or_tree(OrTree::new(vec![opt]));
//! spec.add_class("alu", Constraint::Or(tree), Latency::new(1), OpFlags::none())?;
//!
//! let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector)?;
//! let checker = Checker::new(&compiled);
//! let class = compiled.class_by_name("alu").unwrap();
//!
//! let mut ru = RuMap::new();
//! let mut stats = CheckStats::new();
//! assert!(checker.try_reserve(&mut ru, class, 0, &mut stats).is_some());
//! // The ALU is now busy at cycle 0: a second op must wait a cycle.
//! assert!(checker.try_reserve(&mut ru, class, 0, &mut stats).is_none());
//! assert!(checker.try_reserve(&mut ru, class, 1, &mut stats).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collision;
pub mod compile;
pub mod dot;
pub mod error;
pub mod lmdes;
pub mod pretty;
pub mod probe;
pub mod resource;
pub mod rumap;
pub mod size;
pub mod spec;
pub mod stats;
pub mod usage;

pub use compile::{Checker, Checks, Choice, CompiledMdes, OptionHints, UsageEncoding};
pub use error::MdesError;
pub use resource::{ResourceId, ResourcePool};
pub use rumap::RuMap;
pub use spec::{
    AndOrTree, AndOrTreeId, ClassId, Constraint, Latency, MdesSpec, OpClass, OpFlags, OptionId,
    OrTree, OrTreeId, TableOption,
};
pub use stats::CheckStats;
pub use usage::ResourceUsage;
