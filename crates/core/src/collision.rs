//! Forbidden latencies and collision vectors (Section 7).
//!
//! From the theory of pipelined, multi-function unit design (Davidson et
//! al.): for an ordered pair of reservation-table options (A, B), latency
//! `t ≥ 0` is *forbidden* iff A and B use some common resource at times `i`
//! and `j` with `i ≥ j` and `i − j = t` — an operation using B cannot be
//! initiated `t` cycles after one using A.  The set of all forbidden
//! latencies is the pair's *collision vector*.
//!
//! A schedule is conflict-free iff no pair of operations violates the
//! collision vector of their chosen options.  Only time *differences*
//! matter, which licenses the usage-time shifting transformation: adding a
//! per-resource constant to all usage times of that resource leaves every
//! collision vector unchanged.  The property tests of `mdes-opt` verify
//! exactly this invariant.

use std::collections::BTreeSet;

use crate::spec::{MdesSpec, OptionId, TableOption};

/// The set of forbidden initiation latencies for an ordered option pair.
pub type CollisionVector = BTreeSet<i32>;

/// Computes the collision vector for the ordered pair `(a, b)`: latencies
/// `t ≥ 0` at which an operation using `b` may not issue `t` cycles after
/// an operation using `a`.
///
/// # Examples
///
/// ```
/// use mdes_core::collision::forbidden_latencies;
/// use mdes_core::resource::ResourceId;
/// use mdes_core::spec::TableOption;
/// use mdes_core::usage::ResourceUsage;
///
/// let divider = ResourceId::from_index(0);
/// // A divide occupies the divider for cycles 0..4.
/// let div = TableOption::new((0..4).map(|t| ResourceUsage::new(divider, t)).collect());
/// let cv = forbidden_latencies(&div, &div);
/// assert_eq!(cv, [0, 1, 2, 3].into_iter().collect());
/// ```
pub fn forbidden_latencies(a: &TableOption, b: &TableOption) -> CollisionVector {
    let mut forbidden = BTreeSet::new();
    for ua in &a.usages {
        for ub in &b.usages {
            if ua.resource == ub.resource && ua.time >= ub.time {
                forbidden.insert(ua.time - ub.time);
            }
        }
    }
    forbidden
}

/// The collision vectors between every ordered pair of options in a spec,
/// keyed `(a, b)`.  Quadratic in the option count — intended for tests and
/// analysis on un-expanded (AND/OR-form) descriptions.
pub fn collision_matrix(spec: &MdesSpec) -> Vec<((OptionId, OptionId), CollisionVector)> {
    let ids: Vec<OptionId> = spec.option_ids().collect();
    let mut matrix = Vec::with_capacity(ids.len() * ids.len());
    for &a in &ids {
        for &b in &ids {
            matrix.push(((a, b), forbidden_latencies(spec.option(a), spec.option(b))));
        }
    }
    matrix
}

/// True if issuing `b` exactly `t ≥ 0` cycles after `a` is conflict-free.
///
/// # Examples
///
/// ```
/// use mdes_core::collision::latency_allowed;
/// use mdes_core::spec::TableOption;
/// use mdes_core::{ResourceId, ResourceUsage};
///
/// let alu = ResourceId::from_index(0);
/// let op = TableOption::new(vec![ResourceUsage::new(alu, 0)]);
/// assert!(!latency_allowed(&op, &op, 0)); // same cycle: collision
/// assert!(latency_allowed(&op, &op, 1));
/// ```
pub fn latency_allowed(a: &TableOption, b: &TableOption, t: i32) -> bool {
    debug_assert!(t >= 0, "initiation latency must be non-negative");
    !forbidden_latencies(a, b).contains(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceId;
    use crate::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    #[test]
    fn disjoint_resources_never_collide() {
        let a = TableOption::new(vec![u(0, 0), u(0, 1)]);
        let b = TableOption::new(vec![u(1, 0), u(1, 5)]);
        assert!(forbidden_latencies(&a, &b).is_empty());
        assert!(latency_allowed(&a, &b, 0));
    }

    #[test]
    fn same_cycle_same_resource_forbids_latency_zero() {
        let a = TableOption::new(vec![u(0, 0)]);
        assert_eq!(forbidden_latencies(&a, &a), [0].into_iter().collect());
        assert!(!latency_allowed(&a, &a, 0));
        assert!(latency_allowed(&a, &a, 1));
    }

    #[test]
    fn collision_vector_is_direction_sensitive() {
        // A uses r0 late, B uses it early: B after A collides over a range,
        // A after B only at matching offsets.
        let a = TableOption::new(vec![u(0, 3)]);
        let b = TableOption::new(vec![u(0, 0)]);
        assert_eq!(forbidden_latencies(&a, &b), [3].into_iter().collect());
        assert!(forbidden_latencies(&b, &a).is_empty());
    }

    #[test]
    fn shifting_both_options_preserves_collision_vectors() {
        let a = TableOption::new(vec![u(0, -1), u(1, 0), u(0, 2)]);
        let b = TableOption::new(vec![u(0, 0), u(1, 1)]);
        let before = forbidden_latencies(&a, &b);
        // Shift resource 0 by +5 and resource 1 by -2 in both options.
        let shift = |opt: &TableOption| {
            TableOption::new(
                opt.usages
                    .iter()
                    .map(|us| {
                        let delta = if us.resource.index() == 0 { 5 } else { -2 };
                        us.shifted(delta)
                    })
                    .collect(),
            )
        };
        let after = forbidden_latencies(&shift(&a), &shift(&b));
        assert_eq!(before, after);
    }

    #[test]
    fn negative_differences_are_not_forbidden_latencies() {
        // a uses r0 at 0, b at 4: issuing b t cycles after a collides only
        // if a.time >= b.time + ... i.e. 0 >= 4 + t never for t >= 0.
        let a = TableOption::new(vec![u(0, 0)]);
        let b = TableOption::new(vec![u(0, 4)]);
        assert!(forbidden_latencies(&a, &b).is_empty());
        assert_eq!(forbidden_latencies(&b, &a), [4].into_iter().collect());
    }

    #[test]
    fn matrix_covers_all_ordered_pairs() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        spec.add_option(TableOption::new(vec![u(0, 0)]));
        spec.add_option(TableOption::new(vec![u(0, 1)]));
        let matrix = collision_matrix(&spec);
        assert_eq!(matrix.len(), 4);
    }
}
