//! The resource usage map (RU map).
//!
//! The RU map records, for every schedule cycle, which resources are already
//! reserved by scheduled operations.  One cycle's occupancy is one 64-bit
//! word, so several usages falling in the same cycle are checked (reserved)
//! with a single AND (OR) — the bit-vector design of Section 6.
//!
//! Cycles are arbitrary `i32`s: operations issued at cycle 0 may use decode
//! resources at negative cycles, so the map grows in both directions.

/// A growable bit matrix of resource occupancy indexed by schedule cycle.
///
/// # Examples
///
/// ```
/// use mdes_core::rumap::RuMap;
///
/// let mut ru = RuMap::new();
/// assert!(ru.is_free(-1, 0b01));
/// ru.reserve(-1, 0b01);
/// assert!(!ru.is_free(-1, 0b01));
/// assert!(ru.is_free(-1, 0b10)); // other resources unaffected
/// ru.release(-1, 0b01);
/// assert!(ru.is_free(-1, 0b01));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuMap {
    /// Cycle number of `words[0]`.
    base: i32,
    /// Occupancy words, one per cycle starting at `base`.
    words: Vec<u64>,
}

impl RuMap {
    /// Creates an empty map.
    pub fn new() -> RuMap {
        RuMap::default()
    }

    /// Creates an empty map pre-sized for cycles `lo..=hi` to avoid
    /// re-allocation in hot scheduling loops.
    pub fn with_range(lo: i32, hi: i32) -> RuMap {
        assert!(lo <= hi, "invalid cycle range {lo}..={hi}");
        RuMap {
            base: lo,
            words: vec![0; (hi - lo + 1) as usize],
        }
    }

    /// The occupancy word for `cycle` (0 when outside the stored range).
    pub fn word(&self, cycle: i32) -> u64 {
        let idx = i64::from(cycle) - i64::from(self.base);
        if idx < 0 || idx >= self.words.len() as i64 {
            0
        } else {
            self.words[idx as usize]
        }
    }

    /// True if none of the resources in `mask` are reserved at `cycle`.
    pub fn is_free(&self, cycle: i32, mask: u64) -> bool {
        self.word(cycle) & mask == 0
    }

    /// Marks the resources in `mask` reserved at `cycle`.
    ///
    /// Reserving an already-reserved resource is allowed (the bits just
    /// stay set); the constraint checker always probes with
    /// [`RuMap::is_free`] first, and the modulo scheduler relies on
    /// idempotent reservation when rotating the map.
    pub fn reserve(&mut self, cycle: i32, mask: u64) {
        let idx = self.index_growing(cycle);
        self.words[idx] |= mask;
    }

    /// Clears the resources in `mask` at `cycle` (unscheduling support).
    pub fn release(&mut self, cycle: i32, mask: u64) {
        let idx = i64::from(cycle) - i64::from(self.base);
        if idx >= 0 && idx < self.words.len() as i64 {
            self.words[idx as usize] &= !mask;
        }
    }

    /// Removes every reservation but keeps the allocated capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The lowest cycle with any reservation, if any.
    pub fn min_reserved_cycle(&self) -> Option<i32> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| self.base + i as i32)
    }

    /// The highest cycle with any reservation, if any.
    pub fn max_reserved_cycle(&self) -> Option<i32> {
        self.words
            .iter()
            .rposition(|&w| w != 0)
            .map(|i| self.base + i as i32)
    }

    /// Total number of reserved (cycle, resource) pairs.
    pub fn population(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of `cycle` in `words`, growing the vector as needed.
    fn index_growing(&mut self, cycle: i32) -> usize {
        if self.words.is_empty() {
            self.base = cycle;
            self.words.push(0);
            return 0;
        }
        let mut idx = i64::from(cycle) - i64::from(self.base);
        if idx < 0 {
            let grow = (-idx) as usize;
            let mut new_words = vec![0u64; grow + self.words.len()];
            new_words[grow..].copy_from_slice(&self.words);
            self.words = new_words;
            self.base = cycle;
            idx = 0;
        } else if idx >= self.words.len() as i64 {
            self.words.resize(idx as usize + 1, 0);
        }
        idx as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_fully_free() {
        let ru = RuMap::new();
        assert!(ru.is_free(0, u64::MAX));
        assert!(ru.is_free(i32::MIN / 2, u64::MAX));
        assert_eq!(ru.population(), 0);
        assert_eq!(ru.min_reserved_cycle(), None);
        assert_eq!(ru.max_reserved_cycle(), None);
    }

    #[test]
    fn reserve_then_check_and_release() {
        let mut ru = RuMap::new();
        ru.reserve(5, 0b110);
        assert!(!ru.is_free(5, 0b010));
        assert!(!ru.is_free(5, 0b100));
        assert!(ru.is_free(5, 0b001));
        assert!(ru.is_free(4, 0b110));
        ru.release(5, 0b010);
        assert!(ru.is_free(5, 0b010));
        assert!(!ru.is_free(5, 0b100));
    }

    #[test]
    fn grows_downward_for_negative_cycles() {
        let mut ru = RuMap::new();
        ru.reserve(3, 1);
        ru.reserve(-2, 2);
        assert!(!ru.is_free(3, 1));
        assert!(!ru.is_free(-2, 2));
        assert_eq!(ru.min_reserved_cycle(), Some(-2));
        assert_eq!(ru.max_reserved_cycle(), Some(3));
        assert_eq!(ru.population(), 2);
    }

    #[test]
    fn release_outside_range_is_a_no_op() {
        let mut ru = RuMap::new();
        ru.reserve(0, 1);
        ru.release(100, 1);
        ru.release(-100, 1);
        assert!(!ru.is_free(0, 1));
    }

    #[test]
    fn clear_keeps_range_but_frees_everything() {
        let mut ru = RuMap::with_range(-4, 16);
        ru.reserve(-4, u64::MAX);
        ru.reserve(16, 1);
        ru.clear();
        assert_eq!(ru.population(), 0);
        assert!(ru.is_free(-4, u64::MAX));
    }

    #[test]
    fn with_range_presizes_without_reservations() {
        let ru = RuMap::with_range(0, 63);
        assert_eq!(ru.population(), 0);
        assert!(ru.is_free(0, u64::MAX));
        assert!(ru.is_free(63, u64::MAX));
    }

    #[test]
    #[should_panic(expected = "invalid cycle range")]
    fn with_range_rejects_inverted_bounds() {
        let _ = RuMap::with_range(4, 2);
    }

    #[test]
    fn reserve_is_idempotent() {
        let mut ru = RuMap::new();
        ru.reserve(1, 0b11);
        ru.reserve(1, 0b11);
        assert_eq!(ru.population(), 2);
        ru.release(1, 0b11);
        assert_eq!(ru.population(), 0);
    }
}
