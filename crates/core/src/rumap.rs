//! The resource usage map (RU map).
//!
//! The RU map records, for every schedule cycle, which resources are already
//! reserved by scheduled operations.  One cycle's occupancy is one 64-bit
//! word, so several usages falling in the same cycle are checked (reserved)
//! with a single AND (OR) — the bit-vector design of Section 6.
//!
//! Cycles are arbitrary `i32`s: operations issued at cycle 0 may use decode
//! resources at negative cycles, so the map grows in both directions.
//!
//! # Contract
//!
//! The map is *conceptually infinite*: every cycle exists and is all-zero
//! until reserved.  The `base`/`words` storage is a window onto that
//! infinite map, and the window's placement is an implementation detail
//! callers must not observe:
//!
//! * [`RuMap::word`] / [`RuMap::is_free`] outside the stored window read
//!   zero — the correct occupancy of any untouched cycle.
//! * [`RuMap::release`] outside the window is deliberately a no-op:
//!   clearing bits of an all-zero cycle changes nothing, so no growth is
//!   needed.  This also makes release safe to call with a superset of what
//!   was reserved (the checker's [`crate::Checker`] unwind paths rely on
//!   it when a partially applied option is backed out).
//! * [`RuMap::reserve`] grows the window as needed; the first reservation
//!   on an empty map *rebases* the window at that cycle.  Rebasing never
//!   discards occupancy (the map is empty at that point), so callers that
//!   interleave reserve/release at arbitrary cycles — the backward list
//!   scheduler probing negative cycles, the modulo scheduler's
//!   `rem_euclid` slots in `[0, II)` — cannot desynchronize: a release
//!   always either clears bits the matching reserve set, or no-ops on a
//!   cycle whose window entry was never created precisely because nothing
//!   was ever reserved there.
//!
//! The one way to misuse the map is to release a *different* (cycle,
//! mask) pair than was reserved while both fall inside the window — that
//! clears another operation's bits.  The schedulers never do this: every
//! release site replays the exact `(cycle, mask)` list of a prior
//! successful reserve (see `Checker::release` and
//! `ModuloScheduler::unschedule`).

/// A growable bit matrix of resource occupancy indexed by schedule cycle.
///
/// # Examples
///
/// ```
/// use mdes_core::rumap::RuMap;
///
/// let mut ru = RuMap::new();
/// assert!(ru.is_free(-1, 0b01));
/// ru.reserve(-1, 0b01);
/// assert!(!ru.is_free(-1, 0b01));
/// assert!(ru.is_free(-1, 0b10)); // other resources unaffected
/// ru.release(-1, 0b01);
/// assert!(ru.is_free(-1, 0b01));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuMap {
    /// Cycle number of `words[0]`.
    base: i32,
    /// Occupancy words, one per cycle starting at `base`.
    words: Vec<u64>,
}

impl RuMap {
    /// Creates an empty map.
    pub fn new() -> RuMap {
        RuMap::default()
    }

    /// Creates an empty map pre-sized for cycles `lo..=hi` to avoid
    /// re-allocation in hot scheduling loops.
    pub fn with_range(lo: i32, hi: i32) -> RuMap {
        assert!(lo <= hi, "invalid cycle range {lo}..={hi}");
        RuMap {
            base: lo,
            words: vec![0; (hi - lo + 1) as usize],
        }
    }

    /// The occupancy word for `cycle` (0 when outside the stored range).
    #[inline]
    pub fn word(&self, cycle: i32) -> u64 {
        let idx = i64::from(cycle) - i64::from(self.base);
        if idx < 0 || idx >= self.words.len() as i64 {
            0
        } else {
            self.words[idx as usize]
        }
    }

    /// True if none of the resources in `mask` are reserved at `cycle`.
    #[inline]
    pub fn is_free(&self, cycle: i32, mask: u64) -> bool {
        self.word(cycle) & mask == 0
    }

    /// Marks the resources in `mask` reserved at `cycle`.
    ///
    /// Reserving an already-reserved resource is allowed (the bits just
    /// stay set); the constraint checker always probes with
    /// [`RuMap::is_free`] first, and the modulo scheduler relies on
    /// idempotent reservation when rotating the map.
    #[inline]
    pub fn reserve(&mut self, cycle: i32, mask: u64) {
        let idx = self.index_growing(cycle);
        self.words[idx] |= mask;
    }

    /// Clears the resources in `mask` at `cycle` (unscheduling support).
    ///
    /// Outside the stored window this is a no-op by design: an untouched
    /// cycle is all-zero, so there is nothing to clear and no reason to
    /// grow (see the module-level contract).
    #[inline]
    pub fn release(&mut self, cycle: i32, mask: u64) {
        let idx = i64::from(cycle) - i64::from(self.base);
        if idx >= 0 && idx < self.words.len() as i64 {
            self.words[idx as usize] &= !mask;
        }
    }

    /// Removes every reservation but keeps the allocated capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The lowest cycle with any reservation, if any.
    pub fn min_reserved_cycle(&self) -> Option<i32> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| self.base + i as i32)
    }

    /// The highest cycle with any reservation, if any.
    pub fn max_reserved_cycle(&self) -> Option<i32> {
        self.words
            .iter()
            .rposition(|&w| w != 0)
            .map(|i| self.base + i as i32)
    }

    /// Total number of reserved (cycle, resource) pairs.
    pub fn population(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of `cycle` in `words`, growing the vector as needed.
    ///
    /// The first touch of an empty map rebases the window at `cycle`;
    /// later touches grow downward (copy) or upward (resize).  Rebasing
    /// is invisible to callers because an empty map has no occupancy to
    /// move.
    fn index_growing(&mut self, cycle: i32) -> usize {
        if self.words.is_empty() {
            self.base = cycle;
            self.words.push(0);
            return 0;
        }
        let mut idx = i64::from(cycle) - i64::from(self.base);
        if idx < 0 {
            let grow = (-idx) as usize;
            let mut new_words = vec![0u64; grow + self.words.len()];
            new_words[grow..].copy_from_slice(&self.words);
            self.words = new_words;
            self.base = cycle;
            idx = 0;
        } else if idx >= self.words.len() as i64 {
            self.words.resize(idx as usize + 1, 0);
        }
        idx as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_fully_free() {
        let ru = RuMap::new();
        assert!(ru.is_free(0, u64::MAX));
        assert!(ru.is_free(i32::MIN / 2, u64::MAX));
        assert_eq!(ru.population(), 0);
        assert_eq!(ru.min_reserved_cycle(), None);
        assert_eq!(ru.max_reserved_cycle(), None);
    }

    #[test]
    fn reserve_then_check_and_release() {
        let mut ru = RuMap::new();
        ru.reserve(5, 0b110);
        assert!(!ru.is_free(5, 0b010));
        assert!(!ru.is_free(5, 0b100));
        assert!(ru.is_free(5, 0b001));
        assert!(ru.is_free(4, 0b110));
        ru.release(5, 0b010);
        assert!(ru.is_free(5, 0b010));
        assert!(!ru.is_free(5, 0b100));
    }

    #[test]
    fn grows_downward_for_negative_cycles() {
        let mut ru = RuMap::new();
        ru.reserve(3, 1);
        ru.reserve(-2, 2);
        assert!(!ru.is_free(3, 1));
        assert!(!ru.is_free(-2, 2));
        assert_eq!(ru.min_reserved_cycle(), Some(-2));
        assert_eq!(ru.max_reserved_cycle(), Some(3));
        assert_eq!(ru.population(), 2);
    }

    #[test]
    fn release_outside_range_is_a_no_op() {
        let mut ru = RuMap::new();
        ru.reserve(0, 1);
        ru.release(100, 1);
        ru.release(-100, 1);
        assert!(!ru.is_free(0, 1));
    }

    #[test]
    fn clear_keeps_range_but_frees_everything() {
        let mut ru = RuMap::with_range(-4, 16);
        ru.reserve(-4, u64::MAX);
        ru.reserve(16, 1);
        ru.clear();
        assert_eq!(ru.population(), 0);
        assert!(ru.is_free(-4, u64::MAX));
    }

    #[test]
    fn with_range_presizes_without_reservations() {
        let ru = RuMap::with_range(0, 63);
        assert_eq!(ru.population(), 0);
        assert!(ru.is_free(0, u64::MAX));
        assert!(ru.is_free(63, u64::MAX));
    }

    #[test]
    #[should_panic(expected = "invalid cycle range")]
    fn with_range_rejects_inverted_bounds() {
        let _ = RuMap::with_range(4, 2);
    }

    /// Rebase-on-first-touch must be invisible: a map first touched far
    /// from zero behaves identically to one first touched at zero.
    #[test]
    fn first_touch_rebase_is_observationally_neutral() {
        let mut far_first = RuMap::new();
        far_first.reserve(1_000, 0b1);
        far_first.reserve(0, 0b10);
        far_first.reserve(-7, 0b100);

        let mut zero_first = RuMap::new();
        zero_first.reserve(0, 0b10);
        zero_first.reserve(-7, 0b100);
        zero_first.reserve(1_000, 0b1);

        for cycle in [-8, -7, 0, 1, 999, 1_000, 1_001] {
            assert_eq!(
                far_first.word(cycle),
                zero_first.word(cycle),
                "cycle {cycle}"
            );
        }
        assert_eq!(far_first.min_reserved_cycle(), Some(-7));
        assert_eq!(far_first.max_reserved_cycle(), Some(1_000));
    }

    /// The modulo scheduler only touches slots in `[0, II)` via
    /// `rem_euclid`; replaying its reserve/evict/release pattern must
    /// always return the map to empty (no silent no-op release can leak a
    /// reservation).
    #[test]
    fn modulo_style_reserve_release_round_trips_to_empty() {
        let ii = 3i32;
        let mut ru = RuMap::new();
        let mut reserved: Vec<(i32, u64)> = Vec::new();
        // Simulated placements at arbitrary cycles, folded into slots.
        for (cycle, mask) in [(0, 0b1), (4, 0b10), (-2, 0b100), (7, 0b1000), (-5, 0b1)] {
            let slot = i32::rem_euclid(cycle, ii);
            ru.reserve(slot, mask);
            reserved.push((slot, mask));
        }
        assert!(ru.population() > 0);
        for (slot, mask) in reserved {
            ru.release(slot, mask);
        }
        assert_eq!(ru.population(), 0);
        assert!((0..ii).all(|slot| ru.word(slot) == 0));
    }

    /// The backward scheduler probes and reserves at negative cycles
    /// after the map was rebased at a positive one; a release replayed
    /// from the reserve list must clear exactly those bits.
    #[test]
    fn backward_style_negative_cycle_unschedule() {
        let mut ru = RuMap::new();
        ru.reserve(10, 0b1); // forward placement rebased the window at 10
        ru.reserve(-3, 0b110); // backward placement grows downward
        ru.release(-3, 0b110); // unschedule the backward op
        assert_eq!(ru.word(-3), 0);
        assert!(!ru.is_free(10, 0b1), "unrelated reservation survived");
        // Releasing a superset (checker unwind) of an empty cycle no-ops.
        ru.release(-100, u64::MAX);
        assert_eq!(ru.population(), 1);
    }

    #[test]
    fn reserve_is_idempotent() {
        let mut ru = RuMap::new();
        ru.reserve(1, 0b11);
        ru.reserve(1, 0b11);
        assert_eq!(ru.population(), 2);
        ru.release(1, 0b11);
        assert_eq!(ru.population(), 0);
    }
}
