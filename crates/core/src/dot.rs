//! Graphviz DOT export of constraint trees.
//!
//! Renders the Figure-3 pictures for real: an OR-tree as a fan of
//! reservation-table leaves under an OR node, an AND/OR-tree as an AND
//! node over OR sub-trees.  Leaves are labeled with their usages
//! (`resource@time`, one line per cycle).  Pipe into `dot -Tsvg` to get
//! the paper's diagrams from the live description.

use std::fmt::Write as _;

use crate::spec::{AndOrTreeId, Constraint, MdesSpec, OptionId, OrTreeId};

/// Escapes a label for DOT.
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The label of one reservation-table option: its usages in check order.
fn option_label(spec: &MdesSpec, id: OptionId) -> String {
    let usages: Vec<String> = spec
        .option(id)
        .usages
        .iter()
        .map(|u| format!("{}@{}", spec.resources().name(u.resource), u.time))
        .collect();
    if usages.is_empty() {
        "(empty)".to_string()
    } else {
        usages.join("\\n")
    }
}

/// Emits the nodes and edges of one OR-tree under the DOT id `prefix`.
fn emit_or_tree(spec: &MdesSpec, id: OrTreeId, prefix: &str, out: &mut String) {
    let tree = spec.or_tree(id);
    let name = tree.name.as_deref().unwrap_or("OR");
    let _ = writeln!(
        out,
        "  \"{prefix}\" [shape=diamond, label=\"{}\"];",
        escape(name)
    );
    for (i, &opt) in tree.options.iter().enumerate() {
        let leaf = format!("{prefix}_o{i}");
        let _ = writeln!(
            out,
            "  \"{leaf}\" [shape=box, label=\"{}\"];",
            escape(&option_label(spec, opt))
        );
        let _ = writeln!(out, "  \"{prefix}\" -> \"{leaf}\" [label=\"{}\"];", i + 1);
    }
}

/// Renders an OR-tree as a complete DOT digraph.
pub fn or_tree(spec: &MdesSpec, id: OrTreeId) -> String {
    let mut out = String::from("digraph ortree {\n  rankdir=TB;\n");
    emit_or_tree(spec, id, "or0", &mut out);
    out.push_str("}\n");
    out
}

/// Renders an AND/OR-tree as a complete DOT digraph.
pub fn and_or_tree(spec: &MdesSpec, id: AndOrTreeId) -> String {
    let tree = spec.and_or_tree(id);
    let name = tree.name.as_deref().unwrap_or("AND");
    let mut out = String::from("digraph andortree {\n  rankdir=TB;\n");
    let _ = writeln!(
        out,
        "  \"and\" [shape=triangle, label=\"{}\"];",
        escape(name)
    );
    for (i, &or) in tree.or_trees.iter().enumerate() {
        let prefix = format!("or{i}");
        emit_or_tree(spec, or, &prefix, &mut out);
        let _ = writeln!(out, "  \"and\" -> \"{prefix}\";");
    }
    out.push_str("}\n");
    out
}

/// Renders the constraint of a named class, if it exists.
pub fn class_constraint(spec: &MdesSpec, class: &str) -> Option<String> {
    let id = spec.class_by_name(class)?;
    Some(match spec.class(id).constraint {
        Constraint::Or(or) => or_tree(spec, or),
        Constraint::AndOr(andor) => and_or_tree(spec, andor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AndOrTree, Latency, OpFlags, OrTree, TableOption};
    use crate::usage::ResourceUsage;
    use crate::ResourceId;

    fn demo() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("M").unwrap();
        spec.resources_mut().add_indexed("Dec", 2).unwrap();
        let m = spec.add_option(TableOption::new(vec![ResourceUsage::new(
            ResourceId::from_index(0),
            0,
        )]));
        let d: Vec<_> = (1..3)
            .map(|r| {
                spec.add_option(TableOption::new(vec![ResourceUsage::new(
                    ResourceId::from_index(r),
                    -1,
                )]))
            })
            .collect();
        let mem = spec.add_or_tree(OrTree::named("UseM", vec![m]));
        let dec = spec.add_or_tree(OrTree::named("AnyDec", d));
        let load = spec.add_and_or_tree(AndOrTree::named("Load", vec![mem, dec]));
        spec.add_class(
            "load",
            Constraint::AndOr(load),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn and_or_dot_contains_every_node_and_edge() {
        let spec = demo();
        let dot = class_constraint(&spec, "load").unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"and\""));
        assert!(dot.contains("UseM"));
        assert!(dot.contains("AnyDec"));
        assert!(dot.contains("M@0"));
        assert!(dot.contains("Dec[1]@-1"));
        // Priority labels on option edges.
        assert!(dot.contains("[label=\"1\"]"));
        assert!(dot.contains("[label=\"2\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn or_dot_renders_standalone_trees() {
        let spec = demo();
        let id = spec.or_tree_ids().next().unwrap();
        let dot = or_tree(&spec, id);
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=box"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("weird\"name").unwrap();
        let o = spec.add_option(TableOption::new(vec![ResourceUsage::new(
            ResourceId::from_index(0),
            0,
        )]));
        let t = spec.add_or_tree(OrTree::named("tree", vec![o]));
        spec.add_class("c", Constraint::Or(t), Latency::new(1), OpFlags::none())
            .unwrap();
        let dot = class_constraint(&spec, "c").unwrap();
        assert!(dot.contains("weird\\\"name"));
    }

    #[test]
    fn unknown_class_yields_none() {
        assert!(class_constraint(&demo(), "ghost").is_none());
    }
}
