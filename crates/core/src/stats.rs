//! Scheduling-attempt statistics.
//!
//! The paper's evaluation is built on three counters gathered while the
//! scheduler queries the MDES:
//!
//! * **scheduling attempts** — one `try_reserve` of one operation at one
//!   candidate cycle (Table 5's "Avg. Sched. Attempts" divides these by
//!   operations scheduled);
//! * **options checked** — reservation-table options whose checks were
//!   started during an attempt (the "Avg. Options/Attempt" columns);
//! * **resource checks** — individual probes of the RU map (the
//!   "Avg. Checks/Attempt" columns; one probe covers one usage in the
//!   scalar encoding or one cycle's usages in the bit-vector encoding).
//!
//! [`CheckStats`] also records the Figure-2 histogram: the distribution of
//! options checked per attempt.

/// Histogram of a per-attempt quantity (e.g. options checked).
///
/// Buckets are exact counts; values beyond the configured capacity saturate
/// into the last bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram able to distinguish counts `0..=max`.
    pub fn new(max: usize) -> Histogram {
        Histogram {
            buckets: vec![0; max + 1],
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Number of observations of exactly `value` (saturating bucket for the
    /// maximum).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of observations equal to `value`, or 0 when empty.
    pub fn fraction(&self, value: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(value) as f64 / total as f64
        }
    }

    /// Fraction of observations in `lo..=hi`.
    pub fn fraction_range(&self, lo: usize, hi: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = (lo..=hi.min(self.buckets.len() - 1))
            .map(|i| self.buckets[i])
            .sum();
        sum as f64 / total as f64
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Zeroes every bucket in place, keeping the capacity — a reset
    /// histogram compares equal to a freshly constructed one of the same
    /// capacity without reallocating.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different capacities.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram capacities differ"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(1024)
    }
}

/// Counters for one scheduling run.
///
/// # Examples
///
/// ```
/// use mdes_core::CheckStats;
///
/// let mut stats = CheckStats::new();
/// stats.begin_attempt();
/// stats.count_option();   // first option probed ...
/// stats.count_check();    // ... with one RU-map check
/// stats.end_attempt(true);
/// stats.count_operation();
/// assert_eq!(stats.attempts_per_op(), 1.0);
/// assert_eq!(stats.checks_per_option(), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CheckStats {
    /// Operations successfully scheduled.
    pub operations: u64,
    /// Scheduling attempts (successful + failed `try_reserve`s).
    pub attempts: u64,
    /// Attempts that succeeded.
    pub successes: u64,
    /// Reservation-table options whose checks were started.
    pub options_checked: u64,
    /// RU-map probes performed.
    pub resource_checks: u64,
    /// Distribution of options checked per attempt (Figure 2).
    pub options_per_attempt: Histogram,
    /// Options checked so far in the current attempt.
    current_attempt_options: usize,
}

impl CheckStats {
    /// Creates zeroed counters.
    pub fn new() -> CheckStats {
        CheckStats {
            operations: 0,
            attempts: 0,
            successes: 0,
            options_checked: 0,
            resource_checks: 0,
            options_per_attempt: Histogram::default(),
            current_attempt_options: 0,
        }
    }

    /// Zeroes every counter and histogram bucket in place, keeping the
    /// histogram allocation.  A reset instance compares equal to
    /// [`CheckStats::new`], so hot loops (the engine's per-worker job
    /// scratch) can reuse one instance across runs instead of paying the
    /// histogram allocation per job.
    pub fn reset(&mut self) {
        self.operations = 0;
        self.attempts = 0;
        self.successes = 0;
        self.options_checked = 0;
        self.resource_checks = 0;
        self.options_per_attempt.reset();
        self.current_attempt_options = 0;
    }

    /// Marks the start of a scheduling attempt.
    pub fn begin_attempt(&mut self) {
        self.attempts += 1;
        self.current_attempt_options = 0;
    }

    /// Records that an option's checks were started.
    pub fn count_option(&mut self) {
        self.options_checked += 1;
        self.current_attempt_options += 1;
    }

    /// Records one RU-map probe.
    pub fn count_check(&mut self) {
        self.resource_checks += 1;
    }

    /// Marks the end of a scheduling attempt.
    pub fn end_attempt(&mut self, success: bool) {
        if success {
            self.successes += 1;
        }
        self.options_per_attempt
            .record(self.current_attempt_options);
        // Clear the in-attempt scratch so counters that went through the
        // same attempts compare equal however they were folded together
        // (merge starts from fresh scratch; a serial run must too).
        self.current_attempt_options = 0;
    }

    /// Records one successfully scheduled operation.
    pub fn count_operation(&mut self) {
        self.operations += 1;
    }

    /// Average scheduling attempts per scheduled operation.
    pub fn attempts_per_op(&self) -> f64 {
        ratio(self.attempts, self.operations)
    }

    /// Average options checked per attempt.
    pub fn options_per_attempt_avg(&self) -> f64 {
        ratio(self.options_checked, self.attempts)
    }

    /// Average RU-map probes per attempt.
    pub fn checks_per_attempt(&self) -> f64 {
        ratio(self.resource_checks, self.attempts)
    }

    /// Average RU-map probes per option checked (Table 12's
    /// "Checks/Option" column; 1.0 is the ideal).
    pub fn checks_per_option(&self) -> f64 {
        ratio(self.resource_checks, self.options_checked)
    }

    /// Folds these counters into a telemetry registry under `prefix`
    /// (e.g. `sched/list`), so scheduler query counts land in the same
    /// `--metrics` report as the pipeline and compile spans.
    ///
    /// Counters are *added* (so repeated publishes from merged runs
    /// accumulate); the derived per-attempt ratios are set as gauges
    /// (last publish wins).
    pub fn publish(&self, tel: &mdes_telemetry::Telemetry, prefix: &str) {
        tel.counter_add(&format!("{prefix}/operations"), self.operations);
        tel.counter_add(&format!("{prefix}/attempts"), self.attempts);
        tel.counter_add(&format!("{prefix}/successes"), self.successes);
        tel.counter_add(&format!("{prefix}/options_checked"), self.options_checked);
        tel.counter_add(&format!("{prefix}/resource_checks"), self.resource_checks);
        tel.gauge_set(&format!("{prefix}/attempts_per_op"), self.attempts_per_op());
        tel.gauge_set(
            &format!("{prefix}/options_per_attempt"),
            self.options_per_attempt_avg(),
        );
        tel.gauge_set(
            &format!("{prefix}/checks_per_attempt"),
            self.checks_per_attempt(),
        );
        tel.gauge_set(
            &format!("{prefix}/checks_per_option"),
            self.checks_per_option(),
        );
    }

    /// Merges counters from another run (e.g. per-block parallel stats).
    pub fn merge(&mut self, other: &CheckStats) {
        self.operations += other.operations;
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.options_checked += other.options_checked;
        self.resource_checks += other.resource_checks;
        self.options_per_attempt.merge(&other.options_per_attempt);
    }
}

impl Default for CheckStats {
    fn default() -> CheckStats {
        CheckStats::new()
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Relative reduction `(from - to) / from`, as the paper's "% Checks
/// Reduced" / "% Size Reduced" columns.  Negative when `to` exceeds `from`
/// (e.g. the Pentium's AND-level overhead in Table 6).
///
/// # Examples
///
/// ```
/// use mdes_core::stats::percent_reduced;
/// assert_eq!(percent_reduced(35.49, 4.38), (35.49 - 4.38) / 35.49 * 100.0);
/// assert!(percent_reduced(14824.0, 15416.0) < 0.0); // grew
/// ```
pub fn percent_reduced(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (from - to) / from * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_lifecycle_updates_all_counters() {
        let mut stats = CheckStats::new();
        stats.begin_attempt();
        stats.count_option();
        stats.count_check();
        stats.count_check();
        stats.end_attempt(false);

        stats.begin_attempt();
        stats.count_option();
        stats.count_option();
        stats.count_check();
        stats.end_attempt(true);
        stats.count_operation();

        assert_eq!(stats.attempts, 2);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.options_checked, 3);
        assert_eq!(stats.resource_checks, 3);
        assert_eq!(stats.operations, 1);
        assert!((stats.attempts_per_op() - 2.0).abs() < 1e-12);
        assert!((stats.options_per_attempt_avg() - 1.5).abs() < 1e-12);
        assert!((stats.checks_per_attempt() - 1.5).abs() < 1e-12);
        assert!((stats.checks_per_option() - 1.0).abs() < 1e-12);
        assert_eq!(stats.options_per_attempt.count(1), 1);
        assert_eq!(stats.options_per_attempt.count(2), 1);
    }

    #[test]
    fn ratios_are_zero_when_denominator_is_zero() {
        let stats = CheckStats::new();
        assert_eq!(stats.attempts_per_op(), 0.0);
        assert_eq!(stats.options_per_attempt_avg(), 0.0);
        assert_eq!(stats.checks_per_attempt(), 0.0);
        assert_eq!(stats.checks_per_option(), 0.0);
    }

    #[test]
    fn reset_compares_equal_to_fresh_counters() {
        let mut stats = CheckStats::new();
        stats.begin_attempt();
        stats.count_option();
        stats.count_check();
        stats.end_attempt(true);
        stats.count_operation();
        // Also leave mid-attempt scratch dirty, as a panicked run would.
        stats.begin_attempt();
        stats.count_option();

        stats.reset();
        assert_eq!(stats, CheckStats::new());

        // A reset instance accumulates exactly like a fresh one.
        stats.begin_attempt();
        stats.count_option();
        stats.end_attempt(true);
        let mut fresh = CheckStats::new();
        fresh.begin_attempt();
        fresh.count_option();
        fresh.end_attempt(true);
        assert_eq!(stats, fresh);
    }

    #[test]
    fn histogram_saturates_at_capacity() {
        let mut h = Histogram::new(4);
        h.record(3);
        h.record(4);
        h.record(400);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(4), 2); // 400 saturated into the last bucket
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = Histogram::new(10);
        for _ in 0..3 {
            h.record(1);
        }
        h.record(5);
        assert!((h.fraction(1) - 0.75).abs() < 1e-12);
        assert!((h.fraction_range(0, 4) - 0.75).abs() < 1e-12);
        assert!((h.fraction_range(5, 10) - 0.25).abs() < 1e-12);
        assert_eq!(Histogram::new(2).fraction(0), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CheckStats::new();
        a.begin_attempt();
        a.count_option();
        a.count_check();
        a.end_attempt(true);
        a.count_operation();

        let mut b = CheckStats::new();
        b.begin_attempt();
        b.count_option();
        b.count_check();
        b.end_attempt(false);

        a.merge(&b);
        assert_eq!(a.attempts, 2);
        assert_eq!(a.options_checked, 2);
        assert_eq!(a.resource_checks, 2);
        assert_eq!(a.operations, 1);
        assert_eq!(a.options_per_attempt.count(1), 2);
    }

    #[test]
    fn publish_folds_counters_and_ratios_into_telemetry() {
        let mut stats = CheckStats::new();
        stats.begin_attempt();
        stats.count_option();
        stats.count_check();
        stats.count_check();
        stats.end_attempt(true);
        stats.count_operation();

        let tel = mdes_telemetry::Telemetry::new();
        stats.publish(&tel, "sched/list");
        stats.publish(&tel, "sched/list"); // counters accumulate
        let report = tel.report();
        assert_eq!(report.counter("sched/list/attempts"), Some(2));
        assert_eq!(report.counter("sched/list/resource_checks"), Some(4));
        assert_eq!(report.counter("sched/list/operations"), Some(2));
        assert_eq!(report.gauge("sched/list/checks_per_attempt"), Some(2.0));
    }

    #[test]
    fn percent_reduced_matches_paper_convention() {
        assert!((percent_reduced(100.0, 50.0) - 50.0).abs() < 1e-12);
        // Pentium Table 6: AND/OR slightly larger → negative reduction.
        assert!(percent_reduced(14824.0, 15416.0) < 0.0);
        assert_eq!(percent_reduced(0.0, 5.0), 0.0);
    }

    #[test]
    fn histogram_iter_skips_empty_buckets() {
        let mut h = Histogram::new(8);
        h.record(2);
        h.record(2);
        h.record(7);
        let items: Vec<(usize, u64)> = h.iter().collect();
        assert_eq!(items, vec![(2, 2), (7, 1)]);
    }

    #[test]
    #[should_panic(expected = "histogram capacities differ")]
    fn merging_mismatched_histograms_panics() {
        let mut a = Histogram::new(2);
        let b = Histogram::new(3);
        a.merge(&b);
    }
}
