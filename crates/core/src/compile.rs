//! The compiled low-level representation (`CompiledMdes`).
//!
//! Compilation flattens an [`MdesSpec`] into arrays
//! the constraint checker walks without pointer chasing, and fixes the
//! *usage encoding*:
//!
//! * [`UsageEncoding::Scalar`] — one RU-map probe per resource usage
//!   (the paper's pre-Section-6 cycle/resource pairs);
//! * [`UsageEncoding::BitVector`] — usages falling in the same cycle are
//!   packed into one 64-bit mask and probed together (Section 6).
//!
//! Sharing in the compiled form mirrors sharing in the spec exactly: one
//! compiled option per spec option, one compiled OR-tree per spec OR-tree,
//! "in order to minimize the time required to load the MDES into memory"
//! (Section 4).

use crate::error::MdesError;
use crate::rumap::RuMap;
use crate::spec::{ClassId, Constraint, Latency, MdesSpec, OpFlags};
use crate::stats::CheckStats;
use mdes_telemetry::Telemetry;

/// How resource usages are encoded for checking (Section 6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum UsageEncoding {
    /// One check per (cycle, resource) pair.
    Scalar,
    /// One check per (cycle, resource-vector) pair.
    BitVector,
}

/// One RU-map probe: are the resources in `mask` free at relative `time`?
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CompiledCheck {
    /// Cycle offset relative to the issue cycle.
    pub time: i32,
    /// Resource occupancy bits probed together.
    pub mask: u64,
}

/// A compiled reservation-table option: probes in check order.
///
/// This is the *construction-time* form (used by [`CompiledMdes::from_parts`]
/// and the LMDES loader).  Inside a [`CompiledMdes`] the per-option check
/// lists are flattened into one contiguous arena so the checker's inner loop
/// walks a dense slice instead of chasing one heap allocation per option;
/// read them back through [`CompiledMdes::option_checks`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledOption {
    /// The probes, in the order the checker performs them.
    pub checks: Vec<CompiledCheck>,
}

impl CompiledOption {
    /// Combined occupancy over all cycles (for diagnostics).
    pub fn total_mask(&self) -> u64 {
        self.checks.iter().fold(0, |m, c| m | c.mask)
    }
}

/// A borrowed view of one option's probes in the flat check arena.
///
/// Iterating yields [`CompiledCheck`]s by value, so loops written against
/// the old pointer-chased `Vec<CompiledCheck>` read the same.
#[derive(Copy, Clone, Debug)]
pub struct Checks<'a> {
    checks: &'a [CompiledCheck],
}

impl<'a> Checks<'a> {
    /// Number of probes in the option.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True for an option with no probes.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// The `k`-th probe.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn at(&self, k: usize) -> CompiledCheck {
        self.checks[k]
    }

    /// The probes as a plain slice into the arena.
    pub fn as_slice(&self) -> &'a [CompiledCheck] {
        self.checks
    }

    /// Iterates the probes in check order.
    pub fn iter(&self) -> impl Iterator<Item = CompiledCheck> + 'a {
        self.checks.iter().copied()
    }

    /// Combined occupancy over all cycles (for diagnostics).
    pub fn total_mask(&self) -> u64 {
        self.checks.iter().fold(0, |m, c| m | c.mask)
    }
}

impl<'a> IntoIterator for Checks<'a> {
    type Item = CompiledCheck;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CompiledCheck>>;

    fn into_iter(self) -> Self::IntoIter {
        self.checks.iter().copied()
    }
}

/// A compiled OR-tree: compiled-option indices in priority order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledOrTree {
    /// Indices into [`CompiledMdes::options`], highest priority first.
    pub options: Vec<u32>,
}

/// Whether a class's constraint came from an OR-tree or an AND/OR-tree
/// (distinguished for the memory model: the AND level costs a header).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Traditional single OR-tree.
    Or,
    /// AND of OR-trees.
    AndOr,
}

/// A compiled operation class.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledClass {
    /// Class name (diagnostics only).
    pub name: String,
    /// Source constraint form.
    pub kind: ConstraintKind,
    /// Indices into [`CompiledMdes::or_trees`], in check order.  A
    /// [`ConstraintKind::Or`] class has exactly one entry.
    pub or_trees: Vec<u32>,
    /// For [`ConstraintKind::AndOr`] classes, the spec AND/OR-tree index
    /// (so two classes sharing a spec tree share the compiled AND level in
    /// the memory model).  `u32::MAX` for OR classes.
    pub and_or_index: u32,
    /// Latency information.
    pub latency: Latency,
    /// Semantic flags.
    pub flags: OpFlags,
}

/// The flat, checker-ready machine description.
///
/// All per-option check lists live in one contiguous arena (`checks`,
/// delimited by `option_bounds`): probing an option walks one dense slice
/// of the shared arena rather than chasing a heap allocation per option,
/// which is what keeps the scheduler's check/reserve inner loop in one or
/// two cache lines per option.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledMdes {
    encoding: UsageEncoding,
    num_resources: usize,
    /// Every option's probes, concatenated in option order.
    checks: Vec<CompiledCheck>,
    /// Arena delimiters: option `i`'s probes occupy
    /// `option_bounds[i]..option_bounds[i + 1]`.  Length is one more than
    /// the option count.
    option_bounds: Vec<u32>,
    or_trees: Vec<CompiledOrTree>,
    classes: Vec<CompiledClass>,
    /// Bypass latency exceptions: (producer, consumer) → latency.
    bypasses: Vec<(u32, u32, i32)>,
    /// Most negative check time across all options (≤ 0).
    min_time: i32,
    /// Most positive check time across all options (≥ 0).
    max_time: i32,
}

impl CompiledMdes {
    /// Compiles `spec` with the given usage encoding.
    ///
    /// # Errors
    ///
    /// Returns the first validation error of the spec; compilation never
    /// proceeds on an inconsistent description.
    pub fn compile(spec: &MdesSpec, encoding: UsageEncoding) -> Result<CompiledMdes, MdesError> {
        Self::compile_with_telemetry(spec, encoding, &Telemetry::disabled())
    }

    /// [`CompiledMdes::compile`] with phase spans (`compile/validate`,
    /// `compile/packing`, `compile/classes`) and sharing gauges recorded
    /// into `tel`.
    ///
    /// The sharing gauges measure how much the one-compiled-object-per-
    /// spec-object policy (Section 4's load-time sharing) saves: the number
    /// of option *references* from OR-trees versus the unique option pool,
    /// and the checks-per-usage packing ratio of the chosen encoding.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledMdes::compile`].
    pub fn compile_with_telemetry(
        spec: &MdesSpec,
        encoding: UsageEncoding,
        tel: &Telemetry,
    ) -> Result<CompiledMdes, MdesError> {
        let _compile = tel.span("compile");
        {
            let _validate = tel.span("validate");
            spec.validate()?;
        }

        let options: Vec<CompiledOption> = {
            let _packing = tel.span("packing");
            spec.option_ids()
                .map(|id| compile_option(spec, id, encoding))
                .collect()
        };

        let or_trees: Vec<CompiledOrTree> = spec
            .or_tree_ids()
            .map(|id| CompiledOrTree {
                options: spec
                    .or_tree(id)
                    .options
                    .iter()
                    .map(|o| o.index() as u32)
                    .collect(),
            })
            .collect();

        // Sharing: every OR-tree stores references into one shared option
        // pool; the hit rate is how many references resolve to an
        // already-compiled option rather than a fresh one.
        let references: usize = or_trees.iter().map(|t| t.options.len()).sum();
        tel.gauge_set("compile/options/unique", options.len() as f64);
        tel.gauge_set("compile/options/references", references as f64);
        if references > 0 {
            tel.gauge_set(
                "compile/options/share_hit_rate",
                1.0 - options.len() as f64 / references as f64,
            );
        }
        let usages: usize = spec
            .option_ids()
            .map(|id| spec.option(id).usages.len())
            .sum();
        let checks: usize = options.iter().map(|o| o.checks.len()).sum();
        tel.gauge_set("compile/checks/emitted", checks as f64);
        if usages > 0 {
            tel.gauge_set(
                "compile/checks/packing_ratio",
                checks as f64 / usages as f64,
            );
        }

        let _classes_span = tel.span("classes");
        let classes: Vec<CompiledClass> = spec
            .class_ids()
            .map(|id| {
                let class = spec.class(id);
                let (kind, trees, and_or_index) = match class.constraint {
                    Constraint::Or(or) => (ConstraintKind::Or, vec![or.index() as u32], u32::MAX),
                    Constraint::AndOr(andor) => (
                        ConstraintKind::AndOr,
                        spec.and_or_tree(andor)
                            .or_trees
                            .iter()
                            .map(|o| o.index() as u32)
                            .collect(),
                        andor.index() as u32,
                    ),
                };
                CompiledClass {
                    name: class.name.clone(),
                    kind,
                    or_trees: trees,
                    and_or_index,
                    latency: class.latency,
                    flags: class.flags,
                }
            })
            .collect();
        drop(_classes_span);

        let min_time = options
            .iter()
            .flat_map(|o| o.checks.iter().map(|c| c.time))
            .min()
            .unwrap_or(0)
            .min(0);
        let max_time = options
            .iter()
            .flat_map(|o| o.checks.iter().map(|c| c.time))
            .max()
            .unwrap_or(0)
            .max(0);

        let (checks, option_bounds) = flatten_options(&options);
        Ok(CompiledMdes {
            encoding,
            num_resources: spec.resources().len(),
            checks,
            option_bounds,
            or_trees,
            classes,
            bypasses: spec
                .bypasses()
                .iter()
                .map(|&(p, c, l)| (p.index() as u32, c.index() as u32, l))
                .collect(),
            min_time,
            max_time,
        })
    }

    /// The flow-dependence latency from a `producer` to a `consumer`:
    /// a declared bypass exception if one exists, otherwise the operand
    /// read/write-time default `producer.dest − consumer.src` (clamped
    /// non-negative).
    pub fn flow_latency(&self, producer: ClassId, consumer: ClassId) -> i32 {
        let pair = (producer.index() as u32, consumer.index() as u32);
        for &(p, c, latency) in &self.bypasses {
            if (p, c) == pair {
                return latency.max(0);
            }
        }
        (self.class(producer).latency.dest - self.class(consumer).latency.src).max(0)
    }

    /// The bypass exception table.
    pub fn bypasses(&self) -> &[(u32, u32, i32)] {
        &self.bypasses
    }

    /// Reassembles a compiled MDES from raw parts (used by the binary
    /// LMDES loader).
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::UnknownOption`] / [`MdesError::UnknownOrTree`]
    /// if any stored index dangles, or [`MdesError::EmptyOrTree`] for an
    /// OR class without exactly one tree.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        encoding: UsageEncoding,
        num_resources: usize,
        options: Vec<CompiledOption>,
        or_trees: Vec<CompiledOrTree>,
        classes: Vec<CompiledClass>,
        bypasses: Vec<(u32, u32, i32)>,
        min_time: i32,
        max_time: i32,
    ) -> Result<CompiledMdes, MdesError> {
        for tree in &or_trees {
            for &opt in &tree.options {
                if opt as usize >= options.len() {
                    return Err(MdesError::UnknownOption(opt));
                }
            }
        }
        for class in &classes {
            for &tree in &class.or_trees {
                if tree as usize >= or_trees.len() {
                    return Err(MdesError::UnknownOrTree(tree));
                }
            }
            if class.kind == ConstraintKind::Or && class.or_trees.len() != 1 {
                return Err(MdesError::EmptyOrTree);
            }
        }
        for &(p, c, _) in &bypasses {
            if p as usize >= classes.len() || c as usize >= classes.len() {
                return Err(MdesError::UnknownClass(format!("bypass {p}->{c}")));
            }
        }
        let (checks, option_bounds) = flatten_options(&options);
        Ok(CompiledMdes {
            encoding,
            num_resources,
            checks,
            option_bounds,
            or_trees,
            classes,
            bypasses,
            min_time,
            max_time,
        })
    }

    /// The usage encoding this MDES was compiled with.
    pub fn encoding(&self) -> UsageEncoding {
        self.encoding
    }

    /// Number of resources in the source description.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of options in the shared pool.
    pub fn num_options(&self) -> usize {
        self.option_bounds.len() - 1
    }

    /// The probes of option `idx`, as a view into the flat check arena.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is not a valid option index.
    pub fn option_checks(&self, idx: usize) -> Checks<'_> {
        let lo = self.option_bounds[idx] as usize;
        let hi = self.option_bounds[idx + 1] as usize;
        Checks {
            checks: &self.checks[lo..hi],
        }
    }

    /// Total number of probes stored in the check arena.
    pub fn num_checks(&self) -> usize {
        self.checks.len()
    }

    /// The compiled OR-tree pool.
    pub fn or_trees(&self) -> &[CompiledOrTree] {
        &self.or_trees
    }

    /// The compiled classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[CompiledClass] {
        &self.classes
    }

    /// The compiled class for `id`.
    ///
    /// # Panics
    ///
    /// Panics on a [`ClassId`] from a different MDES.
    pub fn class(&self, id: ClassId) -> &CompiledClass {
        &self.classes[id.index()]
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_index)
    }

    /// Most negative check time across all options (≤ 0).
    pub fn min_check_time(&self) -> i32 {
        self.min_time
    }

    /// Most positive check time across all options (≥ 0).
    pub fn max_check_time(&self) -> i32 {
        self.max_time
    }

    /// Total reservation-table options reachable from `class` (cross
    /// product across the AND level).
    pub fn class_option_count(&self, id: ClassId) -> usize {
        self.class(id)
            .or_trees
            .iter()
            .map(|&t| self.or_trees[t as usize].options.len())
            .product()
    }
}

/// Flattens per-option check lists into the arena pair
/// `(checks, option_bounds)`.
fn flatten_options(options: &[CompiledOption]) -> (Vec<CompiledCheck>, Vec<u32>) {
    let total: usize = options.iter().map(|o| o.checks.len()).sum();
    let mut checks = Vec::with_capacity(total);
    let mut bounds = Vec::with_capacity(options.len() + 1);
    bounds.push(0u32);
    for option in options {
        checks.extend_from_slice(&option.checks);
        bounds.push(checks.len() as u32);
    }
    (checks, bounds)
}

/// Compiles one spec option into its probe sequence.
fn compile_option(
    spec: &MdesSpec,
    id: crate::spec::OptionId,
    encoding: UsageEncoding,
) -> CompiledOption {
    let usages = &spec.option(id).usages;
    let checks = match encoding {
        UsageEncoding::Scalar => usages
            .iter()
            .map(|u| CompiledCheck {
                time: u.time,
                mask: u.resource.bit(),
            })
            .collect(),
        UsageEncoding::BitVector => {
            // Group usages by cycle, preserving the first-occurrence order
            // of cycles so the check-ordering transformation's choice of
            // "time zero first" survives packing.
            let mut checks: Vec<CompiledCheck> = Vec::new();
            for u in usages {
                match checks.iter_mut().find(|c| c.time == u.time) {
                    Some(check) => check.mask |= u.resource.bit(),
                    None => checks.push(CompiledCheck {
                        time: u.time,
                        mask: u.resource.bit(),
                    }),
                }
            }
            checks
        }
    };
    CompiledOption { checks }
}

/// The result of a successful reservation: which compiled option was
/// selected from each OR-tree of the class, at which issue time.
///
/// Keeping the choice around makes unscheduling possible — the capability
/// the paper notes finite-state-automata approaches lack (Section 10).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Choice {
    /// The class that was scheduled.
    pub class: ClassId,
    /// Issue cycle.
    pub time: i32,
    /// Selected compiled-option index per OR-tree of the class, in the
    /// class's OR-tree order.
    pub selected: Vec<u32>,
}

/// The resource-constraint checker of the low-level representation.
///
/// One algorithm serves both representations: a class is a list of
/// OR-trees (length 1 for the traditional representation), and the checker
/// runs the OR-tree algorithm under "an outer loop … that processes the
/// array of OR-trees" (Section 3), reserving progressively and rolling
/// back on failure.
#[derive(Copy, Clone, Debug)]
pub struct Checker<'a> {
    mdes: &'a CompiledMdes,
}

impl<'a> Checker<'a> {
    /// Creates a checker over `mdes`.
    pub fn new(mdes: &'a CompiledMdes) -> Checker<'a> {
        Checker { mdes }
    }

    /// The compiled MDES this checker reads.
    pub fn mdes(&self) -> &'a CompiledMdes {
        self.mdes
    }

    /// Attempts to reserve resources for one operation of `class` issued at
    /// `time`.  On success the RU map is updated and the selection is
    /// returned; on failure the RU map is left unchanged.
    ///
    /// Every call counts as one *scheduling attempt* in `stats`.
    #[inline]
    pub fn try_reserve(
        &self,
        ru: &mut RuMap,
        class: ClassId,
        time: i32,
        stats: &mut CheckStats,
    ) -> Option<Choice> {
        stats.begin_attempt();
        let compiled = self.mdes.class(class);
        let mut selected: Vec<u32> = Vec::with_capacity(compiled.or_trees.len());
        for &tree_idx in &compiled.or_trees {
            match self.try_or_tree(ru, tree_idx, time, stats) {
                Some(opt_idx) => {
                    self.apply_option(ru, opt_idx, time, true);
                    selected.push(opt_idx);
                }
                None => {
                    for &opt_idx in &selected {
                        self.apply_option(ru, opt_idx, time, false);
                    }
                    stats.end_attempt(false);
                    return None;
                }
            }
        }
        stats.end_attempt(true);
        Some(Choice {
            class,
            time,
            selected,
        })
    }

    /// Releases a previous reservation (unscheduling).
    pub fn release(&self, ru: &mut RuMap, choice: &Choice) {
        for &opt_idx in &choice.selected {
            self.apply_option(ru, opt_idx, choice.time, false);
        }
    }

    /// True if `class` could be reserved at `time` without changing the RU
    /// map.  Costs the same checks as [`Checker::try_reserve`].
    pub fn can_reserve(
        &self,
        ru: &mut RuMap,
        class: ClassId,
        time: i32,
        stats: &mut CheckStats,
    ) -> bool {
        if let Some(choice) = self.try_reserve(ru, class, time, stats) {
            self.release(ru, &choice);
            true
        } else {
            false
        }
    }

    /// True when every probe of option `opt_idx` finds its resources free
    /// at issue time `time`, counting one option attempt in `stats`.
    ///
    /// Exact-search clients (the oracle scheduler in `mdes-oracle`) branch
    /// over individual OR-tree options instead of accepting the greedy
    /// first-feasible pick of [`Checker::try_reserve`]; this exposes the
    /// same probe the greedy walk uses so both paths answer from one
    /// query surface.
    pub fn option_fits(&self, ru: &RuMap, opt_idx: u32, time: i32, stats: &mut CheckStats) -> bool {
        stats.count_option();
        self.option_free(ru, opt_idx, time, stats)
    }

    /// Reserves (`set = true`) or releases (`set = false`) every check of
    /// option `opt_idx` at issue time `time`.
    ///
    /// Pairs with [`Checker::option_fits`] for callers that manage their
    /// own option selection (e.g. branch-and-bound search); the RU-map
    /// mutation is identical to what [`Checker::try_reserve`] performs.
    pub fn apply_option_at(&self, ru: &mut RuMap, opt_idx: u32, time: i32, set: bool) {
        self.apply_option(ru, opt_idx, time, set);
    }

    /// True when every probe of option `opt_idx` finds its resources free
    /// at issue time `time`.  Walks one dense slice of the shared check
    /// arena.
    #[inline]
    fn option_free(&self, ru: &RuMap, opt_idx: u32, time: i32, stats: &mut CheckStats) -> bool {
        let lo = self.mdes.option_bounds[opt_idx as usize] as usize;
        let hi = self.mdes.option_bounds[opt_idx as usize + 1] as usize;
        for check in &self.mdes.checks[lo..hi] {
            stats.count_check();
            if !ru.is_free(time + check.time, check.mask) {
                return false;
            }
        }
        true
    }

    /// Walks one OR-tree: returns the first option (priority order) whose
    /// probes all succeed.  Does not reserve.
    fn try_or_tree(
        &self,
        ru: &RuMap,
        tree_idx: u32,
        time: i32,
        stats: &mut CheckStats,
    ) -> Option<u32> {
        let tree = &self.mdes.or_trees[tree_idx as usize];
        for &opt_idx in &tree.options {
            stats.count_option();
            if self.option_free(ru, opt_idx, time, stats) {
                return Some(opt_idx);
            }
        }
        None
    }

    /// [`Checker::try_or_tree`] with a success-history hint: the option
    /// that satisfied this tree last time is probed first, and the
    /// priority-order scan only runs when the hint misses.  On machines
    /// with interchangeable units this skips the walk over busy
    /// higher-priority options that a stable workload keeps re-failing —
    /// the paper's Section 4 intuition (order options by likelihood of
    /// success) applied dynamically.
    fn try_or_tree_hinted(
        &self,
        ru: &RuMap,
        tree_idx: u32,
        time: i32,
        stats: &mut CheckStats,
        hints: &mut OptionHints,
    ) -> Option<u32> {
        let tree = &self.mdes.or_trees[tree_idx as usize];
        let hint = hints.last[tree_idx as usize];
        if (hint as usize) < tree.options.len() {
            let opt_idx = tree.options[hint as usize];
            stats.count_option();
            if self.option_free(ru, opt_idx, time, stats) {
                return Some(opt_idx);
            }
        }
        for (pos, &opt_idx) in tree.options.iter().enumerate() {
            if pos as u32 == hint {
                continue;
            }
            stats.count_option();
            if self.option_free(ru, opt_idx, time, stats) {
                hints.last[tree_idx as usize] = pos as u32;
                return Some(opt_idx);
            }
        }
        None
    }

    /// [`Checker::try_reserve`] with hint-first option ordering.
    ///
    /// Every reservation it makes is a legal option of every tree, so
    /// schedules built with it always verify — but the *chosen* option
    /// may be a lower-priority one when the hint hits, which can shift
    /// which resources are busy (and, through the greedy per-tree walk of
    /// AND/OR classes, even whether a later attempt succeeds).  Callers
    /// that must reproduce the paper's exact accounting (the bench
    /// tables) use the unhinted path; throughput-oriented callers (engine
    /// serving, the perf harness) opt in.  Determinism holds as long as
    /// `hints` is owned by one logical scheduling run: the hint state is
    /// a pure function of the attempt history.
    #[inline]
    pub fn try_reserve_hinted(
        &self,
        ru: &mut RuMap,
        class: ClassId,
        time: i32,
        stats: &mut CheckStats,
        hints: &mut OptionHints,
    ) -> Option<Choice> {
        stats.begin_attempt();
        let compiled = self.mdes.class(class);
        let mut selected: Vec<u32> = Vec::with_capacity(compiled.or_trees.len());
        for &tree_idx in &compiled.or_trees {
            match self.try_or_tree_hinted(ru, tree_idx, time, stats, hints) {
                Some(opt_idx) => {
                    self.apply_option(ru, opt_idx, time, true);
                    selected.push(opt_idx);
                }
                None => {
                    for &opt_idx in &selected {
                        self.apply_option(ru, opt_idx, time, false);
                    }
                    stats.end_attempt(false);
                    return None;
                }
            }
        }
        stats.end_attempt(true);
        Some(Choice {
            class,
            time,
            selected,
        })
    }

    /// Reserves (`set`) or releases (`!set`) all checks of an option.
    #[inline]
    fn apply_option(&self, ru: &mut RuMap, opt_idx: u32, time: i32, set: bool) {
        let lo = self.mdes.option_bounds[opt_idx as usize] as usize;
        let hi = self.mdes.option_bounds[opt_idx as usize + 1] as usize;
        for check in &self.mdes.checks[lo..hi] {
            if set {
                ru.reserve(time + check.time, check.mask);
            } else {
                ru.release(time + check.time, check.mask);
            }
        }
    }
}

/// Per-OR-tree memory of the last successful option, for
/// [`Checker::try_reserve_hinted`].
///
/// One instance belongs to one logical scheduling run (e.g. one block);
/// sharing it across concurrently scheduled blocks would make schedules
/// depend on interleaving.  `u32::MAX` marks "no success yet", so a fresh
/// state behaves exactly like the unhinted priority scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptionHints {
    /// Last successful option *position within its tree*, indexed by
    /// OR-tree index.
    last: Vec<u32>,
}

impl OptionHints {
    /// Creates a cleared hint state sized for `mdes`.
    pub fn new(mdes: &CompiledMdes) -> OptionHints {
        OptionHints {
            last: vec![u32::MAX; mdes.or_trees.len()],
        }
    }

    /// Forgets all recorded successes.
    pub fn reset(&mut self) {
        self.last.fill(u32::MAX);
    }

    /// Clears the hint state and re-sizes it for `mdes`, reusing the
    /// allocation when the capacity already fits.  Lets one instance
    /// serve many logical scheduling runs (the engine's per-worker
    /// scratch) while each run still starts from the cleared state
    /// [`OptionHints::new`] would give it.
    pub fn reset_for(&mut self, mdes: &CompiledMdes) {
        self.last.clear();
        self.last.resize(mdes.or_trees.len(), u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceId;
    use crate::spec::{AndOrTree, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// Two decoders (r0, r1) and one memory unit (r2): a small AND/OR
    /// machine with an equivalent expanded OR machine.
    fn andor_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap();
        spec.resources_mut().add("M").unwrap();
        let d0 = spec.add_option(TableOption::new(vec![u(0, -1)]));
        let d1 = spec.add_option(TableOption::new(vec![u(1, -1)]));
        let m = spec.add_option(TableOption::new(vec![u(2, 0)]));
        let dec = spec.add_or_tree(OrTree::named("AnyDec", vec![d0, d1]));
        let mem = spec.add_or_tree(OrTree::named("UseM", vec![m]));
        let load = spec.add_and_or_tree(AndOrTree::named("Load", vec![mem, dec]));
        spec.add_class(
            "load",
            Constraint::AndOr(load),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn compile_validates_first() {
        let spec = MdesSpec::new();
        assert!(CompiledMdes::compile(&spec, UsageEncoding::Scalar).is_err());
    }

    #[test]
    fn scalar_encoding_has_one_check_per_usage() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 3).unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0), u(2, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        assert_eq!(compiled.option_checks(0).len(), 3);
    }

    #[test]
    fn bitvector_encoding_packs_same_cycle_usages() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 3).unwrap();
        let opt = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0), u(2, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checks = compiled.option_checks(0);
        assert_eq!(checks.len(), 2);
        assert_eq!(
            checks.at(0),
            CompiledCheck {
                time: 0,
                mask: 0b011
            }
        );
        assert_eq!(
            checks.at(1),
            CompiledCheck {
                time: 1,
                mask: 0b100
            }
        );
    }

    #[test]
    fn bitvector_packing_preserves_first_occurrence_time_order() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 3).unwrap();
        // Check order starts at time 1, then 0: packing must not re-sort.
        let opt = spec.add_option(TableOption::new(vec![u(2, 1), u(0, 0), u(1, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checks = compiled.option_checks(0);
        assert_eq!(checks.at(0).time, 1);
        assert_eq!(checks.at(0).mask, 0b110);
        assert_eq!(checks.at(1).time, 0);
    }

    #[test]
    fn try_reserve_picks_highest_priority_free_option() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("load").unwrap();
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();

        let first = checker.try_reserve(&mut ru, class, 0, &mut stats).unwrap();
        // Decoder 0 (compiled option index 0) chosen from the decoder tree.
        assert_eq!(first.selected.len(), 2);
        assert!(!ru.is_free(-1, 0b01)); // Dec[0] at time -1
        assert!(!ru.is_free(0, 0b100)); // M at time 0

        // Second load in the same cycle: M is busy, so it must fail and
        // leave the map untouched.
        let pop_before = ru.population();
        assert!(checker.try_reserve(&mut ru, class, 0, &mut stats).is_none());
        assert_eq!(ru.population(), pop_before);

        // One cycle later, decoder 1 is... actually all resources free at
        // t=1 (usages are relative), so it succeeds with decoder 0 again.
        let second = checker.try_reserve(&mut ru, class, 1, &mut stats).unwrap();
        assert_eq!(second.selected, first.selected);
    }

    #[test]
    fn failed_and_or_attempt_rolls_back_partial_reservations() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("load").unwrap();
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();

        // Occupy both decoders at time -1 but leave M free: the memory
        // OR-tree succeeds (and reserves M), the decoder tree fails, and
        // the rollback must free M again.
        ru.reserve(-1, 0b11);
        assert!(checker.try_reserve(&mut ru, class, 0, &mut stats).is_none());
        assert!(ru.is_free(0, 0b100), "M must be rolled back");
    }

    #[test]
    fn release_undoes_try_reserve() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("load").unwrap();
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();

        let choice = checker.try_reserve(&mut ru, class, 3, &mut stats).unwrap();
        assert!(ru.population() > 0);
        checker.release(&mut ru, &choice);
        assert_eq!(ru.population(), 0);
    }

    #[test]
    fn can_reserve_does_not_mutate_map() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("load").unwrap();
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();
        assert!(checker.can_reserve(&mut ru, class, 0, &mut stats));
        assert_eq!(ru.population(), 0);
    }

    #[test]
    fn stats_count_short_circuiting() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("load").unwrap();
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();

        // M busy: the memory tree (checked first) fails after 1 option /
        // 1 check; the decoder tree is never consulted.
        ru.reserve(0, 0b100);
        assert!(checker.try_reserve(&mut ru, class, 0, &mut stats).is_none());
        assert_eq!(stats.options_checked, 1);
        assert_eq!(stats.resource_checks, 1);
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.successes, 0);
    }

    #[test]
    fn min_max_check_times_cover_negative_and_positive_usages() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        assert_eq!(compiled.min_check_time(), -1);
        assert_eq!(compiled.max_check_time(), 0);
    }

    #[test]
    fn class_option_count_matches_cross_product() {
        let spec = andor_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        let class = compiled.class_by_name("load").unwrap();
        assert_eq!(compiled.class_option_count(class), 2);
    }

    /// Four interchangeable issue slots behind one OR-tree: the shape
    /// where hint-first ordering pays (a stable workload keeps re-failing
    /// the same busy high-priority slots).
    fn wide_or_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Slot", 4).unwrap();
        let opts: Vec<_> = (0..4)
            .map(|r| spec.add_option(TableOption::new(vec![u(r, 0)])))
            .collect();
        let tree = spec.add_or_tree(OrTree::new(opts));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn fresh_hints_behave_like_priority_scan() {
        let spec = wide_or_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("op").unwrap();

        let mut ru_plain = RuMap::new();
        let mut ru_hinted = RuMap::new();
        let mut stats = CheckStats::new();
        let mut hints = OptionHints::new(&compiled);

        // With no recorded success, every probe must match the unhinted
        // walk exactly — same selections, same costs.
        let mut stats_hinted = CheckStats::new();
        let plain = checker
            .try_reserve(&mut ru_plain, class, 0, &mut stats)
            .unwrap();
        let hinted = checker
            .try_reserve_hinted(&mut ru_hinted, class, 0, &mut stats_hinted, &mut hints)
            .unwrap();
        assert_eq!(plain, hinted);
        assert_eq!(stats.resource_checks, stats_hinted.resource_checks);
    }

    #[test]
    fn hinted_and_unhinted_agree_on_accept_reject() {
        let spec = wide_or_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("op").unwrap();

        let mut ru_plain = RuMap::new();
        let mut ru_hinted = RuMap::new();
        let mut stats = CheckStats::new();
        let mut hints = OptionHints::new(&compiled);

        // Saturate each cycle: 4 slots, issue 5 ops per cycle — the 5th
        // must fail in both worlds, and both maps stay identical.
        for time in 0..8 {
            for attempt in 0..5 {
                let plain = checker.try_reserve(&mut ru_plain, class, time, &mut stats);
                let hinted =
                    checker.try_reserve_hinted(&mut ru_hinted, class, time, &mut stats, &mut hints);
                assert_eq!(plain.is_some(), hinted.is_some(), "t={time} a={attempt}");
            }
            assert_eq!(ru_plain.population(), ru_hinted.population());
        }
    }

    #[test]
    fn hint_skips_busy_higher_priority_options() {
        let spec = wide_or_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let class = compiled.class_by_name("op").unwrap();

        let mut ru = RuMap::new();
        let mut hints = OptionHints::new(&compiled);

        // Slots 0–2 permanently busy: the priority scan pays 3 failed
        // probes every attempt, the hint lands on slot 3 immediately.
        for time in 0..4 {
            ru.reserve(time, 0b0111);
        }
        let mut warm = CheckStats::new();
        let first = checker
            .try_reserve_hinted(&mut ru, class, 0, &mut warm, &mut hints)
            .unwrap();
        assert_eq!(first.selected, vec![3]);
        assert_eq!(warm.resource_checks, 4); // cold: walked all four

        let mut hot = CheckStats::new();
        let second = checker
            .try_reserve_hinted(&mut ru, class, 1, &mut hot, &mut hints)
            .unwrap();
        assert_eq!(second.selected, vec![3]);
        assert_eq!(hot.resource_checks, 1); // hint hit: single probe

        // Unhinted pays the full walk at the same state.
        let mut cold = CheckStats::new();
        let plain = checker.try_reserve(&mut ru, class, 2, &mut cold).unwrap();
        assert_eq!(plain.selected, vec![3]);
        assert_eq!(cold.resource_checks, 4);

        // After reset the hinted walk is the priority scan again.
        hints.reset();
        let mut reset = CheckStats::new();
        checker
            .try_reserve_hinted(&mut ru, class, 3, &mut reset, &mut hints)
            .unwrap();
        assert_eq!(reset.resource_checks, 4);
    }
}
