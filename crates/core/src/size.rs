//! The memory model for the low-level representation (Tables 6, 7, 9, 11,
//! 14 of the paper).
//!
//! The paper reports the compiler-memory footprint of the resource
//! constraint description in bytes on a 1996-era 32-bit machine.  To make
//! our numbers comparable we account in 4-byte words over the *logical*
//! compiled structure rather than measuring 64-bit `std` container
//! overheads:
//!
//! * a check is a `(time, resource-or-mask)` pair → 2 words ("both
//!   representations require two words to represent each pair", Section 6);
//! * each option, OR-tree and AND-level carries a 2-word header (count +
//!   pointer) — the "small amount of header information per item"
//!   duplicated to prevent performance degradation (Section 4);
//! * each reference from a tree to a shared child costs 1 word;
//! * each operation-class entry costs 2 words (constraint pointer plus
//!   packed latency/flags).
//!
//! Sharing is respected exactly as the compiled representation shares:
//! pool items are counted once no matter how many trees reference them.

use std::collections::BTreeSet;

use crate::compile::{CompiledMdes, ConstraintKind};

/// Bytes per logical machine word in the memory model.
pub const WORD_BYTES: usize = 4;

/// Byte counts for one compiled MDES, by component.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes for the (shared) reservation-table option pool.
    pub option_bytes: usize,
    /// Bytes for the (shared) OR-tree pool.
    pub or_tree_bytes: usize,
    /// Bytes for AND-level nodes of AND/OR classes.
    pub and_level_bytes: usize,
    /// Bytes for per-class entries.
    pub class_bytes: usize,
    /// Number of options in the pool.
    pub num_options: usize,
    /// Number of OR-trees in the pool.
    pub num_or_trees: usize,
    /// Number of top-level constraint trees (the paper's "Number of
    /// Trees": unique constraint targets across classes).
    pub num_trees: usize,
    /// Total RU-map probes stored (pairs), for reference.
    pub num_checks: usize,
}

impl MemoryReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.option_bytes + self.or_tree_bytes + self.and_level_bytes + self.class_bytes
    }
}

/// Measures the memory footprint of a compiled MDES under the paper's
/// word model.
///
/// # Examples
///
/// ```
/// use mdes_core::size::measure;
/// use mdes_core::{CompiledMdes, UsageEncoding};
///
/// let spec = mdes_lang::compile("
///     resource M;
///     or_tree T = first_of({ M @ 0 });
///     class mem { constraint = T; }
/// ").unwrap();
/// let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
/// let report = measure(&compiled);
/// // One option (8 B header + one 8 B check) + one OR-tree (8 + 4)
/// // + one class entry (8).
/// assert_eq!(report.total(), 36);
/// ```
pub fn measure(mdes: &CompiledMdes) -> MemoryReport {
    let header = 2 * WORD_BYTES;
    let check = 2 * WORD_BYTES;
    let reference = WORD_BYTES;

    let mut report = MemoryReport {
        num_options: mdes.num_options(),
        num_or_trees: mdes.or_trees().len(),
        ..MemoryReport::default()
    };

    for idx in 0..mdes.num_options() {
        let checks = mdes.option_checks(idx).len();
        report.option_bytes += header + checks * check;
        report.num_checks += checks;
    }

    for tree in mdes.or_trees() {
        report.or_tree_bytes += header + tree.options.len() * reference;
    }

    // AND-level nodes: one per unique spec AND/OR tree referenced.
    let mut seen_and: BTreeSet<u32> = BTreeSet::new();
    let mut top_level: BTreeSet<(u8, u32)> = BTreeSet::new();
    for class in mdes.classes() {
        report.class_bytes += 2 * WORD_BYTES;
        match class.kind {
            ConstraintKind::Or => {
                top_level.insert((0, class.or_trees[0]));
            }
            ConstraintKind::AndOr => {
                top_level.insert((1, class.and_or_index));
                if seen_and.insert(class.and_or_index) {
                    report.and_level_bytes += header + class.or_trees.len() * reference;
                }
            }
        }
    }
    report.num_trees = top_level.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::UsageEncoding;
    use crate::resource::ResourceId;
    use crate::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn or_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 2).unwrap();
        let o1 = spec.add_option(TableOption::new(vec![u(0, 0), u(1, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![u(1, 1)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn scalar_or_tree_accounting_is_exact() {
        let spec = or_spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        let report = measure(&compiled);
        // Options: (8 + 2*8) + (8 + 1*8) = 24 + 16 = 40.
        assert_eq!(report.option_bytes, 40);
        // OR-tree: 8 + 2*4 = 16.
        assert_eq!(report.or_tree_bytes, 16);
        assert_eq!(report.and_level_bytes, 0);
        assert_eq!(report.class_bytes, 8);
        assert_eq!(report.total(), 64);
        assert_eq!(report.num_options, 2);
        assert_eq!(report.num_trees, 1);
        assert_eq!(report.num_checks, 3);
    }

    #[test]
    fn bitvector_encoding_shrinks_same_cycle_options() {
        let spec = or_spec();
        let scalar = measure(&CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap());
        let packed = measure(&CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
        // o1's two time-0 usages pack into one check: 8 bytes saved.
        assert_eq!(scalar.total() - packed.total(), 8);
    }

    #[test]
    fn and_level_counts_unique_trees_once() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("r", 2).unwrap();
        let o1 = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let t1 = spec.add_or_tree(OrTree::new(vec![o1]));
        let t2 = spec.add_or_tree(OrTree::new(vec![o2]));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![t1, t2]));
        // Two classes share the same AND/OR tree.
        spec.add_class(
            "a",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.add_class(
            "b",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
        let report = measure(&compiled);
        // One AND node: 8 + 2*4 = 16 bytes, despite two referencing classes.
        assert_eq!(report.and_level_bytes, 16);
        assert_eq!(report.class_bytes, 16);
        assert_eq!(report.num_trees, 1);
    }

    #[test]
    fn shared_or_trees_are_counted_once() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("r").unwrap();
        let o = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o]));
        spec.add_class("a", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.add_class("b", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        let report = measure(&CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap());
        assert_eq!(report.num_or_trees, 1);
        // Both classes share one top-level tree.
        assert_eq!(report.num_trees, 1);
    }
}
