//! The mid-level machine-description representation (`MdesSpec`).
//!
//! An [`MdesSpec`] is what the high-level language front end produces and
//! what the transformation passes of the `mdes-opt` crate rewrite.  It holds
//! pools of reservation-table options, OR-trees and AND/OR-trees plus the
//! operation classes that reference them.  Sharing is *explicit*: two trees
//! share an option only if they reference the same [`OptionId`], exactly as
//! the paper's low-level representation shares only what the external MDES
//! specifies (Section 4).  The redundancy-elimination transformation later
//! merges structurally identical items.

use std::fmt;

use crate::error::MdesError;
use crate::resource::ResourcePool;
use crate::usage::ResourceUsage;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Returns the zero-based pool index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw pool index (tests / deserialization).
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a reservation-table option in an [`MdesSpec`].
    OptionId,
    "opt"
);
define_id!(
    /// Identifier of an OR-tree in an [`MdesSpec`].
    OrTreeId,
    "or"
);
define_id!(
    /// Identifier of an AND/OR-tree in an [`MdesSpec`].
    AndOrTreeId,
    "andor"
);
define_id!(
    /// Identifier of an operation class in an [`MdesSpec`].
    ClassId,
    "class"
);

/// One reservation-table option: a set of resource usages that together
/// form one way an operation may use the processor (Figure 1 of the paper).
///
/// The order of `usages` is significant: it is the order in which the
/// low-level checker probes the resource-usage map, which the check-ordering
/// transformation (Section 7) tunes so time zero is probed first.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TableOption {
    /// The usages, in check order.
    pub usages: Vec<ResourceUsage>,
}

impl TableOption {
    /// Creates an option from usages, preserving their order.
    pub fn new(usages: Vec<ResourceUsage>) -> TableOption {
        TableOption { usages }
    }

    /// Returns a canonical (sorted, deduplicated) copy of the usages.
    ///
    /// Two options are *semantically* equal when their canonical usages
    /// match, even if check order differs.
    pub fn canonical_usages(&self) -> Vec<ResourceUsage> {
        let mut v = self.usages.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True if this option's usages are a (non-strict) superset of
    /// `other`'s.
    ///
    /// Used by dominated-option elimination (Section 5): an option that
    /// uses a superset of a higher-priority option's resources can never
    /// be selected.
    pub fn covers(&self, other: &TableOption) -> bool {
        let mine = self.canonical_usages();
        other
            .canonical_usages()
            .iter()
            .all(|u| mine.binary_search(u).is_ok())
    }

    /// The earliest usage time in the option, if any usages exist.
    pub fn earliest_time(&self) -> Option<i32> {
        self.usages.iter().map(|u| u.time).min()
    }

    /// The latest usage time in the option, if any usages exist.
    pub fn latest_time(&self) -> Option<i32> {
        self.usages.iter().map(|u| u.time).max()
    }
}

/// A prioritized list of reservation-table options (Figure 3a).
///
/// Option priority is list order: the checker tries `options[0]` first and
/// selects the first whose resources are all available.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrTree {
    /// Optional name from the high-level description (for diagnostics and
    /// pretty-printing; does not affect semantics).
    pub name: Option<String>,
    /// Options in priority order (highest priority first).
    pub options: Vec<OptionId>,
}

impl OrTree {
    /// Creates an anonymous OR-tree.
    pub fn new(options: Vec<OptionId>) -> OrTree {
        OrTree {
            name: None,
            options,
        }
    }

    /// Creates a named OR-tree.
    pub fn named(name: impl Into<String>, options: Vec<OptionId>) -> OrTree {
        OrTree {
            name: Some(name.into()),
            options,
        }
    }
}

/// An AND of OR-trees (Figure 3b): the operation needs one available option
/// from *every* sub-OR-tree.
///
/// The order of `or_trees` is the check order, which the conflict-detection
/// ordering transformation (Section 8) tunes so the tree most likely to
/// conflict is checked first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AndOrTree {
    /// Optional name from the high-level description.
    pub name: Option<String>,
    /// Sub-OR-trees, in check order.
    pub or_trees: Vec<OrTreeId>,
}

impl AndOrTree {
    /// Creates an anonymous AND/OR-tree.
    pub fn new(or_trees: Vec<OrTreeId>) -> AndOrTree {
        AndOrTree {
            name: None,
            or_trees,
        }
    }

    /// Creates a named AND/OR-tree.
    pub fn named(name: impl Into<String>, or_trees: Vec<OrTreeId>) -> AndOrTree {
        AndOrTree {
            name: Some(name.into()),
            or_trees,
        }
    }
}

/// The resource constraint of an operation class: either a traditional
/// OR-tree of full reservation tables, or an AND/OR-tree.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// Traditional representation (Section 2).
    Or(OrTreeId),
    /// The paper's proposed representation (Section 3).
    AndOr(AndOrTreeId),
}

/// Operation latency information attached to a class.
///
/// `dest` is the cycle (relative to issue) at which the result is
/// written; `src` is the cycle at which source operands are read (most
/// machines read at issue, 0; a late-reading operand lets a consumer
/// issue before its producer completes); `mem` is the latency seen by a
/// dependent memory operation (models address-generation interlocks such
/// as the SuperSPARC's).  A flow dependence therefore requires
/// `consumer.issue + consumer.src ≥ producer.issue + producer.dest`,
/// i.e. an edge latency of `producer.dest − consumer.src` (clamped
/// non-negative) — the operand read/write-time model of MDES
/// infrastructures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Latency {
    /// Result-write time in cycles after issue.
    pub dest: i32,
    /// Source-operand read time in cycles after issue (usually 0).
    pub src: i32,
    /// Memory-dependence latency in cycles.
    pub mem: i32,
}

impl Latency {
    /// Creates a latency record with `mem` equal to `dest` and sources
    /// read at issue.
    pub fn new(dest: i32) -> Latency {
        Latency {
            dest,
            src: 0,
            mem: dest,
        }
    }

    /// Creates a latency record with a distinct memory-dependence latency.
    pub fn with_mem(dest: i32, mem: i32) -> Latency {
        Latency { dest, src: 0, mem }
    }

    /// Sets the source-operand read time.
    pub fn with_src(mut self, src: i32) -> Latency {
        self.src = src;
        self
    }
}

impl Default for Latency {
    fn default() -> Latency {
        Latency::new(1)
    }
}

/// Semantic category flags for an operation class.
///
/// The scheduler substrate uses these for dependence construction (memory
/// and control dependences); they do not affect resource checking.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct OpFlags {
    /// Reads memory.
    pub load: bool,
    /// Writes memory.
    pub store: bool,
    /// Transfers control; acts as a scheduling barrier at block end.
    pub branch: bool,
    /// Must execute alone (serializing operation).
    pub serial: bool,
}

impl OpFlags {
    /// Flags for a plain register-to-register operation.
    pub fn none() -> OpFlags {
        OpFlags::default()
    }

    /// Flags for a memory load.
    pub fn load() -> OpFlags {
        OpFlags {
            load: true,
            ..OpFlags::default()
        }
    }

    /// Flags for a memory store.
    pub fn store() -> OpFlags {
        OpFlags {
            store: true,
            ..OpFlags::default()
        }
    }

    /// Flags for a branch.
    pub fn branch() -> OpFlags {
        OpFlags {
            branch: true,
            ..OpFlags::default()
        }
    }

    /// Flags for a serializing operation.
    pub fn serial() -> OpFlags {
        OpFlags {
            serial: true,
            branch: true,
            ..OpFlags::default()
        }
    }

    /// True if the operation touches memory.
    pub fn is_mem(&self) -> bool {
        self.load || self.store
    }
}

/// An operation class: the unit at which the MDES maps operations to
/// resource constraints and latencies.
#[derive(Clone, Debug, PartialEq)]
pub struct OpClass {
    /// Unique class name (e.g. `"ialu_2src"`).
    pub name: String,
    /// The class's resource constraint.
    pub constraint: Constraint,
    /// Latency information.
    pub latency: Latency,
    /// Semantic flags.
    pub flags: OpFlags,
}

/// Report returned by [`MdesSpec::sweep_unreferenced`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Options removed because nothing referenced them.
    pub options_removed: usize,
    /// OR-trees removed because nothing referenced them.
    pub or_trees_removed: usize,
    /// AND/OR-trees removed because nothing referenced them.
    pub and_or_trees_removed: usize,
}

impl SweepReport {
    /// Total items removed.
    pub fn total(&self) -> usize {
        self.options_removed + self.or_trees_removed + self.and_or_trees_removed
    }
}

/// The complete mid-level machine description.
///
/// # Examples
///
/// Building the SuperSPARC integer-load AND/OR-tree of Figure 3b:
///
/// ```
/// use mdes_core::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
/// use mdes_core::usage::ResourceUsage;
///
/// # fn main() -> Result<(), mdes_core::MdesError> {
/// let mut spec = MdesSpec::new();
/// let m = spec.resources_mut().add("M")?;
/// let decoders = spec.resources_mut().add_indexed("Decoder", 3)?;
/// let wrpts = spec.resources_mut().add_indexed("WrPt", 2)?;
///
/// let use_m = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
/// let m_tree = spec.add_or_tree(OrTree::named("UseM", vec![use_m]));
///
/// let wp_opts = wrpts.iter()
///     .map(|&r| spec.add_option(TableOption::new(vec![ResourceUsage::new(r, 1)])))
///     .collect();
/// let wp_tree = spec.add_or_tree(OrTree::named("AnyWrPt", wp_opts));
///
/// let dec_opts = decoders.iter()
///     .map(|&r| spec.add_option(TableOption::new(vec![ResourceUsage::new(r, -1)])))
///     .collect();
/// let dec_tree = spec.add_or_tree(OrTree::named("AnyDecoder", dec_opts));
///
/// let load = spec.add_and_or_tree(AndOrTree::named("Load", vec![m_tree, wp_tree, dec_tree]));
/// spec.add_class("load", Constraint::AndOr(load), Latency::new(1), OpFlags::load())?;
/// spec.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MdesSpec {
    resources: ResourcePool,
    options: Vec<TableOption>,
    or_trees: Vec<OrTree>,
    and_or_trees: Vec<AndOrTree>,
    classes: Vec<OpClass>,
    /// Opcode vocabulary: mnemonic → class, in declaration order.
    opcodes: Vec<(String, ClassId)>,
    /// Bypass/forwarding latency exceptions: (producer, consumer,
    /// flow latency overriding the default `dest − src` computation).
    bypasses: Vec<(ClassId, ClassId, i32)>,
}

impl MdesSpec {
    /// Creates an empty machine description.
    pub fn new() -> MdesSpec {
        MdesSpec::default()
    }

    /// Shared access to the resource pool.
    pub fn resources(&self) -> &ResourcePool {
        &self.resources
    }

    /// Mutable access to the resource pool (declaration phase).
    pub fn resources_mut(&mut self) -> &mut ResourcePool {
        &mut self.resources
    }

    /// Adds a reservation-table option and returns its id.
    pub fn add_option(&mut self, option: TableOption) -> OptionId {
        let id = OptionId(self.options.len() as u32);
        self.options.push(option);
        id
    }

    /// Adds an OR-tree and returns its id.
    pub fn add_or_tree(&mut self, tree: OrTree) -> OrTreeId {
        let id = OrTreeId(self.or_trees.len() as u32);
        self.or_trees.push(tree);
        id
    }

    /// Adds an AND/OR-tree and returns its id.
    pub fn add_and_or_tree(&mut self, tree: AndOrTree) -> AndOrTreeId {
        let id = AndOrTreeId(self.and_or_trees.len() as u32);
        self.and_or_trees.push(tree);
        id
    }

    /// Declares an operation class.
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::DuplicateClass`] if a class of the same name
    /// already exists.
    pub fn add_class(
        &mut self,
        name: impl Into<String>,
        constraint: Constraint,
        latency: Latency,
        flags: OpFlags,
    ) -> Result<ClassId, MdesError> {
        let name = name.into();
        if self.classes.iter().any(|c| c.name == name) {
            return Err(MdesError::DuplicateClass(name));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(OpClass {
            name,
            constraint,
            latency,
            flags,
        });
        Ok(id)
    }

    /// Returns the option for `id`.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different spec.
    pub fn option(&self, id: OptionId) -> &TableOption {
        &self.options[id.index()]
    }

    /// Mutable access to the option for `id`.
    pub fn option_mut(&mut self, id: OptionId) -> &mut TableOption {
        &mut self.options[id.index()]
    }

    /// Returns the OR-tree for `id`.
    pub fn or_tree(&self, id: OrTreeId) -> &OrTree {
        &self.or_trees[id.index()]
    }

    /// Mutable access to the OR-tree for `id`.
    pub fn or_tree_mut(&mut self, id: OrTreeId) -> &mut OrTree {
        &mut self.or_trees[id.index()]
    }

    /// Returns the AND/OR-tree for `id`.
    pub fn and_or_tree(&self, id: AndOrTreeId) -> &AndOrTree {
        &self.and_or_trees[id.index()]
    }

    /// Mutable access to the AND/OR-tree for `id`.
    pub fn and_or_tree_mut(&mut self, id: AndOrTreeId) -> &mut AndOrTree {
        &mut self.and_or_trees[id.index()]
    }

    /// Returns the class for `id`.
    pub fn class(&self, id: ClassId) -> &OpClass {
        &self.classes[id.index()]
    }

    /// Mutable access to the class for `id`.
    pub fn class_mut(&mut self, id: ClassId) -> &mut OpClass {
        &mut self.classes[id.index()]
    }

    /// Declares an opcode mapping to a class — the paper's footnote-1
    /// "mapping of this information to specific operations based on
    /// their opcode".
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::DuplicateClass`] (reusing the class-name
    /// namespace) if the mnemonic is already mapped, or
    /// [`MdesError::UnknownClass`] if the class id is out of range.
    pub fn add_opcode(
        &mut self,
        mnemonic: impl Into<String>,
        class: ClassId,
    ) -> Result<(), MdesError> {
        let mnemonic = mnemonic.into();
        if class.index() >= self.classes.len() {
            return Err(MdesError::UnknownClass(mnemonic));
        }
        if self.opcodes.iter().any(|(m, _)| *m == mnemonic) {
            return Err(MdesError::DuplicateClass(mnemonic));
        }
        self.opcodes.push((mnemonic, class));
        Ok(())
    }

    /// The opcode vocabulary in declaration order.
    pub fn opcodes(&self) -> &[(String, ClassId)] {
        &self.opcodes
    }

    /// Declares a bypass/forwarding latency exception: a flow dependence
    /// from `producer` to `consumer` costs exactly `latency` issue
    /// cycles instead of the default `producer.dest − consumer.src`
    /// (the paper's footnote-1 "modeling of bypassing and forwarding
    /// effects").
    ///
    /// # Errors
    ///
    /// Returns [`MdesError::UnknownClass`] if either class id is out of
    /// range; a later declaration for the same pair replaces the
    /// earlier one.
    pub fn add_bypass(
        &mut self,
        producer: ClassId,
        consumer: ClassId,
        latency: i32,
    ) -> Result<(), MdesError> {
        for id in [producer, consumer] {
            if id.index() >= self.classes.len() {
                return Err(MdesError::UnknownClass(format!("{id:?}")));
            }
        }
        if let Some(entry) = self
            .bypasses
            .iter_mut()
            .find(|(p, c, _)| *p == producer && *c == consumer)
        {
            entry.2 = latency;
        } else {
            self.bypasses.push((producer, consumer, latency));
        }
        Ok(())
    }

    /// All bypass exceptions in declaration order.
    pub fn bypasses(&self) -> &[(ClassId, ClassId, i32)] {
        &self.bypasses
    }

    /// Resolves a mnemonic to its class.
    pub fn opcode_class(&self, mnemonic: &str) -> Option<ClassId> {
        self.opcodes
            .iter()
            .find(|(m, _)| m == mnemonic)
            .map(|(_, c)| *c)
    }

    /// Mnemonics mapped to `class`, in declaration order.
    pub fn opcodes_of_class(&self, class: ClassId) -> Vec<&str> {
        self.opcodes
            .iter()
            .filter(|(_, c)| *c == class)
            .map(|(m, _)| m.as_str())
            .collect()
    }

    /// Looks an operation class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Number of options in the pool (including unreferenced ones).
    pub fn num_options(&self) -> usize {
        self.options.len()
    }

    /// Number of OR-trees in the pool.
    pub fn num_or_trees(&self) -> usize {
        self.or_trees.len()
    }

    /// Number of AND/OR-trees in the pool.
    pub fn num_and_or_trees(&self) -> usize {
        self.and_or_trees.len()
    }

    /// Number of operation classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Iterates over option ids.
    pub fn option_ids(&self) -> impl Iterator<Item = OptionId> {
        (0..self.options.len() as u32).map(OptionId)
    }

    /// Iterates over OR-tree ids.
    pub fn or_tree_ids(&self) -> impl Iterator<Item = OrTreeId> {
        (0..self.or_trees.len() as u32).map(OrTreeId)
    }

    /// Iterates over AND/OR-tree ids.
    pub fn and_or_tree_ids(&self) -> impl Iterator<Item = AndOrTreeId> {
        (0..self.and_or_trees.len() as u32).map(AndOrTreeId)
    }

    /// Iterates over class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Rewrites every option reference through `f`.
    pub fn rewrite_option_refs(&mut self, mut f: impl FnMut(OptionId) -> OptionId) {
        for tree in &mut self.or_trees {
            for opt in &mut tree.options {
                *opt = f(*opt);
            }
        }
    }

    /// Rewrites every OR-tree reference through `f`.
    pub fn rewrite_or_tree_refs(&mut self, mut f: impl FnMut(OrTreeId) -> OrTreeId) {
        for tree in &mut self.and_or_trees {
            for or in &mut tree.or_trees {
                *or = f(*or);
            }
        }
        for class in &mut self.classes {
            if let Constraint::Or(id) = &mut class.constraint {
                *id = f(*id);
            }
        }
    }

    /// Rewrites every AND/OR-tree reference through `f`.
    pub fn rewrite_and_or_tree_refs(&mut self, mut f: impl FnMut(AndOrTreeId) -> AndOrTreeId) {
        for class in &mut self.classes {
            if let Constraint::AndOr(id) = &mut class.constraint {
                *id = f(*id);
            }
        }
    }

    /// Removes every option, OR-tree and AND/OR-tree not reachable from an
    /// operation class, compacting the pools and fixing references.
    ///
    /// This is the paper's adaptation of dead-code removal (Section 5).
    ///
    /// # Examples
    ///
    /// ```
    /// use mdes_core::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    /// use mdes_core::ResourceUsage;
    ///
    /// # fn main() -> Result<(), mdes_core::MdesError> {
    /// let mut spec = MdesSpec::new();
    /// let r = spec.resources_mut().add("R")?;
    /// let live = spec.add_option(TableOption::new(vec![ResourceUsage::new(r, 0)]));
    /// let tree = spec.add_or_tree(OrTree::new(vec![live]));
    /// spec.add_class("alu", Constraint::Or(tree), Latency::new(1), OpFlags::none())?;
    /// // An orphaned option nothing references.
    /// spec.add_option(TableOption::new(vec![ResourceUsage::new(r, 5)]));
    ///
    /// let report = spec.sweep_unreferenced();
    /// assert_eq!(report.options_removed, 1);
    /// assert_eq!(spec.num_options(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sweep_unreferenced(&mut self) -> SweepReport {
        let mut live_andor = vec![false; self.and_or_trees.len()];
        let mut live_or = vec![false; self.or_trees.len()];
        let mut live_opt = vec![false; self.options.len()];

        for class in &self.classes {
            match class.constraint {
                Constraint::Or(id) => live_or[id.index()] = true,
                Constraint::AndOr(id) => live_andor[id.index()] = true,
            }
        }
        for (i, tree) in self.and_or_trees.iter().enumerate() {
            if live_andor[i] {
                for or in &tree.or_trees {
                    live_or[or.index()] = true;
                }
            }
        }
        for (i, tree) in self.or_trees.iter().enumerate() {
            if live_or[i] {
                for opt in &tree.options {
                    live_opt[opt.index()] = true;
                }
            }
        }

        let (opt_map, options_removed) = compact(&mut self.options, &live_opt);
        let (or_map, or_trees_removed) = compact(&mut self.or_trees, &live_or);
        let (andor_map, and_or_trees_removed) = compact(&mut self.and_or_trees, &live_andor);

        self.rewrite_option_refs(|id| OptionId(opt_map[id.index()]));
        self.rewrite_or_tree_refs(|id| OrTreeId(or_map[id.index()]));
        self.rewrite_and_or_tree_refs(|id| AndOrTreeId(andor_map[id.index()]));

        SweepReport {
            options_removed,
            or_trees_removed,
            and_or_trees_removed,
        }
    }

    /// Checks internal consistency: every reference in range, no empty
    /// options or trees, at least one class.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), MdesError> {
        if self.classes.is_empty() {
            return Err(MdesError::NoClasses);
        }
        for option in &self.options {
            if option.usages.is_empty() {
                return Err(MdesError::EmptyOption);
            }
            for usage in &option.usages {
                self.resources.check(usage.resource)?;
            }
        }
        for tree in &self.or_trees {
            if tree.options.is_empty() {
                return Err(MdesError::EmptyOrTree);
            }
            for opt in &tree.options {
                if opt.index() >= self.options.len() {
                    return Err(MdesError::UnknownOption(opt.0));
                }
            }
        }
        for tree in &self.and_or_trees {
            if tree.or_trees.is_empty() {
                return Err(MdesError::EmptyAndOrTree);
            }
            for or in &tree.or_trees {
                if or.index() >= self.or_trees.len() {
                    return Err(MdesError::UnknownOrTree(or.0));
                }
            }
        }
        for class in &self.classes {
            match class.constraint {
                Constraint::Or(id) => {
                    if id.index() >= self.or_trees.len() {
                        return Err(MdesError::UnknownOrTree(id.0));
                    }
                }
                Constraint::AndOr(id) => {
                    if id.index() >= self.and_or_trees.len() {
                        return Err(MdesError::UnknownAndOrTree(id.0));
                    }
                }
            }
        }
        Ok(())
    }

    /// The number of OR-trees referenced (directly or via AND/OR-trees) by
    /// each OR-tree id; used by the conflict-detection sort's "shared by
    /// most AND/OR-trees" criterion.
    pub fn or_tree_share_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.or_trees.len()];
        for tree in &self.and_or_trees {
            for or in &tree.or_trees {
                counts[or.index()] += 1;
            }
        }
        for class in &self.classes {
            if let Constraint::Or(id) = class.constraint {
                counts[id.index()] += 1;
            }
        }
        counts
    }

    /// Total number of reservation-table options reachable from `class`,
    /// counting the cross product for AND/OR constraints.
    ///
    /// This is the "Number of Options" column of Tables 1–4.
    ///
    /// # Examples
    ///
    /// ```
    /// // The paper's Figure 1: 1 memory unit x 2 write ports x 3
    /// // decoders = six reservation tables.
    /// let spec = mdes_lang::compile("
    ///     resource Decoder[3];
    ///     resource WrPt[2];
    ///     resource M;
    ///     or_tree UseM   = first_of({ M @ 0 });
    ///     or_tree AnyWr  = first_of(for w in 0..2: { WrPt[w] @ 1 });
    ///     or_tree AnyDec = first_of(for d in 0..3: { Decoder[d] @ -1 });
    ///     and_or_tree Load = all_of(UseM, AnyWr, AnyDec);
    ///     class load { constraint = Load; flags = load; }
    /// ").unwrap();
    /// let load = spec.class_by_name("load").unwrap();
    /// assert_eq!(spec.class_option_count(load), 6);
    /// ```
    pub fn class_option_count(&self, id: ClassId) -> usize {
        match self.class(id).constraint {
            Constraint::Or(or) => self.or_tree(or).options.len(),
            Constraint::AndOr(andor) => self
                .and_or_tree(andor)
                .or_trees
                .iter()
                .map(|or| self.or_tree(*or).options.len())
                .product(),
        }
    }
}

/// Compacts `items`, keeping only entries marked live, and returns the
/// old-index → new-index map plus the number removed.  Dead slots map to
/// `u32::MAX` (never dereferenced because nothing live points at them).
fn compact<T>(items: &mut Vec<T>, live: &[bool]) -> (Vec<u32>, usize) {
    let mut map = vec![u32::MAX; items.len()];
    let mut next = 0u32;
    for (i, &alive) in live.iter().enumerate() {
        if alive {
            map[i] = next;
            next += 1;
        }
    }
    let removed = items.len() - next as usize;
    let mut index = 0usize;
    items.retain(|_| {
        let keep = live[index];
        index += 1;
        keep
    });
    (map, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceId;

    fn usage(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn small_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("a").unwrap();
        spec.resources_mut().add("b").unwrap();
        let o1 = spec.add_option(TableOption::new(vec![usage(0, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![usage(1, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn build_and_validate_round_trip() {
        let spec = small_spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.num_options(), 2);
        assert_eq!(spec.num_or_trees(), 1);
        assert_eq!(spec.num_classes(), 1);
        let class = spec.class_by_name("op").unwrap();
        assert_eq!(spec.class(class).name, "op");
        assert_eq!(spec.class_option_count(class), 2);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut spec = small_spec();
        let tree = OrTreeId::from_index(0);
        let err = spec
            .add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap_err();
        assert_eq!(err, MdesError::DuplicateClass("op".into()));
    }

    #[test]
    fn validate_rejects_empty_option() {
        let mut spec = small_spec();
        let empty = spec.add_option(TableOption::new(vec![]));
        spec.or_tree_mut(OrTreeId::from_index(0))
            .options
            .push(empty);
        assert_eq!(spec.validate(), Err(MdesError::EmptyOption));
    }

    #[test]
    fn validate_rejects_dangling_option_ref() {
        let mut spec = small_spec();
        spec.or_tree_mut(OrTreeId::from_index(0))
            .options
            .push(OptionId::from_index(99));
        assert_eq!(spec.validate(), Err(MdesError::UnknownOption(99)));
    }

    #[test]
    fn validate_rejects_unknown_resource_in_usage() {
        let mut spec = small_spec();
        spec.option_mut(OptionId::from_index(0)).usages[0] = usage(9, 0);
        assert_eq!(spec.validate(), Err(MdesError::UnknownResource(9)));
    }

    #[test]
    fn validate_requires_a_class() {
        let spec = MdesSpec::new();
        assert_eq!(spec.validate(), Err(MdesError::NoClasses));
    }

    #[test]
    fn covers_detects_identical_and_superset_options() {
        let a = TableOption::new(vec![usage(0, 0), usage(1, 1)]);
        let b = TableOption::new(vec![usage(1, 1), usage(0, 0)]); // same set, other order
        let c = TableOption::new(vec![usage(0, 0)]);
        assert!(a.covers(&b));
        assert!(b.covers(&a));
        assert!(a.covers(&c));
        assert!(!c.covers(&a));
    }

    #[test]
    fn sweep_removes_dead_items_and_fixes_refs() {
        let mut spec = small_spec();
        // Dead option, dead OR-tree, dead AND/OR-tree.
        let dead_opt = spec.add_option(TableOption::new(vec![usage(0, 5)]));
        let dead_or = spec.add_or_tree(OrTree::new(vec![dead_opt]));
        spec.add_and_or_tree(AndOrTree::new(vec![dead_or]));

        let report = spec.sweep_unreferenced();
        assert_eq!(report.options_removed, 1);
        assert_eq!(report.or_trees_removed, 1);
        assert_eq!(report.and_or_trees_removed, 1);
        assert_eq!(report.total(), 3);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.num_options(), 2);
    }

    #[test]
    fn sweep_keeps_items_reachable_via_and_or_trees() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("a").unwrap();
        let opt = spec.add_option(TableOption::new(vec![usage(0, 0)]));
        let or = spec.add_or_tree(OrTree::new(vec![opt]));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![or]));
        spec.add_class(
            "op",
            Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        let report = spec.sweep_unreferenced();
        assert_eq!(report.total(), 0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn sweep_compacts_ids_preserving_order() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("a").unwrap();
        let dead = spec.add_option(TableOption::new(vec![usage(0, 9)]));
        let live = spec.add_option(TableOption::new(vec![usage(0, 0)]));
        assert_ne!(dead, live);
        let or = spec.add_or_tree(OrTree::new(vec![live]));
        spec.add_class("op", Constraint::Or(or), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.sweep_unreferenced();
        // The live option now has index 0 and the tree points at it.
        assert_eq!(spec.num_options(), 1);
        assert_eq!(
            spec.or_tree(OrTreeId::from_index(0)).options,
            vec![OptionId::from_index(0)]
        );
        assert_eq!(
            spec.option(OptionId::from_index(0)).usages,
            vec![usage(0, 0)]
        );
    }

    #[test]
    fn class_option_count_multiplies_and_or_branches() {
        let mut spec = MdesSpec::new();
        for name in ["a", "b", "c"] {
            spec.resources_mut().add(name).unwrap();
        }
        // 2 options x 3 options = 6 combinations.
        let o = |spec: &mut MdesSpec, r: usize, t: i32| {
            spec.add_option(TableOption::new(vec![usage(r, t)]))
        };
        let a0 = o(&mut spec, 0, 0);
        let a1 = o(&mut spec, 1, 0);
        let b0 = o(&mut spec, 2, 0);
        let b1 = o(&mut spec, 2, 1);
        let b2 = o(&mut spec, 2, 2);
        let t1 = spec.add_or_tree(OrTree::new(vec![a0, a1]));
        let t2 = spec.add_or_tree(OrTree::new(vec![b0, b1, b2]));
        let andor = spec.add_and_or_tree(AndOrTree::new(vec![t1, t2]));
        let class = spec
            .add_class(
                "op",
                Constraint::AndOr(andor),
                Latency::new(1),
                OpFlags::none(),
            )
            .unwrap();
        assert_eq!(spec.class_option_count(class), 6);
    }

    #[test]
    fn share_counts_count_and_or_membership_and_class_refs() {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("a").unwrap();
        let opt = spec.add_option(TableOption::new(vec![usage(0, 0)]));
        let shared = spec.add_or_tree(OrTree::new(vec![opt]));
        let solo = spec.add_or_tree(OrTree::new(vec![opt]));
        let t1 = spec.add_and_or_tree(AndOrTree::new(vec![shared]));
        let t2 = spec.add_and_or_tree(AndOrTree::new(vec![shared, solo]));
        spec.add_class("x", Constraint::AndOr(t1), Latency::new(1), OpFlags::none())
            .unwrap();
        spec.add_class("y", Constraint::AndOr(t2), Latency::new(1), OpFlags::none())
            .unwrap();
        let counts = spec.or_tree_share_counts();
        assert_eq!(counts[shared.index()], 2);
        assert_eq!(counts[solo.index()], 1);
    }

    #[test]
    fn earliest_and_latest_times() {
        let opt = TableOption::new(vec![usage(0, -2), usage(1, 3)]);
        assert_eq!(opt.earliest_time(), Some(-2));
        assert_eq!(opt.latest_time(), Some(3));
        assert_eq!(TableOption::new(vec![]).earliest_time(), None);
    }
}
