//! Deterministic differential probe engine.
//!
//! The optimization pipeline's correctness claim is behavioural: an
//! optimized description must answer every scheduler query exactly as the
//! unoptimized one would (Section 4 — "the exact same schedule is produced
//! in each case").  This module turns that claim into an executable
//! oracle: a seeded generator produces random reservation / release /
//! conflict-query sequences, [`run_sequence`] replays one sequence against
//! a compiled description through the [`Checker`], and the resulting
//! outcome *trace* can be compared across two descriptions.
//!
//! Everything here is bit-reproducible: the same [`ProbeConfig`] and class
//! count always generate the same sequences, so a failing probe recorded
//! in a guard incident can be replayed from its seed alone.

use crate::compile::{Checker, Choice, CompiledMdes};
use crate::rumap::RuMap;
use crate::spec::ClassId;
use crate::stats::CheckStats;
use std::fmt;

/// PCG-XSH-RR 64/32 (O'Neill 2014), embedded so probe streams never drift
/// with an external RNG crate's major versions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeRng {
    state: u64,
    inc: u64,
}

impl ProbeRng {
    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> ProbeRng {
        let mut rng = ProbeRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(6364136223846793005).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform value in `0..n`; returns 0 for an empty range.
    pub fn gen_range(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        // Lemire-style rejection to avoid modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let value = self.next_u32();
            let product = u64::from(value) * u64::from(n);
            if (product as u32) >= threshold {
                return (product >> 32) as u32;
            }
        }
    }
}

/// One step of a probe sequence.
///
/// `class` is a class *index* (not a [`ClassId`]) so an op is plain data
/// that replays identically against any description with the same class
/// list — which every pipeline stage preserves.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProbeOp {
    /// Try to reserve one operation of class `class` issued at `time`.
    Reserve {
        /// Class index into the compiled class table.
        class: u32,
        /// Issue cycle.
        time: i32,
    },
    /// Ask whether `class` could issue at `time` without reserving
    /// (a pure conflict query through [`Checker::can_reserve`]).
    Query {
        /// Class index into the compiled class table.
        class: u32,
        /// Issue cycle.
        time: i32,
    },
    /// Release the `slot % held`-th currently held reservation
    /// (unscheduling); a no-op recorded as `false` when nothing is held.
    Release {
        /// Selector into the held-reservation list.
        slot: u32,
    },
}

impl fmt::Display for ProbeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeOp::Reserve { class, time } => write!(f, "reserve c{class}@{time}"),
            ProbeOp::Query { class, time } => write!(f, "query c{class}@{time}"),
            ProbeOp::Release { slot } => write!(f, "release #{slot}"),
        }
    }
}

/// Parameters of the probe generator.  Two runs with equal configs and
/// class counts produce identical sequences.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Master seed; each sequence derives its own stream from it.
    pub seed: u64,
    /// Number of independent sequences.
    pub sequences: u32,
    /// Operations per sequence.
    pub ops_per_sequence: u32,
    /// Issue times are drawn from `0..window`.  A small window forces
    /// resource contention, which is what exposes priority / timing bugs.
    pub window: i32,
}

impl Default for ProbeConfig {
    fn default() -> ProbeConfig {
        ProbeConfig {
            seed: 0x4d44_4553, // "MDES"
            sequences: 48,
            ops_per_sequence: 32,
            window: 4,
        }
    }
}

/// Generates the probe sequences for a machine with `num_classes` classes.
///
/// Roughly 5/8 of ops reserve, 2/8 query, 1/8 release — reservations
/// dominate so the RU map fills up and later outcomes depend on earlier
/// selections (the property that makes priority reorderings observable).
pub fn generate_sequences(config: &ProbeConfig, num_classes: usize) -> Vec<Vec<ProbeOp>> {
    if num_classes == 0 || config.window <= 0 {
        return Vec::new();
    }
    let classes = num_classes as u32;
    let window = config.window as u32;
    (0..config.sequences)
        .map(|s| {
            let mut rng = ProbeRng::new(config.seed, u64::from(s) + 1);
            (0..config.ops_per_sequence)
                .map(|_| {
                    let class = rng.gen_range(classes);
                    let time = rng.gen_range(window) as i32;
                    match rng.gen_range(8) {
                        0..=4 => ProbeOp::Reserve { class, time },
                        5 | 6 => ProbeOp::Query { class, time },
                        _ => ProbeOp::Release {
                            slot: rng.next_u32(),
                        },
                    }
                })
                .collect()
        })
        .collect()
}

/// Replays one sequence against `mdes` and returns its outcome trace:
/// one boolean per op (reservation/query success, or "released anything").
///
/// Class indices are reduced modulo the class count, so a sequence is
/// total over any non-empty description.
pub fn run_sequence(mdes: &CompiledMdes, ops: &[ProbeOp]) -> Vec<bool> {
    let checker = Checker::new(mdes);
    let num_classes = mdes.classes().len();
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut held: Vec<Choice> = Vec::new();
    let mut trace = Vec::with_capacity(ops.len());
    if num_classes == 0 {
        trace.resize(ops.len(), false);
        return trace;
    }
    for op in ops {
        let outcome = match *op {
            ProbeOp::Reserve { class, time } => {
                let class = ClassId::from_index(class as usize % num_classes);
                match checker.try_reserve(&mut ru, class, time, &mut stats) {
                    Some(choice) => {
                        held.push(choice);
                        true
                    }
                    None => false,
                }
            }
            ProbeOp::Query { class, time } => {
                let class = ClassId::from_index(class as usize % num_classes);
                checker.can_reserve(&mut ru, class, time, &mut stats)
            }
            ProbeOp::Release { slot } => {
                if held.is_empty() {
                    false
                } else {
                    let choice = held.remove(slot as usize % held.len());
                    checker.release(&mut ru, &choice);
                    true
                }
            }
        };
        trace.push(outcome);
    }
    trace
}

/// Where two descriptions first disagreed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the diverging sequence.
    pub sequence: usize,
    /// Index of the first op whose outcome differed.
    pub op_index: usize,
}

/// Replays every sequence against both descriptions and returns the first
/// point of disagreement, or `None` if the traces are identical.
pub fn find_divergence(
    a: &CompiledMdes,
    b: &CompiledMdes,
    sequences: &[Vec<ProbeOp>],
) -> Option<Divergence> {
    for (s, ops) in sequences.iter().enumerate() {
        let ta = run_sequence(a, ops);
        let tb = run_sequence(b, ops);
        if let Some(i) = ta.iter().zip(&tb).position(|(x, y)| x != y) {
            return Some(Divergence {
                sequence: s,
                op_index: i,
            });
        }
    }
    None
}

/// Shrinks a diverging sequence to a (locally) minimal one that still
/// distinguishes `a` from `b`: truncate past the first divergence, then
/// greedily drop every op whose removal preserves the disagreement.
///
/// Minimization is deterministic, so the op list stored in a guard
/// incident is reproducible from the seed alone.
pub fn minimize_sequence(a: &CompiledMdes, b: &CompiledMdes, ops: &[ProbeOp]) -> Vec<ProbeOp> {
    let diverges = |ops: &[ProbeOp]| run_sequence(a, ops) != run_sequence(b, ops);
    let mut current = ops.to_vec();
    if let Some(i) = run_sequence(a, &current)
        .iter()
        .zip(run_sequence(b, &current))
        .position(|(x, y)| *x != y)
    {
        current.truncate(i + 1);
    }
    if !diverges(&current) {
        return current; // not actually diverging; nothing to minimize
    }
    let mut i = 0;
    while i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        if diverges(&candidate) {
            current = candidate;
        } else {
            i += 1;
        }
    }
    current
}

/// Renders a sequence as a compact one-line script (`reserve c0@1;
/// release #2; …`) for incident records and diagnostics.
pub fn render_sequence(ops: &[ProbeOp]) -> String {
    let parts: Vec<String> = ops.iter().map(|op| op.to_string()).collect();
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::UsageEncoding;
    use crate::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn two_alu_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("ALU", 2).unwrap();
        let a0 = spec.add_option(TableOption::new(vec![ResourceUsage::new(
            crate::ResourceId::from_index(0),
            0,
        )]));
        let a1 = spec.add_option(TableOption::new(vec![ResourceUsage::new(
            crate::ResourceId::from_index(1),
            0,
        )]));
        let tree = spec.add_or_tree(OrTree::new(vec![a0, a1]));
        spec.add_class(
            "alu",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec
    }

    #[test]
    fn generation_is_deterministic() {
        let config = ProbeConfig::default();
        assert_eq!(
            generate_sequences(&config, 3),
            generate_sequences(&config, 3)
        );
        let other = ProbeConfig { seed: 99, ..config };
        assert_ne!(
            generate_sequences(&config, 3),
            generate_sequences(&other, 3)
        );
    }

    #[test]
    fn identical_specs_produce_identical_traces() {
        let spec = two_alu_spec();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let sequences = generate_sequences(&ProbeConfig::default(), spec.num_classes());
        assert!(find_divergence(&mdes, &mdes, &sequences).is_none());
    }

    #[test]
    fn dropped_usage_diverges_and_minimizes() {
        let spec = two_alu_spec();
        let mut broken = spec.clone();
        // Remove ALU[1]'s fallback option: only one op per cycle now fits.
        let tree = broken.or_tree_ids().next().unwrap();
        broken.or_tree_mut(tree).options.pop();

        let a = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let b = CompiledMdes::compile(&broken, UsageEncoding::BitVector).unwrap();
        let sequences = generate_sequences(&ProbeConfig::default(), spec.num_classes());
        let div = find_divergence(&a, &b, &sequences).expect("must diverge");
        let minimized = minimize_sequence(&a, &b, &sequences[div.sequence]);
        assert!(!minimized.is_empty());
        assert!(minimized.len() <= sequences[div.sequence].len());
        assert_ne!(run_sequence(&a, &minimized), run_sequence(&b, &minimized));
        // Two back-to-back reserves at one cycle is the canonical witness.
        assert!(
            minimized.len() <= 3,
            "minimized: {}",
            render_sequence(&minimized)
        );
    }

    #[test]
    fn release_slots_are_stable() {
        let spec = two_alu_spec();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let ops = vec![
            ProbeOp::Reserve { class: 0, time: 0 },
            ProbeOp::Reserve { class: 0, time: 0 },
            ProbeOp::Reserve { class: 0, time: 0 }, // both ALUs busy
            ProbeOp::Release { slot: 0 },
            ProbeOp::Reserve { class: 0, time: 0 }, // freed slot refills
        ];
        assert_eq!(
            run_sequence(&mdes, &ops),
            vec![true, true, false, true, true]
        );
    }

    #[test]
    fn empty_description_yields_all_false() {
        let spec = MdesSpec::new();
        // An empty spec fails validation, so build the compiled form the
        // long way round: zero classes means every op records `false`.
        let ops = vec![ProbeOp::Reserve { class: 0, time: 0 }];
        if let Ok(mdes) = CompiledMdes::compile(&spec, UsageEncoding::BitVector) {
            assert_eq!(run_sequence(&mdes, &ops), vec![false]);
        }
    }
}
