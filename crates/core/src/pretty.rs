//! ASCII rendering of reservation tables and constraint trees.
//!
//! Reproduces the visual content of the paper's Figures 1 and 3–6: each
//! reservation-table option renders as a cycle × resource grid with `X`
//! marking usages, and OR-/AND/OR-trees render as labeled lists of those
//! grids.

use std::fmt::Write as _;

use crate::spec::{AndOrTreeId, Constraint, MdesSpec, OptionId, OrTreeId};

/// Renders one reservation-table option as a grid.
///
/// Rows are cycles from the option's earliest to latest usage time; columns
/// are only the resources the option uses, in resource-pool order.
///
/// # Examples
///
/// ```
/// use mdes_core::pretty::reservation_table;
/// use mdes_core::spec::{MdesSpec, TableOption};
/// use mdes_core::usage::ResourceUsage;
///
/// # fn main() -> Result<(), mdes_core::MdesError> {
/// let mut spec = MdesSpec::new();
/// let m = spec.resources_mut().add("M")?;
/// let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
/// let grid = reservation_table(&spec, opt);
/// assert!(grid.contains("Cycle"));
/// assert!(grid.contains('X'));
/// # Ok(())
/// # }
/// ```
pub fn reservation_table(spec: &MdesSpec, id: OptionId) -> String {
    let option = spec.option(id);
    let (Some(lo), Some(hi)) = (option.earliest_time(), option.latest_time()) else {
        return "  (empty option)\n".to_string();
    };

    // Columns: resources used by this option, in pool order.
    let mut used: Vec<usize> = option.usages.iter().map(|u| u.resource.index()).collect();
    used.sort_unstable();
    used.dedup();

    let headers: Vec<&str> = used
        .iter()
        .map(|&r| {
            spec.resources()
                .name(crate::resource::ResourceId::from_index(r))
        })
        .collect();
    let widths: Vec<usize> = headers.iter().map(|h| h.len().max(3)).collect();

    let mut out = String::new();
    let _ = write!(out, "  {:>5} |", "Cycle");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:^w$} |");
    }
    out.push('\n');
    for cycle in lo..=hi {
        let _ = write!(out, "  {cycle:>5} |");
        for (&r, w) in used.iter().zip(&widths) {
            let mark = if option
                .usages
                .iter()
                .any(|u| u.resource.index() == r && u.time == cycle)
            {
                "X"
            } else {
                ""
            };
            let _ = write!(out, " {mark:^w$} |");
        }
        out.push('\n');
    }
    out
}

/// Renders an OR-tree: numbered options in priority order.
pub fn or_tree(spec: &MdesSpec, id: OrTreeId) -> String {
    let tree = spec.or_tree(id);
    let mut out = String::new();
    let label = tree.name.as_deref().unwrap_or("(anonymous)");
    let _ = writeln!(out, "OR-tree {label} ({} options)", tree.options.len());
    for (i, &opt) in tree.options.iter().enumerate() {
        let _ = writeln!(out, " Option {}:", i + 1);
        for line in reservation_table(spec, opt).lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// Renders an AND/OR-tree: its sub-OR-trees in check order, joined by AND.
pub fn and_or_tree(spec: &MdesSpec, id: AndOrTreeId) -> String {
    let tree = spec.and_or_tree(id);
    let mut out = String::new();
    let label = tree.name.as_deref().unwrap_or("(anonymous)");
    let _ = writeln!(
        out,
        "AND/OR-tree {label} ({} sub-OR-trees)",
        tree.or_trees.len()
    );
    for (i, &or) in tree.or_trees.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out, " AND");
        }
        for line in or_tree(spec, or).lines() {
            let _ = writeln!(out, " {line}");
        }
    }
    out
}

/// Renders the constraint of an operation class.
pub fn class_constraint(spec: &MdesSpec, name: &str) -> Option<String> {
    let id = spec.class_by_name(name)?;
    let rendered = match spec.class(id).constraint {
        Constraint::Or(or) => or_tree(spec, or),
        Constraint::AndOr(andor) => and_or_tree(spec, andor),
    };
    Some(format!("class {name}:\n{rendered}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceId;
    use crate::spec::{AndOrTree, Latency, OpFlags, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    fn demo_spec() -> (MdesSpec, OptionId, OrTreeId, AndOrTreeId) {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("Decoder[0]").unwrap();
        spec.resources_mut().add("M").unwrap();
        let o1 = spec.add_option(TableOption::new(vec![u(0, -1), u(1, 0)]));
        let o2 = spec.add_option(TableOption::new(vec![u(1, 0)]));
        let or = spec.add_or_tree(OrTree::named("Mem", vec![o1, o2]));
        let or2 = spec.add_or_tree(OrTree::new(vec![o2]));
        let andor = spec.add_and_or_tree(AndOrTree::named("Load", vec![or, or2]));
        spec.add_class(
            "load",
            crate::spec::Constraint::AndOr(andor),
            Latency::new(1),
            OpFlags::load(),
        )
        .unwrap();
        (spec, o1, or, andor)
    }

    #[test]
    fn grid_spans_cycle_range_and_marks_usages() {
        let (spec, opt, _, _) = demo_spec();
        let grid = reservation_table(&spec, opt);
        assert!(grid.contains("Decoder[0]"));
        assert!(grid.contains("M"));
        assert!(grid.contains("-1"));
        // Two usages → two X marks.
        assert_eq!(grid.matches('X').count(), 2);
    }

    #[test]
    fn or_tree_numbers_options_from_one() {
        let (spec, _, or, _) = demo_spec();
        let text = or_tree(&spec, or);
        assert!(text.contains("OR-tree Mem (2 options)"));
        assert!(text.contains("Option 1:"));
        assert!(text.contains("Option 2:"));
    }

    #[test]
    fn and_or_tree_joins_subtrees_with_and() {
        let (spec, _, _, andor) = demo_spec();
        let text = and_or_tree(&spec, andor);
        assert!(text.contains("AND/OR-tree Load (2 sub-OR-trees)"));
        assert_eq!(text.matches("\n AND\n").count(), 1);
        assert!(text.contains("(anonymous)"));
    }

    #[test]
    fn class_constraint_resolves_by_name() {
        let (spec, _, _, _) = demo_spec();
        assert!(class_constraint(&spec, "load")
            .unwrap()
            .contains("class load:"));
        assert!(class_constraint(&spec, "missing").is_none());
    }
}
