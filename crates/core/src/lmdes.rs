//! Binary serialization of the compiled low-level representation.
//!
//! The IMPACT infrastructure the paper builds on stores the customized
//! low-level MDES (`Lmdes`, reference \[4\]) in a file that the compiler
//! loads at start-up; the external representation fully specifies the
//! shared structure "in order to minimize the time required to load the
//! MDES into memory" (Section 4).  This module provides the analogous
//! artifact: a compact little-endian format that round-trips a
//! [`CompiledMdes`] exactly, preserving all sharing.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "LMDES\x02"            6 bytes
//! encoding                     u8 (0 = scalar, 1 = bit-vector)
//! num_resources                u32
//! min_time, max_time           i32, i32
//! num_options                  u32
//!   per option: num_checks u32, then (time i32, mask u64) pairs
//! num_or_trees                 u32
//!   per tree: num_options u32, then option indices u32
//! num_classes                  u32
//!   per class: name (len u32 + UTF-8), kind u8, and_or_index u32,
//!              latency (dest i32, src i32, mem i32), flags u8,
//!              num_or_trees u32, then tree indices u32
//! num_bypasses                 u32
//!   per bypass: producer u32, consumer u32, latency i32
//! ```

use crate::compile::{
    CompiledCheck, CompiledClass, CompiledMdes, CompiledOption, CompiledOrTree, ConstraintKind,
    UsageEncoding,
};
use crate::spec::{Latency, OpFlags};

/// Magic prefix identifying an LMDES file (includes a format version).
pub const MAGIC: &[u8; 6] = b"LMDES\x02";

/// Errors produced while decoding an LMDES image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmdesError {
    /// The magic prefix (or version) did not match.
    BadMagic,
    /// The image ended before the structure was complete.
    Truncated,
    /// A stored index points outside its pool.
    DanglingIndex,
    /// A field holds a value outside its domain.
    InvalidField(&'static str),
}

impl std::fmt::Display for LmdesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmdesError::BadMagic => write!(f, "not an LMDES image (bad magic or version)"),
            LmdesError::Truncated => write!(f, "unexpected end of LMDES image"),
            LmdesError::DanglingIndex => write!(f, "LMDES image contains a dangling index"),
            LmdesError::InvalidField(field) => write!(f, "invalid value in field `{field}`"),
        }
    }
}

impl std::error::Error for LmdesError {}

/// Serializes a compiled MDES to its binary image.
pub fn write(mdes: &CompiledMdes) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    out.push(match mdes.encoding() {
        UsageEncoding::Scalar => 0,
        UsageEncoding::BitVector => 1,
    });
    put_u32(&mut out, mdes.num_resources() as u32);
    put_i32(&mut out, mdes.min_check_time());
    put_i32(&mut out, mdes.max_check_time());

    put_u32(&mut out, mdes.num_options() as u32);
    for idx in 0..mdes.num_options() {
        let checks = mdes.option_checks(idx);
        put_u32(&mut out, checks.len() as u32);
        for check in checks {
            put_i32(&mut out, check.time);
            out.extend_from_slice(&check.mask.to_le_bytes());
        }
    }

    put_u32(&mut out, mdes.or_trees().len() as u32);
    for tree in mdes.or_trees() {
        put_u32(&mut out, tree.options.len() as u32);
        for &opt in &tree.options {
            put_u32(&mut out, opt);
        }
    }

    put_u32(&mut out, mdes.classes().len() as u32);
    for class in mdes.classes() {
        put_u32(&mut out, class.name.len() as u32);
        out.extend_from_slice(class.name.as_bytes());
        out.push(match class.kind {
            ConstraintKind::Or => 0,
            ConstraintKind::AndOr => 1,
        });
        put_u32(&mut out, class.and_or_index);
        put_i32(&mut out, class.latency.dest);
        put_i32(&mut out, class.latency.src);
        put_i32(&mut out, class.latency.mem);
        out.push(flags_byte(class.flags));
        put_u32(&mut out, class.or_trees.len() as u32);
        for &tree in &class.or_trees {
            put_u32(&mut out, tree);
        }
    }
    put_u32(&mut out, mdes.bypasses().len() as u32);
    for &(p, c, latency) in mdes.bypasses() {
        put_u32(&mut out, p);
        put_u32(&mut out, c);
        put_i32(&mut out, latency);
    }
    out
}

/// A validated, unmaterialized view of an LMDES image.
///
/// [`scan`] walks the whole image once — checking the magic, every
/// length field, every stored index, and every enumerated byte — while
/// allocating nothing.  A successful scan is therefore a proof of
/// structural validity: reload vetting and content-hash admission can
/// accept or reject an image on the scan alone, and only pay for
/// [`LmdesScan::materialize`] (the allocating decode) when the image is
/// actually promoted to serving.  The scan records where each section
/// starts so materialization seeks straight to the data instead of
/// re-deriving the layout.
#[derive(Debug, Clone, Copy)]
pub struct LmdesScan<'a> {
    bytes: &'a [u8],
    encoding: UsageEncoding,
    num_resources: usize,
    min_time: i32,
    max_time: i32,
    num_options: usize,
    options_at: usize,
    num_or_trees: usize,
    or_trees_at: usize,
    num_classes: usize,
    classes_at: usize,
    num_bypasses: usize,
    bypasses_at: usize,
}

impl<'a> LmdesScan<'a> {
    /// The usage encoding the image was compiled with.
    pub fn encoding(&self) -> UsageEncoding {
        self.encoding
    }

    /// Number of resources in the scanned image.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of usage options in the scanned image.
    pub fn num_options(&self) -> usize {
        self.num_options
    }

    /// Number of OR-trees in the scanned image.
    pub fn num_or_trees(&self) -> usize {
        self.num_or_trees
    }

    /// Number of operation classes in the scanned image.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of bypass entries in the scanned image.
    pub fn num_bypasses(&self) -> usize {
        self.num_bypasses
    }

    /// Materializes the scanned sections into a [`CompiledMdes`].
    ///
    /// This is the allocating half of the decode.  The scan already
    /// proved every length, index, and enumerated field valid, so the
    /// walk here seeks to each recorded section offset and builds the
    /// pools directly; errors are still propagated (never unwrapped)
    /// but cannot occur for a scan produced by [`scan`].
    ///
    /// # Errors
    ///
    /// Returns an [`LmdesError`] if the underlying bytes do not decode;
    /// unreachable for a scan obtained from [`scan`] on the same bytes.
    pub fn materialize(&self) -> Result<CompiledMdes, LmdesError> {
        let mut r = Reader {
            bytes: self.bytes,
            pos: self.options_at,
        };
        let mut options = Vec::with_capacity(self.num_options);
        for _ in 0..self.num_options {
            let num_checks = r.count(12)?;
            let mut checks = Vec::with_capacity(num_checks);
            for _ in 0..num_checks {
                let time = r.i32()?;
                let mask = r.u64()?;
                checks.push(CompiledCheck { time, mask });
            }
            options.push(CompiledOption { checks });
        }

        r.pos = self.or_trees_at;
        let mut or_trees = Vec::with_capacity(self.num_or_trees);
        for _ in 0..self.num_or_trees {
            let count = r.count(4)?;
            let mut tree_options = Vec::with_capacity(count);
            for _ in 0..count {
                let idx = r.u32()?;
                if idx as usize >= options.len() {
                    return Err(LmdesError::DanglingIndex);
                }
                tree_options.push(idx);
            }
            or_trees.push(CompiledOrTree {
                options: tree_options,
            });
        }

        r.pos = self.classes_at;
        let mut classes = Vec::with_capacity(self.num_classes);
        for _ in 0..self.num_classes {
            let name_len = r.count(1)?;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| LmdesError::InvalidField("class name"))?;
            let kind = match r.u8()? {
                0 => ConstraintKind::Or,
                1 => ConstraintKind::AndOr,
                _ => return Err(LmdesError::InvalidField("constraint kind")),
            };
            let and_or_index = r.u32()?;
            let latency = {
                let dest = r.i32()?;
                let src = r.i32()?;
                let mem = r.i32()?;
                Latency::with_mem(dest, mem).with_src(src)
            };
            let flags = flags_from_byte(r.u8()?)?;
            let count = r.count(4)?;
            let mut class_trees = Vec::with_capacity(count);
            for _ in 0..count {
                let idx = r.u32()?;
                if idx as usize >= or_trees.len() {
                    return Err(LmdesError::DanglingIndex);
                }
                class_trees.push(idx);
            }
            if kind == ConstraintKind::Or && class_trees.len() != 1 {
                return Err(LmdesError::InvalidField("OR class tree count"));
            }
            classes.push(CompiledClass {
                name,
                kind,
                or_trees: class_trees,
                and_or_index,
                latency,
                flags,
            });
        }

        r.pos = self.bypasses_at;
        let mut bypasses = Vec::with_capacity(self.num_bypasses);
        for _ in 0..self.num_bypasses {
            let p = r.u32()?;
            let c = r.u32()?;
            let latency = r.i32()?;
            if p as usize >= classes.len() || c as usize >= classes.len() {
                return Err(LmdesError::DanglingIndex);
            }
            bypasses.push((p, c, latency));
        }

        CompiledMdes::from_parts(
            self.encoding,
            self.num_resources,
            options,
            or_trees,
            classes,
            bypasses,
            self.min_time,
            self.max_time,
        )
        .map_err(|_| LmdesError::InvalidField("structure"))
    }
}

/// Validates an LMDES image in a single allocation-free pass.
///
/// Every check [`read`] performs — magic, length bounds, index bounds,
/// enumerated bytes, name UTF-8, trailing bytes — runs here too, so
/// `scan(bytes).is_ok()` exactly when `read(bytes).is_ok()`.  The
/// returned [`LmdesScan`] records the section layout for a later
/// [`LmdesScan::materialize`].
///
/// # Errors
///
/// Returns an [`LmdesError`] describing the first malformation found.
pub fn scan(bytes: &[u8]) -> Result<LmdesScan<'_>, LmdesError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC.as_slice() {
        return Err(LmdesError::BadMagic);
    }
    let encoding = match r.u8()? {
        0 => UsageEncoding::Scalar,
        1 => UsageEncoding::BitVector,
        _ => return Err(LmdesError::InvalidField("encoding")),
    };
    let num_resources = r.u32()? as usize;
    if num_resources > crate::resource::MAX_RESOURCES {
        return Err(LmdesError::InvalidField("num_resources"));
    }
    let min_time = r.i32()?;
    let max_time = r.i32()?;

    let num_options = r.count(4)?;
    let options_at = r.pos;
    for _ in 0..num_options {
        let num_checks = r.count(12)?;
        r.take(num_checks.checked_mul(12).ok_or(LmdesError::Truncated)?)?;
    }

    let num_or_trees = r.count(4)?;
    let or_trees_at = r.pos;
    for _ in 0..num_or_trees {
        let count = r.count(4)?;
        for _ in 0..count {
            let idx = r.u32()?;
            if idx as usize >= num_options {
                return Err(LmdesError::DanglingIndex);
            }
        }
    }

    let num_classes = r.count(26)?;
    let classes_at = r.pos;
    for _ in 0..num_classes {
        let name_len = r.count(1)?;
        if std::str::from_utf8(r.take(name_len)?).is_err() {
            return Err(LmdesError::InvalidField("class name"));
        }
        let kind = match r.u8()? {
            0 => ConstraintKind::Or,
            1 => ConstraintKind::AndOr,
            _ => return Err(LmdesError::InvalidField("constraint kind")),
        };
        let _and_or_index = r.u32()?;
        let _dest = r.i32()?;
        let _src = r.i32()?;
        let _mem = r.i32()?;
        flags_from_byte(r.u8()?)?;
        let count = r.count(4)?;
        for _ in 0..count {
            let idx = r.u32()?;
            if idx as usize >= num_or_trees {
                return Err(LmdesError::DanglingIndex);
            }
        }
        if kind == ConstraintKind::Or && count != 1 {
            return Err(LmdesError::InvalidField("OR class tree count"));
        }
    }

    let num_bypasses = r.count(12)?;
    let bypasses_at = r.pos;
    for _ in 0..num_bypasses {
        let p = r.u32()?;
        let c = r.u32()?;
        let _latency = r.i32()?;
        if p as usize >= num_classes || c as usize >= num_classes {
            return Err(LmdesError::DanglingIndex);
        }
    }

    // A well-formed image is consumed exactly; bytes past the structure
    // mean the payload was corrupted (or is not the image it claims to
    // be), so reject rather than silently ignore them.
    if r.pos != bytes.len() {
        return Err(LmdesError::InvalidField("trailing bytes"));
    }

    Ok(LmdesScan {
        bytes,
        encoding,
        num_resources,
        min_time,
        max_time,
        num_options,
        options_at,
        num_or_trees,
        or_trees_at,
        num_classes,
        classes_at,
        num_bypasses,
        bypasses_at,
    })
}

/// Decodes a binary image back into a compiled MDES.
///
/// Equivalent to [`scan`] followed by [`LmdesScan::materialize`]; use
/// the two halves separately when validity is needed before (or
/// without) the allocating decode.
///
/// # Errors
///
/// Returns an [`LmdesError`] on malformed input; a successful decode
/// always yields a structurally valid MDES (all indices in range).
pub fn read(bytes: &[u8]) -> Result<CompiledMdes, LmdesError> {
    scan(bytes)?.materialize()
}

fn flags_byte(flags: OpFlags) -> u8 {
    (flags.load as u8)
        | (flags.store as u8) << 1
        | (flags.branch as u8) << 2
        | (flags.serial as u8) << 3
}

fn flags_from_byte(byte: u8) -> Result<OpFlags, LmdesError> {
    if byte & !0b1111 != 0 {
        return Err(LmdesError::InvalidField("flags"));
    }
    Ok(OpFlags {
        load: byte & 1 != 0,
        store: byte & 2 != 0,
        branch: byte & 4 != 0,
        serial: byte & 8 != 0,
    })
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, value: i32) {
    out.extend_from_slice(&value.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LmdesError> {
        let end = self.pos.checked_add(n).ok_or(LmdesError::Truncated)?;
        if end > self.bytes.len() {
            return Err(LmdesError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, LmdesError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, LmdesError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// A u32 used as an element count, where each element occupies at
    /// least `min_element_bytes` in the image.  The count is bounded by
    /// the bytes actually remaining: a bit-flipped length field can then
    /// never drive `Vec::with_capacity` beyond what the image could
    /// possibly encode, so adversarial images fail with
    /// [`LmdesError::Truncated`] instead of over-allocating.
    fn count(&mut self, min_element_bytes: usize) -> Result<usize, LmdesError> {
        let value = self.u32()? as usize;
        let need = value
            .checked_mul(min_element_bytes.max(1))
            .ok_or(LmdesError::Truncated)?;
        if need > self.bytes.len() - self.pos {
            return Err(LmdesError::Truncated);
        }
        Ok(value)
    }

    fn i32(&mut self) -> Result<i32, LmdesError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(i32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, LmdesError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Constraint, MdesSpec, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn sample() -> CompiledMdes {
        let mut spec = MdesSpec::new();
        let a = spec.resources_mut().add("a").unwrap();
        let b = spec.resources_mut().add("b").unwrap();
        let o1 = spec.add_option(TableOption::new(vec![
            ResourceUsage::new(a, -1),
            ResourceUsage::new(b, 0),
        ]));
        let o2 = spec.add_option(TableOption::new(vec![ResourceUsage::new(b, 2)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        spec.add_class(
            "load",
            Constraint::Or(tree),
            Latency::with_mem(2, 3),
            OpFlags::load(),
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mdes = sample();
        let bytes = write(&mdes);
        let decoded = read(&bytes).unwrap();
        assert_eq!(decoded, mdes);
    }

    #[test]
    fn machine_descriptions_round_trip() {
        // Compile each bundled machine and round-trip the image.
        for source in ["resource M; or_tree T = first_of({ M @ 0 }); class c { constraint = T; }"] {
            let spec = mdes_spec_from(source);
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
                assert_eq!(read(&write(&mdes)).unwrap(), mdes);
            }
        }
    }

    fn mdes_spec_from(src: &str) -> MdesSpec {
        // Minimal inline builder to avoid a dev-dependency cycle with
        // mdes-lang; parses nothing, builds the one shape used above.
        let _ = src;
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("c", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write(&sample());
        bytes[0] = b'X';
        assert_eq!(read(&bytes), Err(LmdesError::BadMagic));
        // Wrong version byte.
        let mut bytes = write(&sample());
        bytes[5] = 0x07;
        assert_eq!(read(&bytes), Err(LmdesError::BadMagic));
    }

    #[test]
    fn truncated_images_are_rejected_at_every_length() {
        let bytes = write(&sample());
        for len in 0..bytes.len() {
            let result = read(&bytes[..len]);
            assert!(
                result.is_err(),
                "prefix of length {len} unexpectedly decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = write(&sample());
        bytes.push(0);
        assert_eq!(
            read(&bytes),
            Err(LmdesError::InvalidField("trailing bytes"))
        );
        let mut bytes = write(&sample());
        bytes.extend_from_slice(b"garbage after a valid image");
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn dangling_option_index_is_rejected() {
        let mdes = sample();
        let mut bytes = write(&mdes);
        // The OR-tree section follows the options; find the first tree's
        // first option index and corrupt it.  Rather than hand-computing
        // offsets, flip every u32-aligned word and require that no
        // mutation produces a *structurally invalid* MDES.
        let mut found_rejection = false;
        for pos in (MAGIC.len()..bytes.len().saturating_sub(4)).step_by(4) {
            let original = bytes[pos];
            bytes[pos] = 0xEE;
            match read(&bytes) {
                Err(_) => found_rejection = true,
                Ok(decoded) => {
                    // Accepted mutations must still be self-consistent.
                    for tree in decoded.or_trees() {
                        for &opt in &tree.options {
                            assert!((opt as usize) < decoded.num_options());
                        }
                    }
                }
            }
            bytes[pos] = original;
        }
        assert!(found_rejection, "no corruption was ever rejected");
    }

    /// Overwrites the 4 bytes at `pos` with `value` little-endian.
    fn splice_u32(bytes: &mut [u8], pos: usize, value: u32) {
        bytes[pos..pos + 4].copy_from_slice(&value.to_le_bytes());
    }

    #[test]
    fn huge_length_fields_are_rejected_without_allocating() {
        // The option-count field sits right after the 19-byte header.
        // A bit-flipped count must fail with Truncated: the reader bounds
        // every count by the bytes remaining, so u32::MAX can never reach
        // Vec::with_capacity.
        let bytes = write(&sample());
        for huge in [u32::MAX, u32::MAX / 2, 1 << 24] {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, 19, huge);
            assert_eq!(read(&corrupt), Err(LmdesError::Truncated), "count {huge}");
        }
    }

    #[test]
    fn every_u32_field_splice_is_rejected_or_structurally_valid() {
        // Sweep a large value over every byte offset (not just aligned
        // ones): whatever field it lands in — a section length, an index,
        // a latency — the decoder must either reject the image or produce
        // a self-consistent MDES.  This is the bit-flipped-section-length
        // guarantee the serving daemon's reload path depends on.
        let bytes = write(&sample());
        for pos in 0..bytes.len().saturating_sub(4) {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, pos, 0xFFFF_FF00);
            if let Ok(decoded) = read(&corrupt) {
                for tree in decoded.or_trees() {
                    for &opt in &tree.options {
                        assert!((opt as usize) < decoded.num_options(), "offset {pos}");
                    }
                }
                for class in decoded.classes() {
                    for &tree in &class.or_trees {
                        assert!((tree as usize) < decoded.or_trees().len(), "offset {pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn scan_reports_section_counts_and_materializes_identically() {
        let mdes = sample();
        let bytes = write(&mdes);
        let scanned = scan(&bytes).unwrap();
        assert_eq!(scanned.encoding(), mdes.encoding());
        assert_eq!(scanned.num_resources(), mdes.num_resources());
        assert_eq!(scanned.num_options(), mdes.num_options());
        assert_eq!(scanned.num_or_trees(), mdes.or_trees().len());
        assert_eq!(scanned.num_classes(), mdes.classes().len());
        assert_eq!(scanned.num_bypasses(), mdes.bypasses().len());
        assert_eq!(scanned.materialize().unwrap(), mdes);
    }

    #[test]
    fn scan_accepts_exactly_what_read_accepts() {
        // The admission fast path trusts scan() alone, so its verdict
        // must agree with the full decode on every corruption the
        // splice sweep can produce — same accept/reject, same error.
        let bytes = write(&sample());
        for pos in 0..bytes.len().saturating_sub(4) {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, pos, 0xFFFF_FF00);
            let scanned = scan(&corrupt).map(|s| s.materialize());
            match (scanned, read(&corrupt)) {
                (Ok(Ok(a)), Ok(b)) => assert_eq!(a, b, "offset {pos}"),
                (Ok(Err(e)), Err(f)) => assert_eq!(e, f, "offset {pos}"),
                (Err(e), Err(f)) => assert_eq!(e, f, "offset {pos}"),
                (got, want) => panic!("offset {pos}: scan path {got:?} vs read {want:?}"),
            }
        }
    }

    #[test]
    fn scan_rejects_truncation_at_every_length() {
        let bytes = write(&sample());
        for len in 0..bytes.len() {
            assert!(scan(&bytes[..len]).is_err(), "prefix {len} scanned");
        }
    }

    #[test]
    fn scan_rejects_huge_length_fields_without_allocating() {
        let bytes = write(&sample());
        for huge in [u32::MAX, u32::MAX / 2, 1 << 24] {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, 19, huge);
            assert_eq!(
                scan(&corrupt).map(|_| ()),
                Err(LmdesError::Truncated),
                "count {huge}"
            );
        }
    }

    #[test]
    fn bypasses_round_trip() {
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        let a = spec
            .add_class("a", Constraint::Or(tree), Latency::new(3), OpFlags::none())
            .unwrap();
        let b = spec
            .add_class("b", Constraint::Or(tree), Latency::new(1), OpFlags::store())
            .unwrap();
        spec.add_bypass(a, b, 1).unwrap();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let loaded = read(&write(&mdes)).unwrap();
        assert_eq!(loaded, mdes);
        assert_eq!(loaded.flow_latency(a, b), 1);
        assert_eq!(loaded.flow_latency(b, a), 1); // default: 1 - 0
    }

    #[test]
    fn encoding_byte_round_trips() {
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("c", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
            assert_eq!(read(&write(&mdes)).unwrap().encoding(), encoding);
        }
    }
}
