//! Binary serialization of the compiled low-level representation.
//!
//! The IMPACT infrastructure the paper builds on stores the customized
//! low-level MDES (`Lmdes`, reference \[4\]) in a file that the compiler
//! loads at start-up; the external representation fully specifies the
//! shared structure "in order to minimize the time required to load the
//! MDES into memory" (Section 4).  This module provides the analogous
//! artifact: a compact little-endian format that round-trips a
//! [`CompiledMdes`] exactly, preserving all sharing.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "LMDES\x02"            6 bytes
//! encoding                     u8 (0 = scalar, 1 = bit-vector)
//! num_resources                u32
//! min_time, max_time           i32, i32
//! num_options                  u32
//!   per option: num_checks u32, then (time i32, mask u64) pairs
//! num_or_trees                 u32
//!   per tree: num_options u32, then option indices u32
//! num_classes                  u32
//!   per class: name (len u32 + UTF-8), kind u8, and_or_index u32,
//!              latency (dest i32, src i32, mem i32), flags u8,
//!              num_or_trees u32, then tree indices u32
//! num_bypasses                 u32
//!   per bypass: producer u32, consumer u32, latency i32
//! ```

use crate::compile::{
    CompiledCheck, CompiledClass, CompiledMdes, CompiledOption, CompiledOrTree, ConstraintKind,
    UsageEncoding,
};
use crate::spec::{Latency, OpFlags};

/// Magic prefix identifying an LMDES file (includes a format version).
pub const MAGIC: &[u8; 6] = b"LMDES\x02";

/// Errors produced while decoding an LMDES image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmdesError {
    /// The magic prefix (or version) did not match.
    BadMagic,
    /// The image ended before the structure was complete.
    Truncated,
    /// A stored index points outside its pool.
    DanglingIndex,
    /// A field holds a value outside its domain.
    InvalidField(&'static str),
}

impl std::fmt::Display for LmdesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmdesError::BadMagic => write!(f, "not an LMDES image (bad magic or version)"),
            LmdesError::Truncated => write!(f, "unexpected end of LMDES image"),
            LmdesError::DanglingIndex => write!(f, "LMDES image contains a dangling index"),
            LmdesError::InvalidField(field) => write!(f, "invalid value in field `{field}`"),
        }
    }
}

impl std::error::Error for LmdesError {}

/// Serializes a compiled MDES to its binary image.
pub fn write(mdes: &CompiledMdes) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(MAGIC);
    out.push(match mdes.encoding() {
        UsageEncoding::Scalar => 0,
        UsageEncoding::BitVector => 1,
    });
    put_u32(&mut out, mdes.num_resources() as u32);
    put_i32(&mut out, mdes.min_check_time());
    put_i32(&mut out, mdes.max_check_time());

    put_u32(&mut out, mdes.num_options() as u32);
    for idx in 0..mdes.num_options() {
        let checks = mdes.option_checks(idx);
        put_u32(&mut out, checks.len() as u32);
        for check in checks {
            put_i32(&mut out, check.time);
            out.extend_from_slice(&check.mask.to_le_bytes());
        }
    }

    put_u32(&mut out, mdes.or_trees().len() as u32);
    for tree in mdes.or_trees() {
        put_u32(&mut out, tree.options.len() as u32);
        for &opt in &tree.options {
            put_u32(&mut out, opt);
        }
    }

    put_u32(&mut out, mdes.classes().len() as u32);
    for class in mdes.classes() {
        put_u32(&mut out, class.name.len() as u32);
        out.extend_from_slice(class.name.as_bytes());
        out.push(match class.kind {
            ConstraintKind::Or => 0,
            ConstraintKind::AndOr => 1,
        });
        put_u32(&mut out, class.and_or_index);
        put_i32(&mut out, class.latency.dest);
        put_i32(&mut out, class.latency.src);
        put_i32(&mut out, class.latency.mem);
        out.push(flags_byte(class.flags));
        put_u32(&mut out, class.or_trees.len() as u32);
        for &tree in &class.or_trees {
            put_u32(&mut out, tree);
        }
    }
    put_u32(&mut out, mdes.bypasses().len() as u32);
    for &(p, c, latency) in mdes.bypasses() {
        put_u32(&mut out, p);
        put_u32(&mut out, c);
        put_i32(&mut out, latency);
    }
    out
}

/// Decodes a binary image back into a compiled MDES.
///
/// # Errors
///
/// Returns an [`LmdesError`] on malformed input; a successful decode
/// always yields a structurally valid MDES (all indices in range).
pub fn read(bytes: &[u8]) -> Result<CompiledMdes, LmdesError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC.as_slice() {
        return Err(LmdesError::BadMagic);
    }
    let encoding = match r.u8()? {
        0 => UsageEncoding::Scalar,
        1 => UsageEncoding::BitVector,
        _ => return Err(LmdesError::InvalidField("encoding")),
    };
    let num_resources = r.u32()? as usize;
    if num_resources > crate::resource::MAX_RESOURCES {
        return Err(LmdesError::InvalidField("num_resources"));
    }
    let min_time = r.i32()?;
    let max_time = r.i32()?;

    let num_options = r.count(4)?;
    let mut options = Vec::with_capacity(num_options);
    for _ in 0..num_options {
        let num_checks = r.count(12)?;
        let mut checks = Vec::with_capacity(num_checks);
        for _ in 0..num_checks {
            let time = r.i32()?;
            let mask = r.u64()?;
            checks.push(CompiledCheck { time, mask });
        }
        options.push(CompiledOption { checks });
    }

    let num_trees = r.count(4)?;
    let mut or_trees = Vec::with_capacity(num_trees);
    for _ in 0..num_trees {
        let count = r.count(4)?;
        let mut tree_options = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = r.u32()?;
            if idx as usize >= options.len() {
                return Err(LmdesError::DanglingIndex);
            }
            tree_options.push(idx);
        }
        or_trees.push(CompiledOrTree {
            options: tree_options,
        });
    }

    let num_classes = r.count(26)?;
    let mut classes = Vec::with_capacity(num_classes);
    for _ in 0..num_classes {
        let name_len = r.count(1)?;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| LmdesError::InvalidField("class name"))?;
        let kind = match r.u8()? {
            0 => ConstraintKind::Or,
            1 => ConstraintKind::AndOr,
            _ => return Err(LmdesError::InvalidField("constraint kind")),
        };
        let and_or_index = r.u32()?;
        let latency = {
            let dest = r.i32()?;
            let src = r.i32()?;
            let mem = r.i32()?;
            Latency::with_mem(dest, mem).with_src(src)
        };
        let flags = flags_from_byte(r.u8()?)?;
        let count = r.count(4)?;
        let mut class_trees = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = r.u32()?;
            if idx as usize >= or_trees.len() {
                return Err(LmdesError::DanglingIndex);
            }
            class_trees.push(idx);
        }
        if kind == ConstraintKind::Or && class_trees.len() != 1 {
            return Err(LmdesError::InvalidField("OR class tree count"));
        }
        classes.push(CompiledClass {
            name,
            kind,
            or_trees: class_trees,
            and_or_index,
            latency,
            flags,
        });
    }

    let num_bypasses = r.count(12)?;
    let mut bypasses = Vec::with_capacity(num_bypasses);
    for _ in 0..num_bypasses {
        let p = r.u32()?;
        let c = r.u32()?;
        let latency = r.i32()?;
        if p as usize >= classes.len() || c as usize >= classes.len() {
            return Err(LmdesError::DanglingIndex);
        }
        bypasses.push((p, c, latency));
    }

    // A well-formed image is consumed exactly; bytes past the structure
    // mean the payload was corrupted (or is not the image it claims to
    // be), so reject rather than silently ignore them.
    if r.pos != bytes.len() {
        return Err(LmdesError::InvalidField("trailing bytes"));
    }

    CompiledMdes::from_parts(
        encoding,
        num_resources,
        options,
        or_trees,
        classes,
        bypasses,
        min_time,
        max_time,
    )
    .map_err(|_| LmdesError::InvalidField("structure"))
}

fn flags_byte(flags: OpFlags) -> u8 {
    (flags.load as u8)
        | (flags.store as u8) << 1
        | (flags.branch as u8) << 2
        | (flags.serial as u8) << 3
}

fn flags_from_byte(byte: u8) -> Result<OpFlags, LmdesError> {
    if byte & !0b1111 != 0 {
        return Err(LmdesError::InvalidField("flags"));
    }
    Ok(OpFlags {
        load: byte & 1 != 0,
        store: byte & 2 != 0,
        branch: byte & 4 != 0,
        serial: byte & 8 != 0,
    })
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, value: i32) {
    out.extend_from_slice(&value.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], LmdesError> {
        let end = self.pos.checked_add(n).ok_or(LmdesError::Truncated)?;
        if end > self.bytes.len() {
            return Err(LmdesError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, LmdesError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, LmdesError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// A u32 used as an element count, where each element occupies at
    /// least `min_element_bytes` in the image.  The count is bounded by
    /// the bytes actually remaining: a bit-flipped length field can then
    /// never drive `Vec::with_capacity` beyond what the image could
    /// possibly encode, so adversarial images fail with
    /// [`LmdesError::Truncated`] instead of over-allocating.
    fn count(&mut self, min_element_bytes: usize) -> Result<usize, LmdesError> {
        let value = self.u32()? as usize;
        let need = value
            .checked_mul(min_element_bytes.max(1))
            .ok_or(LmdesError::Truncated)?;
        if need > self.bytes.len() - self.pos {
            return Err(LmdesError::Truncated);
        }
        Ok(value)
    }

    fn i32(&mut self) -> Result<i32, LmdesError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(i32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, LmdesError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| LmdesError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Constraint, MdesSpec, OrTree, TableOption};
    use crate::usage::ResourceUsage;

    fn sample() -> CompiledMdes {
        let mut spec = MdesSpec::new();
        let a = spec.resources_mut().add("a").unwrap();
        let b = spec.resources_mut().add("b").unwrap();
        let o1 = spec.add_option(TableOption::new(vec![
            ResourceUsage::new(a, -1),
            ResourceUsage::new(b, 0),
        ]));
        let o2 = spec.add_option(TableOption::new(vec![ResourceUsage::new(b, 2)]));
        let tree = spec.add_or_tree(OrTree::new(vec![o1, o2]));
        spec.add_class(
            "load",
            Constraint::Or(tree),
            Latency::with_mem(2, 3),
            OpFlags::load(),
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mdes = sample();
        let bytes = write(&mdes);
        let decoded = read(&bytes).unwrap();
        assert_eq!(decoded, mdes);
    }

    #[test]
    fn machine_descriptions_round_trip() {
        // Compile each bundled machine and round-trip the image.
        for source in ["resource M; or_tree T = first_of({ M @ 0 }); class c { constraint = T; }"] {
            let spec = mdes_spec_from(source);
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
                assert_eq!(read(&write(&mdes)).unwrap(), mdes);
            }
        }
    }

    fn mdes_spec_from(src: &str) -> MdesSpec {
        // Minimal inline builder to avoid a dev-dependency cycle with
        // mdes-lang; parses nothing, builds the one shape used above.
        let _ = src;
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("c", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write(&sample());
        bytes[0] = b'X';
        assert_eq!(read(&bytes), Err(LmdesError::BadMagic));
        // Wrong version byte.
        let mut bytes = write(&sample());
        bytes[5] = 0x07;
        assert_eq!(read(&bytes), Err(LmdesError::BadMagic));
    }

    #[test]
    fn truncated_images_are_rejected_at_every_length() {
        let bytes = write(&sample());
        for len in 0..bytes.len() {
            let result = read(&bytes[..len]);
            assert!(
                result.is_err(),
                "prefix of length {len} unexpectedly decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = write(&sample());
        bytes.push(0);
        assert_eq!(
            read(&bytes),
            Err(LmdesError::InvalidField("trailing bytes"))
        );
        let mut bytes = write(&sample());
        bytes.extend_from_slice(b"garbage after a valid image");
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn dangling_option_index_is_rejected() {
        let mdes = sample();
        let mut bytes = write(&mdes);
        // The OR-tree section follows the options; find the first tree's
        // first option index and corrupt it.  Rather than hand-computing
        // offsets, flip every u32-aligned word and require that no
        // mutation produces a *structurally invalid* MDES.
        let mut found_rejection = false;
        for pos in (MAGIC.len()..bytes.len().saturating_sub(4)).step_by(4) {
            let original = bytes[pos];
            bytes[pos] = 0xEE;
            match read(&bytes) {
                Err(_) => found_rejection = true,
                Ok(decoded) => {
                    // Accepted mutations must still be self-consistent.
                    for tree in decoded.or_trees() {
                        for &opt in &tree.options {
                            assert!((opt as usize) < decoded.num_options());
                        }
                    }
                }
            }
            bytes[pos] = original;
        }
        assert!(found_rejection, "no corruption was ever rejected");
    }

    /// Overwrites the 4 bytes at `pos` with `value` little-endian.
    fn splice_u32(bytes: &mut [u8], pos: usize, value: u32) {
        bytes[pos..pos + 4].copy_from_slice(&value.to_le_bytes());
    }

    #[test]
    fn huge_length_fields_are_rejected_without_allocating() {
        // The option-count field sits right after the 19-byte header.
        // A bit-flipped count must fail with Truncated: the reader bounds
        // every count by the bytes remaining, so u32::MAX can never reach
        // Vec::with_capacity.
        let bytes = write(&sample());
        for huge in [u32::MAX, u32::MAX / 2, 1 << 24] {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, 19, huge);
            assert_eq!(read(&corrupt), Err(LmdesError::Truncated), "count {huge}");
        }
    }

    #[test]
    fn every_u32_field_splice_is_rejected_or_structurally_valid() {
        // Sweep a large value over every byte offset (not just aligned
        // ones): whatever field it lands in — a section length, an index,
        // a latency — the decoder must either reject the image or produce
        // a self-consistent MDES.  This is the bit-flipped-section-length
        // guarantee the serving daemon's reload path depends on.
        let bytes = write(&sample());
        for pos in 0..bytes.len().saturating_sub(4) {
            let mut corrupt = bytes.clone();
            splice_u32(&mut corrupt, pos, 0xFFFF_FF00);
            if let Ok(decoded) = read(&corrupt) {
                for tree in decoded.or_trees() {
                    for &opt in &tree.options {
                        assert!((opt as usize) < decoded.num_options(), "offset {pos}");
                    }
                }
                for class in decoded.classes() {
                    for &tree in &class.or_trees {
                        assert!((tree as usize) < decoded.or_trees().len(), "offset {pos}");
                    }
                }
            }
        }
    }

    #[test]
    fn bypasses_round_trip() {
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        let a = spec
            .add_class("a", Constraint::Or(tree), Latency::new(3), OpFlags::none())
            .unwrap();
        let b = spec
            .add_class("b", Constraint::Or(tree), Latency::new(1), OpFlags::store())
            .unwrap();
        spec.add_bypass(a, b, 1).unwrap();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let loaded = read(&write(&mdes)).unwrap();
        assert_eq!(loaded, mdes);
        assert_eq!(loaded.flow_latency(a, b), 1);
        assert_eq!(loaded.flow_latency(b, a), 1); // default: 1 - 0
    }

    #[test]
    fn encoding_byte_round_trips() {
        let mut spec = MdesSpec::new();
        let m = spec.resources_mut().add("M").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(m, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class("c", Constraint::Or(tree), Latency::new(1), OpFlags::none())
            .unwrap();
        for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
            let mdes = CompiledMdes::compile(&spec, encoding).unwrap();
            assert_eq!(read(&write(&mdes)).unwrap().encoding(), encoding);
        }
    }
}
