//! Resource usages: a resource used at a relative time.

use std::fmt;

use crate::resource::ResourceId;

/// One *resource usage*: `resource` is occupied at relative time `time`.
///
/// Times are relative to the operation's issue point.  Following the
/// paper's convention, time zero is the first stage of the execution
/// pipeline, so decoder-stage usages carry *negative* times and
/// write-back-stage usages carry times around the operation latency.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceUsage {
    /// The resource being occupied.
    pub resource: ResourceId,
    /// Cycle offset relative to the issue point (may be negative).
    pub time: i32,
}

impl ResourceUsage {
    /// Creates a usage of `resource` at relative cycle `time`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdes_core::resource::ResourceId;
    /// use mdes_core::usage::ResourceUsage;
    ///
    /// let decode = ResourceUsage::new(ResourceId::from_index(0), -1);
    /// assert_eq!(decode.time, -1);
    /// ```
    pub fn new(resource: ResourceId, time: i32) -> ResourceUsage {
        ResourceUsage { resource, time }
    }

    /// Returns this usage shifted by `delta` cycles.
    ///
    /// Used by the usage-time transformation of Section 7: adding a common
    /// constant to every usage of a resource preserves all forbidden
    /// latencies.
    pub fn shifted(self, delta: i32) -> ResourceUsage {
        ResourceUsage {
            resource: self.resource,
            time: self.time + delta,
        }
    }
}

impl fmt::Debug for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.resource, self.time)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.resource, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> ResourceId {
        ResourceId::from_index(i)
    }

    #[test]
    fn shifted_moves_time_only() {
        let u = ResourceUsage::new(r(2), -1);
        let s = u.shifted(3);
        assert_eq!(s.resource, r(2));
        assert_eq!(s.time, 2);
        // Shifting back recovers the original usage.
        assert_eq!(s.shifted(-3), u);
    }

    #[test]
    fn ordering_is_by_resource_then_time() {
        let a = ResourceUsage::new(r(0), 5);
        let b = ResourceUsage::new(r(1), -5);
        assert!(a < b);
    }

    #[test]
    fn display_shows_resource_and_time() {
        let u = ResourceUsage::new(r(3), -2);
        assert_eq!(u.to_string(), "r3@-2");
    }
}
