//! Finite-state-automaton resource-conflict detection — the related-work
//! baseline (Proebsting & Fraser, POPL 1994; Müller, MICRO-26; Bala &
//! Rubin, MICRO-28; Section 10 of the paper).
//!
//! Instead of probing reservation tables, the scheduler walks an
//! automaton whose states encode the relevant window of the resource
//! usage map.  Issuing an operation or advancing one cycle is a single
//! table lookup (O(1) "checks"); the cost is the transition table itself,
//! which grows with machine flexibility — the trade-off the paper's
//! Section 10 discusses.  The automaton here is built *lazily* from the
//! compiled MDES (the practical variant Bala & Rubin advocate), and can
//! optionally be fully enumerated to measure table size.
//!
//! Two limitations the paper points out are visible in the API:
//!
//! * there is no `release`/unschedule operation — state transitions are
//!   one-way, so techniques like iterative modulo scheduling cannot be
//!   expressed (contrast `mdes_sched::modulo`);
//! * the chosen reservation option is not recoverable from a state.
//!
//! # Example
//!
//! ```
//! use mdes_core::{CompiledMdes, UsageEncoding};
//! use mdes_automata::Automaton;
//!
//! let spec = mdes_lang::compile("
//!     resource ALU;
//!     or_tree UseAlu = first_of({ ALU @ 0 });
//!     class alu { constraint = UseAlu; latency = 1; }
//! ").unwrap();
//! let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
//! let mut fsa = Automaton::new(&mdes);
//! let alu = mdes.class_by_name("alu").unwrap();
//!
//! let s0 = Automaton::START;
//! let s1 = fsa.issue(s0, alu).expect("ALU free");
//! assert!(fsa.issue(s1, alu).is_none(), "ALU busy this cycle");
//! let s2 = fsa.advance(s1);
//! assert!(fsa.issue(s2, alu).is_some(), "free again next cycle");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use mdes_core::{ClassId, CompiledMdes};

/// A state id in the automaton.
pub type StateId = u32;

/// The lazily constructed conflict-detection automaton.
#[derive(Clone, Debug)]
pub struct Automaton<'a> {
    mdes: &'a CompiledMdes,
    /// Occupancy window per state: `window[k]` is the occupancy of
    /// absolute cycle `current + min_check_time + k`.
    windows: Vec<Vec<u64>>,
    index: HashMap<Vec<u64>, StateId>,
    /// Cached issue transitions: `(state, class) → Option<state>`.
    issue_cache: HashMap<(StateId, u32), Option<StateId>>,
    /// Cached cycle-advance transitions.
    advance_cache: HashMap<StateId, StateId>,
}

impl<'a> Automaton<'a> {
    /// The empty-machine start state.
    pub const START: StateId = 0;

    /// Creates an automaton over `mdes` containing only the start state.
    pub fn new(mdes: &'a CompiledMdes) -> Automaton<'a> {
        let len = (mdes.max_check_time() - mdes.min_check_time() + 1).max(1) as usize;
        let empty = vec![0u64; len];
        let mut index = HashMap::new();
        index.insert(empty.clone(), 0);
        Automaton {
            mdes,
            windows: vec![empty],
            index,
            issue_cache: HashMap::new(),
            advance_cache: HashMap::new(),
        }
    }

    /// Number of materialized states.
    pub fn num_states(&self) -> usize {
        self.windows.len()
    }

    /// Number of cached transitions (issue + advance).
    pub fn num_transitions(&self) -> usize {
        self.issue_cache.len() + self.advance_cache.len()
    }

    /// Estimated table bytes under the paper's 4-byte-word model: one
    /// word per (state, class) issue entry plus one per advance entry.
    pub fn table_bytes(&self) -> usize {
        self.num_states() * (self.mdes.classes().len() + 1) * 4
    }

    /// Attempts to issue one operation of `class` in the current cycle of
    /// `state`.  Returns the successor state, or `None` on a resource
    /// conflict.  Selection follows the same greedy priority rule as the
    /// reservation-table checker, so both detectors accept identical
    /// schedules.
    pub fn issue(&mut self, state: StateId, class: ClassId) -> Option<StateId> {
        let key = (state, class.index() as u32);
        if let Some(&cached) = self.issue_cache.get(&key) {
            return cached;
        }
        let result = self.compute_issue(state, class);
        self.issue_cache.insert(key, result);
        result
    }

    /// Advances one cycle: the oldest window slot expires, a fresh one
    /// appears.
    pub fn advance(&mut self, state: StateId) -> StateId {
        if let Some(&cached) = self.advance_cache.get(&state) {
            return cached;
        }
        let mut window = self.windows[state as usize].clone();
        window.rotate_left(1);
        let last = window.len() - 1;
        window[last] = 0;
        let next = self.intern(window);
        self.advance_cache.insert(state, next);
        next
    }

    fn compute_issue(&mut self, state: StateId, class: ClassId) -> Option<StateId> {
        let offset = -self.mdes.min_check_time();
        let mut window = self.windows[state as usize].clone();
        for &tree_idx in &self.mdes.class(class).or_trees {
            let tree = &self.mdes.or_trees()[tree_idx as usize];
            let mut chosen = None;
            'options: for &opt_idx in &tree.options {
                for check in self.mdes.option_checks(opt_idx as usize) {
                    let slot = (check.time + offset) as usize;
                    if window[slot] & check.mask != 0 {
                        continue 'options;
                    }
                }
                chosen = Some(opt_idx);
                break;
            }
            let opt_idx = chosen?;
            for check in self.mdes.option_checks(opt_idx as usize) {
                let slot = (check.time + offset) as usize;
                window[slot] |= check.mask;
            }
        }
        Some(self.intern(window))
    }

    fn intern(&mut self, window: Vec<u64>) -> StateId {
        if let Some(&id) = self.index.get(&window) {
            return id;
        }
        let id = self.windows.len() as StateId;
        self.index.insert(window.clone(), id);
        self.windows.push(window);
        id
    }

    /// Greedily packs a sequence of operations (given as classes, in
    /// issue order) onto consecutive cycles: each operation issues in the
    /// current cycle if the automaton accepts it, otherwise the cycle
    /// advances until it does.  Returns the total number of cycles used
    /// and the number of automaton transitions taken (the FSA's unit of
    /// work, each O(1)).
    ///
    /// This ignores data dependences — it measures pure resource packing
    /// — and is cross-validated against the reservation-table RU map in
    /// the integration tests.
    ///
    /// # Panics
    ///
    /// Panics if some class can never issue even on an empty machine.
    pub fn pack_in_order(&mut self, classes: &[ClassId]) -> (i32, usize) {
        let mut state = Automaton::START;
        let mut cycles = if classes.is_empty() { 0 } else { 1 };
        let mut transitions = 0usize;
        for &class in classes {
            let mut spins = 0;
            loop {
                transitions += 1;
                match self.issue(state, class) {
                    Some(next) => {
                        state = next;
                        break;
                    }
                    None => {
                        state = self.advance(state);
                        transitions += 1; // the advance lookup
                        cycles += 1;
                        spins += 1;
                        assert!(
                            spins < 1 << 12,
                            "class {class:?} can never issue on this machine"
                        );
                    }
                }
            }
        }
        (cycles, transitions)
    }

    /// Fully enumerates reachable states (breadth-first over every class
    /// issue and the cycle advance), stopping at `max_states`.  Returns
    /// `true` if closure was reached within the cap.
    pub fn build_full(&mut self, max_states: usize) -> bool {
        let classes: Vec<ClassId> = (0..self.mdes.classes().len())
            .map(ClassId::from_index)
            .collect();
        let mut frontier = 0usize;
        while frontier < self.windows.len() {
            if self.windows.len() > max_states {
                return false;
            }
            let state = frontier as StateId;
            for &class in &classes {
                self.issue(state, class);
            }
            self.advance(state);
            frontier += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::{CheckStats, Checker, RuMap, UsageEncoding};

    fn compile(src: &str) -> CompiledMdes {
        let spec = mdes_lang::compile(src).unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    const TWO_ISSUE: &str = "
        resource Dec[2];
        resource M;
        or_tree AnyDec = first_of(for d in 0..2: { Dec[d] @ -1 });
        or_tree UseM = first_of({ M @ 0 });
        and_or_tree Load = all_of(UseM, AnyDec);
        and_or_tree Alu = all_of(AnyDec);
        class load { constraint = Load; latency = 2; flags = load; }
        class alu { constraint = Alu; latency = 1; }
    ";

    #[test]
    fn issue_respects_resource_limits() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();

        let s1 = fsa.issue(Automaton::START, load).unwrap();
        // Second load conflicts on M; an ALU op still fits (decoder 1).
        assert!(fsa.issue(s1, load).is_none());
        let s2 = fsa.issue(s1, alu).unwrap();
        // Both decoders busy now.
        assert!(fsa.issue(s2, alu).is_none());
        // Next cycle everything clears.
        let s3 = fsa.advance(s2);
        assert!(fsa.issue(s3, load).is_some());
    }

    #[test]
    fn transitions_are_cached_and_states_interned() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        let alu = mdes.class_by_name("alu").unwrap();
        let a = fsa.issue(Automaton::START, alu).unwrap();
        let b = fsa.issue(Automaton::START, alu).unwrap();
        assert_eq!(a, b);
        // advance from start loops back to start (empty window).
        assert_eq!(fsa.advance(Automaton::START), Automaton::START);
    }

    #[test]
    fn agrees_with_reservation_table_checker() {
        // Drive both detectors through the same issue/advance script and
        // require identical accept/reject decisions.
        let mdes = compile(TWO_ISSUE);
        let checker = Checker::new(&mdes);
        let mut fsa = Automaton::new(&mdes);
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();

        let script = [load, alu, load, alu, alu, load, load, alu];
        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();
        let mut state = Automaton::START;
        let mut cycle = 0;
        for (i, &class) in script.iter().enumerate() {
            let table_ok = checker
                .try_reserve(&mut ru, class, cycle, &mut stats)
                .is_some();
            let fsa_next = fsa.issue(state, class);
            assert_eq!(table_ok, fsa_next.is_some(), "divergence at step {i}");
            if let Some(next) = fsa_next {
                state = next;
            }
            if i % 3 == 2 {
                cycle += 1;
                state = fsa.advance(state);
            }
        }
    }

    #[test]
    fn full_enumeration_reaches_closure_on_small_machine() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        assert!(fsa.build_full(10_000));
        // Window spans 2 cycles with 3 resources; closure is modest.
        assert!(fsa.num_states() > 3);
        assert!(fsa.num_states() < 200, "{} states", fsa.num_states());
        assert!(fsa.table_bytes() > 0);
    }

    #[test]
    fn enumeration_cap_is_honored() {
        let spec = mdes_machines::Machine::K5.spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let mut fsa = Automaton::new(&compiled);
        let closed = fsa.build_full(500);
        assert!(!closed, "K5 automaton should blow past 500 states");
        assert!(fsa.num_states() >= 500);
    }

    #[test]
    fn pack_in_order_counts_cycles_and_transitions() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        let alu = mdes.class_by_name("alu").unwrap();
        // Four ALU ops on two decoders: 2 per cycle over 2 cycles.  Six
        // transitions: four accepting issues, one rejected issue, one
        // cycle advance.
        let (cycles, transitions) = fsa.pack_in_order(&[alu, alu, alu, alu]);
        assert_eq!(cycles, 2);
        assert_eq!(transitions, 6);
    }

    #[test]
    fn pack_of_nothing_is_zero_cycles() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        assert_eq!(fsa.pack_in_order(&[]), (0, 0));
    }

    #[test]
    fn start_state_is_reusable_after_heavy_traffic() {
        let mdes = compile(TWO_ISSUE);
        let mut fsa = Automaton::new(&mdes);
        let alu = mdes.class_by_name("alu").unwrap();
        let mut state = Automaton::START;
        for _ in 0..50 {
            while let Some(next) = fsa.issue(state, alu) {
                state = next;
            }
            state = fsa.advance(state);
        }
        // Draining for two cycles returns to the empty window = START.
        state = fsa.advance(state);
        assert_eq!(state, Automaton::START);
    }
}
