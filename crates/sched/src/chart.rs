//! ASCII resource-occupancy charts.
//!
//! Renders a scheduled block as the machine sees it: one row per
//! resource, one column per cycle, each cell naming the operation that
//! reserved the resource there.  This is the RU map made visible — the
//! paper's Figure-1 reservation tables, but for a whole schedule.

use std::fmt::Write as _;

use mdes_core::{CompiledMdes, MdesSpec};

use crate::list::Schedule;
use crate::operation::Block;

/// Renders the resource-occupancy chart of `schedule`.
///
/// `spec` supplies resource names (the compiled form keeps only bit
/// positions) and must be the description `mdes` was compiled from.
/// Operations are labeled `0-9A-Z` by index (wrapping for larger
/// blocks).
///
/// # Panics
///
/// Panics if the schedule does not belong to `block`/`mdes`.
pub fn occupancy_chart(
    spec: &MdesSpec,
    mdes: &CompiledMdes,
    block: &Block,
    schedule: &Schedule,
) -> String {
    assert_eq!(block.len(), schedule.ops.len(), "schedule/block mismatch");
    if block.is_empty() {
        return String::from("(empty block)\n");
    }

    // Chart window: every reserved cycle.
    let min_cycle = schedule
        .ops
        .iter()
        .map(|s| s.cycle + mdes.min_check_time())
        .min()
        .unwrap();
    let max_cycle = schedule
        .ops
        .iter()
        .map(|s| s.cycle + mdes.max_check_time())
        .max()
        .unwrap();
    let width = (max_cycle - min_cycle + 1) as usize;

    // grid[resource][cycle] = label of the occupying op.
    let num_resources = spec.resources().len();
    let mut grid = vec![vec![' '; width]; num_resources];
    for (index, placed) in schedule.ops.iter().enumerate() {
        let label = op_label(index);
        for &opt_idx in &placed.choice.selected {
            for check in mdes.option_checks(opt_idx as usize) {
                let column = (placed.cycle + check.time - min_cycle) as usize;
                for bit in 0..64 {
                    if check.mask & (1 << bit) != 0 && (bit as usize) < num_resources {
                        grid[bit as usize][column] = label;
                    }
                }
            }
        }
    }

    let name_width = spec
        .resources()
        .iter()
        .map(|(_, n)| n.len())
        .max()
        .unwrap_or(4)
        .max(5);

    let mut out = String::new();
    let _ = write!(out, "{:>name_width$} |", "cycle");
    for cycle in min_cycle..=max_cycle {
        let _ = write!(out, "{:>3}", cycle);
    }
    out.push('\n');
    let _ = writeln!(out, "{}-+{}", "-".repeat(name_width), "-".repeat(3 * width));
    for (id, name) in spec.resources().iter() {
        let row = &grid[id.index()];
        if row.iter().all(|&c| c == ' ') {
            continue; // unused resource: keep the chart compact
        }
        let _ = write!(out, "{name:>name_width$} |");
        for &cell in row {
            let _ = write!(out, "  {cell}");
        }
        out.push('\n');
    }
    out
}

/// Per-resource utilization of a schedule: the fraction of cycles in the
/// schedule's occupied window during which each resource is reserved.
/// Returned in resource-id order; unused resources report 0.0.
///
/// # Examples
///
/// ```
/// use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
/// use mdes_sched::{chart::resource_utilization, Block, ListScheduler, Op, Reg};
///
/// let spec = mdes_lang::compile("
///     resource ALU;
///     or_tree T = first_of({ ALU @ 0 });
///     class alu { constraint = T; latency = 1; }
/// ").unwrap();
/// let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
/// let alu = mdes.class_by_name("alu").unwrap();
/// let mut block = Block::new();
/// for i in 0..3 {
///     block.push(Op::new(alu, vec![Reg(i)], vec![]));
/// }
/// let mut stats = CheckStats::new();
/// let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
/// // One ALU, three back-to-back ops: 100% busy.
/// assert_eq!(resource_utilization(&mdes, &schedule), vec![1.0]);
/// ```
pub fn resource_utilization(mdes: &CompiledMdes, schedule: &Schedule) -> Vec<f64> {
    let num_resources = mdes.num_resources();
    if schedule.ops.is_empty() || num_resources == 0 {
        return vec![0.0; num_resources];
    }
    let min_cycle = schedule
        .ops
        .iter()
        .map(|s| s.cycle + mdes.min_check_time())
        .min()
        .unwrap();
    let max_cycle = schedule
        .ops
        .iter()
        .map(|s| s.cycle + mdes.max_check_time())
        .max()
        .unwrap();
    let width = (max_cycle - min_cycle + 1) as usize;

    let mut busy = vec![vec![false; width]; num_resources];
    for placed in &schedule.ops {
        for &opt_idx in &placed.choice.selected {
            for check in mdes.option_checks(opt_idx as usize) {
                let column = (placed.cycle + check.time - min_cycle) as usize;
                for (bit, row) in busy.iter_mut().enumerate().take(64) {
                    if check.mask & (1 << bit) != 0 {
                        row[column] = true;
                    }
                }
            }
        }
    }
    busy.into_iter()
        .map(|row| row.iter().filter(|&&b| b).count() as f64 / width as f64)
        .collect()
}

/// Label for the `index`-th operation: `0-9`, then `A-Z`, wrapping.
fn op_label(index: usize) -> char {
    const ALPHABET: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    ALPHABET[index % ALPHABET.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::operation::{Op, Reg};
    use mdes_core::{CheckStats, UsageEncoding};

    fn machine() -> (MdesSpec, CompiledMdes) {
        let spec = mdes_lang::compile(
            "
            resource Dec[2];
            resource M;
            or_tree AnyDec = first_of(for d in 0..2: { Dec[d] @ -1 });
            or_tree UseM = first_of({ M @ 0 });
            and_or_tree Load = all_of(UseM, AnyDec);
            and_or_tree Alu = all_of(AnyDec);
            class load { constraint = Load; latency = 2; flags = load; }
            class alu { constraint = Alu; latency = 1; }
        ",
        )
        .unwrap();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        (spec, compiled)
    }

    #[test]
    fn chart_shows_each_reservation_once() {
        let (spec, mdes) = machine();
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(load, vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(alu, vec![Reg(2)], vec![Reg(3)]));
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);

        let chart = occupancy_chart(&spec, &mdes, &block, &schedule);
        // Op 0 (the load) occupies a decoder and M; op 1 a decoder.
        assert!(chart.contains("M |"), "{chart}");
        assert!(chart.contains("Dec[0]"), "{chart}");
        assert!(chart.matches('0').count() >= 2, "{chart}");
        assert!(chart.contains('1'), "{chart}");
        // Decode column (-1) is visible.
        assert!(chart.contains("-1"), "{chart}");
    }

    #[test]
    fn unused_resources_are_omitted() {
        let (spec, mdes) = machine();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(alu, vec![Reg(1)], vec![]));
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let chart = occupancy_chart(&spec, &mdes, &block, &schedule);
        assert!(
            !chart.contains("M |"),
            "memory row should be omitted:\n{chart}"
        );
    }

    #[test]
    fn empty_block_renders_placeholder() {
        let (spec, mdes) = machine();
        let schedule = Schedule {
            ops: Vec::new(),
            attempts: Vec::new(),
            length: 0,
        };
        assert_eq!(
            occupancy_chart(&spec, &mdes, &Block::new(), &schedule),
            "(empty block)\n"
        );
    }

    #[test]
    fn utilization_reflects_contention() {
        let (_, mdes) = machine();
        let load = mdes.class_by_name("load").unwrap();
        let mut block = Block::new();
        for i in 0..4 {
            block.push(Op::new(load, vec![Reg(i)], vec![Reg(10)]));
        }
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let util = resource_utilization(&mdes, &schedule);
        // Resources: Dec[0], Dec[1], M.  The single M port saturates its
        // window more than the second decoder.
        let m = util[2];
        let dec1 = util[1];
        assert!(m > 0.5, "{util:?}");
        assert!(dec1 <= m, "{util:?}");
        assert_eq!(util.len(), 3);
    }

    #[test]
    fn utilization_of_empty_schedule_is_zero() {
        let (_, mdes) = machine();
        let schedule = Schedule {
            ops: Vec::new(),
            attempts: Vec::new(),
            length: 0,
        };
        assert_eq!(resource_utilization(&mdes, &schedule), vec![0.0; 3]);
    }

    #[test]
    fn labels_wrap_after_thirty_six_ops() {
        assert_eq!(op_label(0), '0');
        assert_eq!(op_label(10), 'A');
        assert_eq!(op_label(35), 'Z');
        assert_eq!(op_label(36), '0');
    }
}
