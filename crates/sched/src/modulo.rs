//! Iterative modulo scheduling (Rau, MICRO-27 1994 — the paper's
//! reference \[12\]).
//!
//! The paper argues (Section 10) that reservation-table representations,
//! unlike finite-state automata, support "advanced scheduling techniques,
//! such as iterative modulo scheduling, that unschedule operations in
//! order to remove the resource conflicts" — because a kept `Choice` can
//! be released from the RU map.  This module exercises exactly that:
//! operations are evicted from the modulo reservation table when a
//! higher-priority operation is forced into their slot.
//!
//! The implementation follows the classic shape: compute MII =
//! max(ResMII, RecMII); try each candidate II with a budgeted iterative
//! scheduler; on budget exhaustion increase II.

use mdes_core::{ClassId, CompiledMdes, RuMap};

use crate::depgraph::{DepGraph, Edge};
use crate::operation::Block;
use crate::CheckStats;

/// A loop to software-pipeline: a body block plus loop-carried
/// dependences (`from` in iteration *i* to `to` in iteration
/// *i + distance*).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopBlock {
    /// The loop body.
    pub body: Block,
    /// Loop-carried dependences: (from, to, latency, distance ≥ 1).
    pub carried: Vec<(usize, usize, i32, u32)>,
}

/// A modulo schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuloSchedule {
    /// The achieved initiation interval.
    pub ii: i32,
    /// Issue cycle of each operation within the flat schedule.
    pub cycles: Vec<i32>,
    /// Selected compiled-option index per OR-tree per operation.
    pub selections: Vec<Vec<u32>>,
}

impl ModuloSchedule {
    /// Verifies dependences (including carried ones at this II) and
    /// modulo resource usage.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn verify(&self, looped: &LoopBlock, mdes: &CompiledMdes) -> Result<(), String> {
        let graph = DepGraph::build(&looped.body, mdes);
        for edges in &graph.succs {
            for edge in edges {
                if self.cycles[edge.to] < self.cycles[edge.from] + edge.latency {
                    return Err(format!(
                        "intra-iteration dependence {}→{} violated",
                        edge.from, edge.to
                    ));
                }
            }
        }
        for &(from, to, latency, distance) in &looped.carried {
            if self.cycles[to] + self.ii * (distance as i32) < self.cycles[from] + latency {
                return Err(format!(
                    "carried dependence {from}→{to} violated at II {}",
                    self.ii
                ));
            }
        }
        // Modulo resource check.
        let mut mrt = RuMap::new();
        for (op, selection) in self.selections.iter().enumerate() {
            for &opt_idx in selection {
                for check in mdes.option_checks(opt_idx as usize) {
                    let slot = (self.cycles[op] + check.time).rem_euclid(self.ii);
                    if !mrt.is_free(slot, check.mask) {
                        return Err(format!(
                            "operation {op} conflicts in MRT slot {slot} at II {}",
                            self.ii
                        ));
                    }
                    mrt.reserve(slot, check.mask);
                }
            }
        }
        Ok(())
    }
}

/// The iterative modulo scheduler.
#[derive(Copy, Clone, Debug)]
pub struct ModuloScheduler<'a> {
    mdes: &'a CompiledMdes,
    /// Scheduling-attempt budget per operation per II candidate.
    budget_per_op: usize,
}

impl<'a> ModuloScheduler<'a> {
    /// Creates a scheduler with the conventional budget (6 attempts per
    /// operation per II).
    pub fn new(mdes: &'a CompiledMdes) -> ModuloScheduler<'a> {
        ModuloScheduler {
            mdes,
            budget_per_op: 6,
        }
    }

    /// Overrides the scheduling budget.
    pub fn with_budget(mut self, budget_per_op: usize) -> ModuloScheduler<'a> {
        self.budget_per_op = budget_per_op.max(1);
        self
    }

    /// Lower bound on II from resource usage: for each resource, the
    /// number of times it is used per iteration (taking each class's
    /// highest-priority selection).
    pub fn res_mii(&self, looped: &LoopBlock) -> i32 {
        let mut per_resource = std::collections::HashMap::new();
        for op in &looped.body.ops {
            for &tree_idx in &self.mdes.class(op.class).or_trees {
                let tree = &self.mdes.or_trees()[tree_idx as usize];
                for check in self.mdes.option_checks(tree.options[0] as usize) {
                    let mut mask = check.mask;
                    while mask != 0 {
                        let bit = mask.trailing_zeros();
                        *per_resource.entry(bit).or_insert(0i32) += 1;
                        mask &= mask - 1;
                    }
                }
            }
        }
        per_resource.values().copied().max().unwrap_or(1).max(1)
    }

    /// Lower bound on II from recurrences: smallest II for which no
    /// dependence cycle has positive latency-minus-II×distance weight.
    pub fn rec_mii(&self, looped: &LoopBlock) -> i32 {
        let graph = DepGraph::build(&looped.body, self.mdes);
        let n = looped.body.ops.len();
        if n == 0 {
            return 1;
        }
        let mut ii = 1i32;
        'outer: loop {
            // Bellman-Ford-style longest path with weights lat - ii*dist;
            // a positive cycle means this II is infeasible.
            let mut dist = vec![vec![i64::MIN; n]; n];
            let mut edges: Vec<(usize, usize, i64)> = Vec::new();
            for edge_list in &graph.succs {
                for e in edge_list {
                    edges.push((e.from, e.to, e.latency as i64));
                }
            }
            for &(from, to, latency, distance) in &looped.carried {
                edges.push((from, to, latency as i64 - ii as i64 * distance as i64));
            }
            for &(from, to, w) in &edges {
                if w > dist[from][to] {
                    dist[from][to] = w;
                }
            }

            // Floyd-Warshall longest paths.
            for k in 0..n {
                for i in 0..n {
                    if dist[i][k] == i64::MIN {
                        continue;
                    }
                    for j in 0..n {
                        if dist[k][j] == i64::MIN {
                            continue;
                        }
                        let candidate = dist[i][k] + dist[k][j];
                        if candidate > dist[i][j] {
                            dist[i][j] = candidate;
                        }
                    }
                }
            }
            if (0..n).any(|i| dist[i][i] > 0) {
                ii += 1;
                assert!(
                    ii <= 1 << 16,
                    "recurrence MII diverged: malformed carried dependences"
                );
                continue 'outer;
            }
            return ii;
        }
    }

    /// Finds a modulo schedule, starting at MII and increasing II until
    /// the budgeted scheduler succeeds.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is found by II = MII + 64 · span, which for a
    /// valid machine description cannot happen (at a large enough II the
    /// loop degenerates to a list schedule).
    pub fn schedule(&self, looped: &LoopBlock, stats: &mut CheckStats) -> ModuloSchedule {
        let mii = self.res_mii(looped).max(self.rec_mii(looped));
        let span = (self.mdes.max_check_time() - self.mdes.min_check_time() + 1).max(1);
        let n = looped.body.ops.len() as i32;
        let limit = mii + 64 * span + n;
        for ii in mii..=limit {
            if let Some(schedule) = self.try_ii(looped, ii, stats) {
                return schedule;
            }
        }
        panic!("no modulo schedule found up to II {limit}");
    }

    /// [`ModuloScheduler::schedule`] with a `sched/modulo` timing span,
    /// this run's counters published into `tel` under `sched/modulo/…`,
    /// and the achieved II and MII recorded as gauges (the run is still
    /// merged into `stats`).
    pub fn schedule_with_telemetry(
        &self,
        looped: &LoopBlock,
        stats: &mut CheckStats,
        tel: &mdes_telemetry::Telemetry,
    ) -> ModuloSchedule {
        let mut run = CheckStats::new();
        let schedule = {
            let _span = tel.span("sched/modulo");
            self.schedule(looped, &mut run)
        };
        run.publish(tel, "sched/modulo");
        tel.gauge_set("sched/modulo/ii", schedule.ii as f64);
        tel.gauge_set(
            "sched/modulo/mii",
            self.res_mii(looped).max(self.rec_mii(looped)) as f64,
        );
        stats.merge(&run);
        schedule
    }

    /// One budgeted scheduling attempt at a fixed II.
    fn try_ii(
        &self,
        looped: &LoopBlock,
        ii: i32,
        stats: &mut CheckStats,
    ) -> Option<ModuloSchedule> {
        let body = &looped.body;
        let n = body.ops.len();
        if n == 0 {
            return Some(ModuloSchedule {
                ii,
                cycles: Vec::new(),
                selections: Vec::new(),
            });
        }
        let graph = DepGraph::build(body, self.mdes);
        let heights = graph.heights();

        let mut cycles: Vec<Option<i32>> = vec![None; n];
        let mut selections: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut last_forced: Vec<i32> = vec![-1; n];
        let mut mrt = RuMap::new();
        let mut budget = self.budget_per_op * n;

        // Worklist in priority order: height desc, program order asc.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));

        loop {
            let Some(&op) = order.iter().find(|&&i| cycles[i].is_none()) else {
                let cycles: Vec<i32> = cycles.into_iter().map(Option::unwrap).collect();
                let schedule = ModuloSchedule {
                    ii,
                    cycles,
                    selections,
                };
                debug_assert!(schedule.verify(looped, self.mdes).is_ok());
                return Some(schedule);
            };
            if budget == 0 {
                return None;
            }
            budget -= 1;

            let est = self.earliest_start(op, &graph, looped, &cycles, ii);

            // Try every slot in one II window.
            let mut placed = false;
            for slot in est..est + ii {
                stats.begin_attempt();
                if let Some(selection) =
                    self.try_reserve_modulo(&mut mrt, body.ops[op].class, slot, ii, stats)
                {
                    stats.end_attempt(true);
                    cycles[op] = Some(slot);
                    selections[op] = selection;
                    placed = true;
                    break;
                }
                stats.end_attempt(false);
            }

            if !placed {
                // Force placement and evict conflicting operations —
                // the unscheduling that reservation tables make possible.
                let slot = est.max(last_forced[op] + 1);
                last_forced[op] = slot;
                self.force_place(op, slot, ii, body, &mut mrt, &mut cycles, &mut selections);
                cycles[op] = Some(slot);
            }

            // Evict scheduled operations whose dependences the new
            // placement violates; they will be rescheduled.
            let placed_cycle = cycles[op].unwrap();
            let mut evict: Vec<usize> = Vec::new();
            for edge in &graph.succs[op] {
                if let Some(to_cycle) = cycles[edge.to] {
                    if to_cycle < placed_cycle + edge.latency {
                        evict.push(edge.to);
                    }
                }
            }
            for edge in &graph.preds[op] {
                if let Some(from_cycle) = cycles[edge.from] {
                    if placed_cycle < from_cycle + edge.latency {
                        evict.push(edge.from);
                    }
                }
            }
            for &(from, to, latency, distance) in &looped.carried {
                if from == op || to == op {
                    if let (Some(fc), Some(tc)) = (cycles[from], cycles[to]) {
                        if tc + ii * (distance as i32) < fc + latency {
                            evict.push(if from == op { to } else { from });
                        }
                    }
                }
            }
            for victim in evict {
                if victim != op {
                    self.unschedule(victim, ii, &mut mrt, &mut cycles, &mut selections);
                }
            }
        }
    }

    /// Earliest start given currently scheduled predecessors (intra and
    /// carried).
    fn earliest_start(
        &self,
        op: usize,
        graph: &DepGraph,
        looped: &LoopBlock,
        cycles: &[Option<i32>],
        ii: i32,
    ) -> i32 {
        let mut est = 0i32;
        let consider = |est: &mut i32, edge: &Edge, cycles: &[Option<i32>]| {
            if let Some(from_cycle) = cycles[edge.from] {
                *est = (*est).max(from_cycle + edge.latency);
            }
        };
        for edge in &graph.preds[op] {
            consider(&mut est, edge, cycles);
        }
        for &(from, to, latency, distance) in &looped.carried {
            if to == op {
                if let Some(from_cycle) = cycles[from] {
                    est = est.max(from_cycle + latency - ii * (distance as i32));
                }
            }
        }
        est.max(0)
    }

    /// Modulo-wrapped variant of the core checker: probes and reserves in
    /// MRT slots `(time + check.time) mod ii`.
    fn try_reserve_modulo(
        &self,
        mrt: &mut RuMap,
        class: ClassId,
        time: i32,
        ii: i32,
        stats: &mut CheckStats,
    ) -> Option<Vec<u32>> {
        let compiled = self.mdes.class(class);
        let mut selected: Vec<u32> = Vec::with_capacity(compiled.or_trees.len());
        for &tree_idx in &compiled.or_trees {
            let tree = &self.mdes.or_trees()[tree_idx as usize];
            let mut found = None;
            'options: for &opt_idx in &tree.options {
                stats.count_option();
                for check in self.mdes.option_checks(opt_idx as usize) {
                    stats.count_check();
                    if !mrt.is_free((time + check.time).rem_euclid(ii), check.mask) {
                        continue 'options;
                    }
                }
                found = Some(opt_idx);
                break;
            }
            match found {
                Some(opt_idx) => {
                    self.apply_modulo(mrt, opt_idx, time, ii, true);
                    selected.push(opt_idx);
                }
                None => {
                    for &opt_idx in &selected {
                        self.apply_modulo(mrt, opt_idx, time, ii, false);
                    }
                    return None;
                }
            }
        }
        Some(selected)
    }

    fn apply_modulo(&self, mrt: &mut RuMap, opt_idx: u32, time: i32, ii: i32, set: bool) {
        for check in self.mdes.option_checks(opt_idx as usize) {
            let slot = (time + check.time).rem_euclid(ii);
            if set {
                mrt.reserve(slot, check.mask);
            } else {
                mrt.release(slot, check.mask);
            }
        }
    }

    /// Places `op` at `slot` unconditionally, evicting every scheduled
    /// operation whose reservations collide with the op's
    /// highest-priority selection.
    #[allow(clippy::too_many_arguments)]
    fn force_place(
        &self,
        op: usize,
        slot: i32,
        ii: i32,
        body: &Block,
        mrt: &mut RuMap,
        cycles: &mut [Option<i32>],
        selections: &mut [Vec<u32>],
    ) {
        // The forced selection: highest-priority option of every tree.
        let compiled = self.mdes.class(body.ops[op].class);
        let forced: Vec<u32> = compiled
            .or_trees
            .iter()
            .map(|&t| self.mdes.or_trees()[t as usize].options[0])
            .collect();

        // Evict conflicting ops.
        let conflicts = |selection: &[u32], at: i32| -> bool {
            for &mine in &forced {
                for my_check in self.mdes.option_checks(mine as usize) {
                    let my_slot = (slot + my_check.time).rem_euclid(ii);
                    for &theirs in selection {
                        for their_check in self.mdes.option_checks(theirs as usize) {
                            let their_slot = (at + their_check.time).rem_euclid(ii);
                            if my_slot == their_slot && my_check.mask & their_check.mask != 0 {
                                return true;
                            }
                        }
                    }
                }
            }
            false
        };
        let victims: Vec<usize> = (0..cycles.len())
            .filter(|&i| {
                i != op && cycles[i].is_some() && conflicts(&selections[i], cycles[i].unwrap())
            })
            .collect();
        for victim in victims {
            self.unschedule(victim, ii, mrt, cycles, selections);
        }

        for &opt_idx in &forced {
            self.apply_modulo(mrt, opt_idx, slot, ii, true);
        }
        selections[op] = forced;
    }

    fn unschedule(
        &self,
        op: usize,
        ii: i32,
        mrt: &mut RuMap,
        cycles: &mut [Option<i32>],
        selections: &mut [Vec<u32>],
    ) {
        if let Some(cycle) = cycles[op].take() {
            for &opt_idx in &selections[op] {
                self.apply_modulo(mrt, opt_idx, cycle, ii, false);
            }
            selections[op].clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{Op, Reg};
    use mdes_core::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::UsageEncoding;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(mdes_core::ResourceId::from_index(r), t)
    }

    /// One memory unit + two ALUs, all single-cycle issue.
    fn pipe_mdes() -> CompiledMdes {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("M").unwrap(); // r0
        spec.resources_mut().add_indexed("ALU", 2).unwrap(); // r1 r2
        let m = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let mem = spec.add_or_tree(OrTree::new(vec![m]));
        let alu_opts: Vec<_> = (1..3)
            .map(|a| spec.add_option(TableOption::new(vec![u(a, 0)])))
            .collect();
        let alu = spec.add_or_tree(OrTree::new(alu_opts));
        spec.add_class(
            "load",
            Constraint::Or(mem),
            Latency::with_mem(2, 1),
            OpFlags::load(),
        )
        .unwrap();
        spec.add_class("alu", Constraint::Or(alu), Latency::new(1), OpFlags::none())
            .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    fn simple_loop(mdes: &CompiledMdes, loads: usize, alus: usize) -> LoopBlock {
        let load = mdes.class_by_name("load").unwrap();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut body = Block::new();
        for i in 0..loads {
            body.push(Op::new(load, vec![Reg(i as u32)], vec![Reg(100)]));
        }
        for i in 0..alus {
            body.push(Op::new(
                alu,
                vec![Reg(50 + i as u32)],
                vec![Reg((i % loads.max(1)) as u32)],
            ));
        }
        LoopBlock {
            body,
            carried: Vec::new(),
        }
    }

    #[test]
    fn res_mii_is_driven_by_the_busiest_resource() {
        let mdes = pipe_mdes();
        let scheduler = ModuloScheduler::new(&mdes);
        // 3 loads on one memory unit → ResMII 3; 4 ALU ops on two ALUs
        // contribute 4 uses of ALU[0] first option... ResMII counts the
        // first option, so ALU[1] is never counted: 4 loads of ALU[0].
        let looped = simple_loop(&mdes, 3, 2);
        assert!(scheduler.res_mii(&looped) >= 3);
    }

    #[test]
    fn achieves_res_mii_on_resource_bound_loop() {
        let mdes = pipe_mdes();
        let scheduler = ModuloScheduler::new(&mdes);
        let looped = simple_loop(&mdes, 3, 0);
        let mut stats = CheckStats::new();
        let schedule = scheduler.schedule(&looped, &mut stats);
        assert_eq!(schedule.ii, 3);
        schedule.verify(&looped, &mdes).unwrap();
    }

    #[test]
    fn rec_mii_accounts_for_carried_recurrences() {
        let mdes = pipe_mdes();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut body = Block::new();
        // r1 = r1 + 1 chain of 3 ops, carried back with distance 1.
        body.push(Op::new(alu, vec![Reg(1)], vec![Reg(0)]));
        body.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]));
        body.push(Op::new(alu, vec![Reg(3)], vec![Reg(2)]));
        let looped = LoopBlock {
            body,
            carried: vec![(2, 0, 1, 1)], // op2 feeds op0 next iteration
        };
        let scheduler = ModuloScheduler::new(&mdes);
        // Cycle: 0→1→2 (lat 1 each) then 2→0 carried lat 1 = total 3 over
        // distance 1 → RecMII 3.
        assert_eq!(scheduler.rec_mii(&looped), 3);
        let mut stats = CheckStats::new();
        let schedule = scheduler.schedule(&looped, &mut stats);
        assert_eq!(schedule.ii, 3);
        schedule.verify(&looped, &mdes).unwrap();
    }

    #[test]
    fn contended_loop_forces_evictions_and_still_verifies() {
        let mdes = pipe_mdes();
        let scheduler = ModuloScheduler::new(&mdes).with_budget(8);
        // Heavy contention: 4 loads + 4 dependent ALUs.
        let looped = simple_loop(&mdes, 4, 4);
        let mut stats = CheckStats::new();
        let schedule = scheduler.schedule(&looped, &mut stats);
        assert!(schedule.ii >= 4, "memory unit bounds II at 4");
        schedule.verify(&looped, &mdes).unwrap();
    }

    #[test]
    fn empty_loop_schedules_at_ii_one() {
        let mdes = pipe_mdes();
        let scheduler = ModuloScheduler::new(&mdes);
        let looped = LoopBlock::default();
        let mut stats = CheckStats::new();
        let schedule = scheduler.schedule(&looped, &mut stats);
        assert_eq!(schedule.ii, 1);
        assert!(schedule.cycles.is_empty());
    }

    #[test]
    fn verify_rejects_broken_modulo_schedules() {
        let mdes = pipe_mdes();
        let scheduler = ModuloScheduler::new(&mdes);
        let looped = simple_loop(&mdes, 2, 0);
        let mut stats = CheckStats::new();
        let mut schedule = scheduler.schedule(&looped, &mut stats);
        schedule.verify(&looped, &mdes).unwrap();
        // Collapse both loads into one MRT slot.
        schedule.cycles[1] = schedule.cycles[0];
        assert!(schedule.verify(&looped, &mdes).is_err());
    }
}
