//! The MDES-driven, multi-platform list scheduler.
//!
//! Cycle-driven greedy list scheduling: at each cycle, data-ready
//! operations are tried in priority order (critical-path height); each
//! try is one *scheduling attempt* against the MDES constraint checker,
//! so the statistics match the paper's accounting (on the paper's
//! workloads roughly half of all attempts fail and are retried in a later
//! cycle — Section 2, Figure 2).
//!
//! The same scheduler drives every machine: retargeting is a matter of
//! supplying a different compiled MDES, which is the portability claim of
//! the two-tier model.

use mdes_core::{Checker, Choice, CompiledMdes, OptionHints, RuMap};

use crate::depgraph::DepGraph;
use crate::operation::Block;
use crate::CheckStats;

/// Where one operation landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Issue cycle.
    pub cycle: i32,
    /// The reservation selection (kept so the operation can be
    /// unscheduled — the capability finite-state-automata approaches
    /// lack, Section 10).
    pub choice: Choice,
}

/// A complete schedule of one basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Per-operation placement, indexed like `Block::ops`.
    pub ops: Vec<ScheduledOp>,
    /// Scheduling attempts spent on each operation (1 = first try
    /// succeeded).  Feeds the per-class attempt breakdowns of the
    /// paper's Tables 1–4.
    pub attempts: Vec<u32>,
    /// Schedule length in cycles (last issue cycle + 1).
    pub length: i32,
}

impl Schedule {
    /// Issue cycles only (for schedule-equality assertions).
    pub fn cycles(&self) -> Vec<i32> {
        self.ops.iter().map(|s| s.cycle).collect()
    }

    /// Checks that the schedule satisfies every dependence of `graph` and
    /// reserves resources without conflict under `mdes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
    /// use mdes_sched::{Block, DepGraph, ListScheduler, Op, Reg};
    ///
    /// let spec = mdes_lang::compile("
    ///     resource ALU;
    ///     or_tree T = first_of({ ALU @ 0 });
    ///     class alu { constraint = T; latency = 1; }
    /// ").unwrap();
    /// let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    /// let alu = mdes.class_by_name("alu").unwrap();
    /// let mut block = Block::new();
    /// block.push(Op::new(alu, vec![Reg(1)], vec![]));
    ///
    /// let mut stats = CheckStats::new();
    /// let mut schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
    /// let graph = DepGraph::build(&block, &mdes);
    /// assert!(schedule.verify(&graph, &mdes).is_ok());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn verify(&self, graph: &DepGraph, mdes: &CompiledMdes) -> Result<(), String> {
        for edges in &graph.succs {
            for edge in edges {
                let from = self.ops[edge.from].cycle;
                let to = self.ops[edge.to].cycle;
                if to < from + edge.latency {
                    return Err(format!(
                        "dependence {}→{} ({:?}, latency {}) violated: cycles {} → {}",
                        edge.from, edge.to, edge.kind, edge.latency, from, to
                    ));
                }
            }
        }

        // Replay all reservations and ensure no resource is claimed twice.
        let mut ru = RuMap::new();
        for (index, placed) in self.ops.iter().enumerate() {
            for &opt_idx in &placed.choice.selected {
                for check in mdes.option_checks(opt_idx as usize) {
                    let cycle = placed.cycle + check.time;
                    if !ru.is_free(cycle, check.mask) {
                        return Err(format!(
                            "operation {index} double-books resources at cycle {cycle} (mask {:#x})",
                            check.mask
                        ));
                    }
                    ru.reserve(cycle, check.mask);
                }
            }
        }
        Ok(())
    }
}

/// Reusable mutable state for repeated list-scheduling runs.
///
/// One instance serves any number of sequential [`ListScheduler`] runs —
/// the engine gives each *worker* one scratch that persists across all
/// jobs it executes, so the per-job cost drops to resets instead of
/// allocations: the RU map keeps its grown cycle window (`RuMap::clear`
/// zeroes occupancy without shrinking), the solver vectors keep their
/// capacity, and the hint table (when hinting is on) keeps its
/// allocation while being cleared back to the fresh state.
///
/// Every `schedule*_reusing` entry point resets all of this **on
/// entry**, so a scratch left in an arbitrary state — including by a
/// run that panicked mid-schedule — never influences the next run.
/// That entry-reset discipline is what makes the engine's determinism
/// contract (schedules independent of worker count and job order)
/// survive state reuse.
#[derive(Debug, Default)]
pub struct SchedScratch {
    ru: RuMap,
    placed: Vec<Option<ScheduledOp>>,
    unscheduled_preds: Vec<usize>,
    ready_time: Vec<i32>,
    order: Vec<usize>,
    hints: Option<OptionHints>,
}

impl SchedScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> SchedScratch {
        SchedScratch::default()
    }
}

/// Operation priority function for list scheduling.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Critical-path height, greatest first (the conventional choice and
    /// the one the paper's scheduler uses).
    #[default]
    Height,
    /// Least slack first: operations with the smallest difference between
    /// their as-late-as-possible and as-soon-as-possible start times.
    Slack,
    /// Original program order (a deliberately weak baseline).
    SourceOrder,
}

/// The list scheduler over one compiled MDES.
#[derive(Copy, Clone, Debug)]
pub struct ListScheduler<'a> {
    mdes: &'a CompiledMdes,
    priority: Priority,
    hints: bool,
}

impl<'a> ListScheduler<'a> {
    /// Creates a scheduler for `mdes` with the conventional critical-path
    /// priority.
    pub fn new(mdes: &'a CompiledMdes) -> ListScheduler<'a> {
        ListScheduler {
            mdes,
            priority: Priority::Height,
            hints: false,
        }
    }

    /// Selects a different priority function.
    pub fn with_priority(mut self, priority: Priority) -> ListScheduler<'a> {
        self.priority = priority;
        self
    }

    /// Enables hint-first option ordering: the checker probes each
    /// OR-tree's most-recently-successful option before falling back to
    /// the priority scan.  Hint state is owned by each `schedule*` call,
    /// so the same block always yields the same schedule — but because a
    /// lower-priority option can win when the hinted one matches first,
    /// hinted schedules may pick different options than the paper's
    /// strict-priority accounting.  Leave off for paper reproduction.
    pub fn with_hints(mut self, hints: bool) -> ListScheduler<'a> {
        self.hints = hints;
        self
    }

    /// The priority order the forward scheduler uses: fills `order` with
    /// a permutation of operation indices, most urgent first.
    fn priority_order_into(&self, graph: &DepGraph, heights: &[i32], order: &mut Vec<usize>) {
        let n = graph.num_ops;
        order.clear();
        order.extend(0..n);
        match self.priority {
            Priority::Height => {
                order.sort_by_key(|&i| (std::cmp::Reverse(heights[i]), i));
            }
            Priority::Slack => {
                // ASAP from predecessors; ALAP = critical path - height.
                let mut asap = vec![0i32; n];
                for i in 0..n {
                    for edge in &graph.preds[i] {
                        asap[i] = asap[i].max(asap[edge.from] + edge.latency);
                    }
                }
                let critical = heights.iter().copied().max().unwrap_or(0);
                order.sort_by_key(|&i| ((critical - heights[i]) - asap[i], i));
            }
            Priority::SourceOrder => {}
        }
    }

    /// Schedules `block` forward, accumulating checker statistics into
    /// `stats`.
    ///
    /// # Panics
    ///
    /// Panics if the machine description can never issue some operation
    /// (the scheduler would loop forever); a validated description of a
    /// real machine always can on an empty machine.
    pub fn schedule(&self, block: &Block, stats: &mut CheckStats) -> Schedule {
        let graph = DepGraph::build(block, self.mdes);
        self.schedule_with_graph(block, &graph, stats)
    }

    /// The reset-and-reuse entry point: schedules `block` against
    /// borrowed scratch state instead of allocating fresh per-run state.
    ///
    /// Produces exactly the schedule and statistics [`ListScheduler::schedule`]
    /// would — the scratch is fully reset on entry (see [`SchedScratch`]),
    /// so reuse is invisible in the results and only visible in the
    /// allocator profile.  This is what the engine's workers call for
    /// every job they claim.
    ///
    /// # Panics
    ///
    /// Panics if the machine description can never issue some operation,
    /// like [`ListScheduler::schedule`].
    pub fn schedule_reusing(
        &self,
        block: &Block,
        scratch: &mut SchedScratch,
        stats: &mut CheckStats,
    ) -> Schedule {
        let graph = DepGraph::build(block, self.mdes);
        self.schedule_with_graph_reusing(block, &graph, scratch, stats)
    }

    /// [`ListScheduler::schedule`] with a `sched/list` timing span and
    /// this run's counters published into `tel` under `sched/list/…`
    /// (the run is still merged into `stats`, so existing accounting is
    /// unchanged).
    pub fn schedule_with_telemetry(
        &self,
        block: &Block,
        stats: &mut CheckStats,
        tel: &mdes_telemetry::Telemetry,
    ) -> Schedule {
        let mut run = CheckStats::new();
        let schedule = {
            let _span = tel.span("sched/list");
            self.schedule(block, &mut run)
        };
        run.publish(tel, "sched/list");
        stats.merge(&run);
        schedule
    }

    /// Schedules `block` with a pre-built dependence graph.
    pub fn schedule_with_graph(
        &self,
        block: &Block,
        graph: &DepGraph,
        stats: &mut CheckStats,
    ) -> Schedule {
        self.schedule_with_graph_reusing(block, graph, &mut SchedScratch::new(), stats)
    }

    /// [`ListScheduler::schedule_with_graph`] against borrowed scratch
    /// state — the forward cycle-driven core all other entry points
    /// bottom out in.
    pub fn schedule_with_graph_reusing(
        &self,
        block: &Block,
        graph: &DepGraph,
        scratch: &mut SchedScratch,
        stats: &mut CheckStats,
    ) -> Schedule {
        let n = block.ops.len();
        if n == 0 {
            return Schedule {
                ops: Vec::new(),
                attempts: Vec::new(),
                length: 0,
            };
        }
        let checker = Checker::new(self.mdes);
        let heights = graph.heights();

        // Reset every piece of borrowed state on entry: a cleared RU map
        // is observationally a fresh one (the window placement is not a
        // contract surface), and cleared hint state is exactly what a
        // fresh run starts from — schedules depend only on the block,
        // never on what was scheduled before.
        let SchedScratch {
            ru,
            placed,
            unscheduled_preds,
            ready_time,
            order,
            hints: hint_slot,
        } = scratch;
        ru.clear();
        placed.clear();
        placed.resize(n, None);
        unscheduled_preds.clear();
        unscheduled_preds.extend(graph.preds.iter().map(Vec::len));
        ready_time.clear();
        ready_time.resize(n, 0);
        let hints = if self.hints {
            let hints = hint_slot.get_or_insert_with(|| OptionHints::new(self.mdes));
            hints.reset_for(self.mdes);
            Some(hints)
        } else {
            None
        };

        let mut attempts: Vec<u32> = vec![0; n];
        let mut remaining = n;
        let mut cycle = 0i32;

        // An operation can always issue on an empty machine, so the
        // schedule can never exceed (critical path + n * max span) by
        // much; use a generous bound to catch broken descriptions.
        let span = (self.mdes.max_check_time() - self.mdes.min_check_time() + 1).max(1);
        let height_bound: i32 = heights.iter().copied().max().unwrap_or(0);
        let limit = height_bound + (n as i32 + 4) * span + 64;

        self.priority_order_into(graph, &heights, order);

        let mut hints = hints;
        while remaining > 0 {
            assert!(
                cycle <= limit,
                "scheduler exceeded cycle bound {limit}: some operation can never issue"
            );
            for &op in order.iter() {
                if placed[op].is_some() || unscheduled_preds[op] > 0 || ready_time[op] > cycle {
                    continue;
                }
                let class = block.ops[op].class;
                attempts[op] += 1;
                let choice = match hints.as_deref_mut() {
                    Some(h) => checker.try_reserve_hinted(ru, class, cycle, stats, h),
                    None => checker.try_reserve(ru, class, cycle, stats),
                };
                if let Some(choice) = choice {
                    stats.count_operation();
                    placed[op] = Some(ScheduledOp { cycle, choice });
                    remaining -= 1;
                    for edge in &graph.succs[op] {
                        unscheduled_preds[edge.to] -= 1;
                        ready_time[edge.to] = ready_time[edge.to].max(cycle + edge.latency);
                    }
                }
            }
            cycle += 1;
        }

        let ops: Vec<ScheduledOp> = placed.drain(..).map(Option::unwrap).collect();
        let length = ops.iter().map(|s| s.cycle).max().unwrap_or(-1) + 1;
        Schedule {
            ops,
            attempts,
            length,
        }
    }

    /// Schedules `block` with *operation-driven* list scheduling: each
    /// operation, taken in priority order (preds first), is placed at the
    /// earliest cycle whose resources are free, probing cycle after cycle.
    ///
    /// Compared with cycle-driven scheduling this issues many more
    /// scheduling attempts per operation — the regime the paper predicts
    /// for "more advanced scheduling techniques such as … operation
    /// scheduling", where the AND/OR representation's early conflict
    /// detection pays off even more (Section 4).
    ///
    /// # Panics
    ///
    /// Panics if some operation can never issue on an empty machine.
    pub fn schedule_operation_driven(&self, block: &Block, stats: &mut CheckStats) -> Schedule {
        let graph = DepGraph::build(block, self.mdes);
        let n = block.ops.len();
        if n == 0 {
            return Schedule {
                ops: Vec::new(),
                attempts: Vec::new(),
                length: 0,
            };
        }
        let checker = Checker::new(self.mdes);
        let heights = graph.heights();

        let mut placed: Vec<Option<ScheduledOp>> = vec![None; n];
        let mut attempts: Vec<u32> = vec![0; n];
        let mut unscheduled_preds: Vec<usize> = graph.preds.iter().map(Vec::len).collect();
        let mut ru = RuMap::new();
        let span = (self.mdes.max_check_time() - self.mdes.min_check_time() + 1).max(1);
        let limit_per_op = (n as i32 + 4) * span + 64;

        for _ in 0..n {
            // Highest-priority operation whose predecessors are placed.
            let op = (0..n)
                .filter(|&i| placed[i].is_none() && unscheduled_preds[i] == 0)
                .max_by_key(|&i| (heights[i], std::cmp::Reverse(i)))
                .expect("dependence graph is acyclic");
            let est = graph.preds[op]
                .iter()
                .map(|e| placed[e.from].as_ref().unwrap().cycle + e.latency)
                .max()
                .unwrap_or(0);
            let class = block.ops[op].class;
            let mut cycle = est;
            let choice = loop {
                assert!(
                    cycle <= est + limit_per_op,
                    "operation scheduling wedged: some operation can never issue"
                );
                attempts[op] += 1;
                if let Some(choice) = checker.try_reserve(&mut ru, class, cycle, stats) {
                    break choice;
                }
                cycle += 1;
            };
            stats.count_operation();
            placed[op] = Some(ScheduledOp { cycle, choice });
            for edge in &graph.succs[op] {
                unscheduled_preds[edge.to] -= 1;
            }
        }

        let ops: Vec<ScheduledOp> = placed.into_iter().map(Option::unwrap).collect();
        let length = ops.iter().map(|s| s.cycle).max().unwrap_or(-1) + 1;
        Schedule {
            ops,
            attempts,
            length,
        }
    }

    /// Schedules `block` backward: operations are placed from the block
    /// exit toward the entry (an operation becomes ready once all its
    /// *successors* are placed), then the schedule is normalized to start
    /// at cycle 0.  Used with the backward time-shift heuristic.
    pub fn schedule_backward(&self, block: &Block, stats: &mut CheckStats) -> Schedule {
        let graph = DepGraph::build(block, self.mdes);
        let n = block.ops.len();
        if n == 0 {
            return Schedule {
                ops: Vec::new(),
                attempts: Vec::new(),
                length: 0,
            };
        }
        let checker = Checker::new(self.mdes);
        let heights = graph.heights();
        let horizon: i32 = heights.iter().copied().max().unwrap_or(0);

        let mut placed: Vec<Option<ScheduledOp>> = vec![None; n];
        let mut attempts: Vec<u32> = vec![0; n];
        let mut unscheduled_succs: Vec<usize> = graph.succs.iter().map(Vec::len).collect();
        // Latest cycle each op may occupy, given placed successors.
        let mut deadline: Vec<i32> = vec![horizon; n];
        let mut ru = RuMap::new();
        let mut remaining = n;
        let mut cycle = horizon;

        let span = (self.mdes.max_check_time() - self.mdes.min_check_time() + 1).max(1);
        let limit = horizon - ((n as i32 + 4) * span + 64);

        // Priority: *depth* (longest chain from the entry side is what
        // matters when working bottom-up); approximate with reverse
        // program order + low height first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (heights[i], std::cmp::Reverse(i)));

        while remaining > 0 {
            assert!(
                cycle >= limit,
                "backward scheduler exceeded cycle bound: some operation can never issue"
            );
            for &op in &order {
                if placed[op].is_some() || unscheduled_succs[op] > 0 || deadline[op] < cycle {
                    continue;
                }
                let class = block.ops[op].class;
                attempts[op] += 1;
                if let Some(choice) = checker.try_reserve(&mut ru, class, cycle, stats) {
                    stats.count_operation();
                    placed[op] = Some(ScheduledOp { cycle, choice });
                    remaining -= 1;
                    for edge in &graph.preds[op] {
                        unscheduled_succs[edge.from] -= 1;
                        deadline[edge.from] = deadline[edge.from].min(cycle - edge.latency);
                    }
                }
            }
            cycle -= 1;
        }

        // Normalize to start at cycle 0.
        let min_cycle = placed
            .iter()
            .map(|s| s.as_ref().unwrap().cycle)
            .min()
            .unwrap();
        let ops: Vec<ScheduledOp> = placed
            .into_iter()
            .map(|s| {
                let mut s = s.unwrap();
                s.cycle -= min_cycle;
                s.choice.time -= min_cycle;
                s
            })
            .collect();
        let length = ops.iter().map(|s| s.cycle).max().unwrap_or(-1) + 1;
        Schedule {
            ops,
            attempts,
            length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{Op, Reg};
    use mdes_core::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::{ClassId, UsageEncoding};

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(mdes_core::ResourceId::from_index(r), t)
    }

    /// Two-issue machine: 2 decoders, 1 memory unit, 2 ALUs.
    fn two_issue() -> CompiledMdes {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap(); // r0 r1
        spec.resources_mut().add("M").unwrap(); // r2
        spec.resources_mut().add_indexed("ALU", 2).unwrap(); // r3 r4

        let dec_opts: Vec<_> = (0..2)
            .map(|d| spec.add_option(TableOption::new(vec![u(d, 0)])))
            .collect();
        let dec = spec.add_or_tree(OrTree::named("Dec", dec_opts));
        let m_opt = spec.add_option(TableOption::new(vec![u(2, 0)]));
        let mem = spec.add_or_tree(OrTree::named("M", vec![m_opt]));
        let alu_opts: Vec<_> = (3..5)
            .map(|a| spec.add_option(TableOption::new(vec![u(a, 0)])))
            .collect();
        let alu = spec.add_or_tree(OrTree::named("ALU", alu_opts));

        let load_t = spec.add_and_or_tree(AndOrTree::new(vec![mem, dec]));
        let alu_t = spec.add_and_or_tree(AndOrTree::new(vec![alu, dec]));
        spec.add_class(
            "load",
            Constraint::AndOr(load_t),
            Latency::with_mem(2, 1),
            OpFlags::load(),
        )
        .unwrap();
        spec.add_class(
            "alu",
            Constraint::AndOr(alu_t),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    fn class(mdes: &CompiledMdes, name: &str) -> ClassId {
        mdes.class_by_name(name).unwrap()
    }

    #[test]
    fn independent_alu_ops_dual_issue() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..4 {
            block.push(Op::new(class(&mdes, "alu"), vec![Reg(i)], vec![]));
        }
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        // 4 independent ALU ops on a 2-issue machine: 2 cycles.
        assert_eq!(schedule.length, 2);
        assert_eq!(stats.operations, 4);
        let graph = DepGraph::build(&block, &mdes);
        schedule.verify(&graph, &mdes).unwrap();
    }

    #[test]
    fn telemetry_variant_matches_check_stats() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..4 {
            block.push(Op::new(class(&mdes, "alu"), vec![Reg(i)], vec![]));
        }
        let mut stats = CheckStats::new();
        let tel = mdes_telemetry::Telemetry::new();
        let schedule = ListScheduler::new(&mdes).schedule_with_telemetry(&block, &mut stats, &tel);
        assert_eq!(schedule.length, 2);
        let report = tel.report();
        assert_eq!(report.counter("sched/list/attempts"), Some(stats.attempts));
        assert_eq!(
            report.counter("sched/list/resource_checks"),
            Some(stats.resource_checks)
        );
        assert!(report.span("sched/list").is_some());
    }

    #[test]
    fn flow_dependences_respect_latency() {
        let mdes = two_issue();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)])); // lat 2
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        assert_eq!(schedule.ops[0].cycle, 0);
        assert_eq!(schedule.ops[1].cycle, 2);
    }

    #[test]
    fn memory_unit_serializes_loads() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..3 {
            block.push(Op::new(
                class(&mdes, "load"),
                vec![Reg(10 + i)],
                vec![Reg(i)],
            ));
        }
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let mut cycles = schedule.cycles();
        cycles.sort_unstable();
        assert_eq!(cycles, vec![0, 1, 2], "one load per cycle through M");
        // Failed attempts happened: loads competed for M.
        assert!(stats.attempts > stats.operations);
    }

    #[test]
    fn priority_prefers_critical_path() {
        let mdes = two_issue();
        let mut block = Block::new();
        // Op 0 is a leaf; op 1 feeds a chain of two.  With one ALU busy
        // the chain head must win the first decoder pair.
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(9)], vec![]));
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        assert_eq!(schedule.ops[1].cycle, 0, "chain head scheduled first");
        assert_eq!(schedule.length, 3);
    }

    #[test]
    fn all_priority_functions_produce_valid_schedules() {
        let mdes = two_issue();
        let mut block = Block::new();
        // A mix of chains and independent work.
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(3)], vec![Reg(2)]));
        for i in 0..4 {
            block.push(Op::new(class(&mdes, "alu"), vec![Reg(10 + i)], vec![]));
        }
        let graph = DepGraph::build(&block, &mdes);
        let mut lengths = Vec::new();
        for priority in [Priority::Height, Priority::Slack, Priority::SourceOrder] {
            let mut stats = CheckStats::new();
            let schedule = ListScheduler::new(&mdes)
                .with_priority(priority)
                .schedule(&block, &mut stats);
            schedule.verify(&graph, &mdes).unwrap();
            lengths.push(schedule.length);
        }
        // The critical-path priority is never worse than source order
        // on this block.
        assert!(lengths[0] <= lengths[2], "{lengths:?}");
    }

    #[test]
    fn priority_functions_are_deterministic() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..6 {
            block.push(Op::new(class(&mdes, "alu"), vec![Reg(i)], vec![]));
        }
        for priority in [Priority::Height, Priority::Slack, Priority::SourceOrder] {
            let mut a = CheckStats::new();
            let mut b = CheckStats::new();
            let s1 = ListScheduler::new(&mdes)
                .with_priority(priority)
                .schedule(&block, &mut a);
            let s2 = ListScheduler::new(&mdes)
                .with_priority(priority)
                .schedule(&block, &mut b);
            assert_eq!(s1.cycles(), s2.cycles());
        }
    }

    #[test]
    fn verify_detects_violations() {
        let mdes = two_issue();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        let mut stats = CheckStats::new();
        let mut schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let graph = DepGraph::build(&block, &mdes);
        schedule.verify(&graph, &mdes).unwrap();
        // Corrupt the schedule: consumer before producer completes.
        schedule.ops[1].cycle = 0;
        assert!(schedule.verify(&graph, &mdes).is_err());
    }

    #[test]
    fn empty_block_schedules_trivially() {
        let mdes = two_issue();
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&Block::new(), &mut stats);
        assert_eq!(schedule.length, 0);
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn operation_driven_schedule_is_valid() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..3 {
            block.push(Op::new(
                class(&mdes, "load"),
                vec![Reg(10 + i)],
                vec![Reg(i)],
            ));
        }
        for i in 0..4 {
            block.push(Op::new(
                class(&mdes, "alu"),
                vec![Reg(20 + i)],
                vec![Reg(10)],
            ));
        }
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule_operation_driven(&block, &mut stats);
        let graph = DepGraph::build(&block, &mdes);
        schedule.verify(&graph, &mdes).unwrap();
        assert_eq!(stats.operations, 7);
    }

    #[test]
    fn operation_driven_issues_at_least_as_many_attempts() {
        let mdes = two_issue();
        let mut block = Block::new();
        for i in 0..6 {
            block.push(Op::new(
                class(&mdes, "load"),
                vec![Reg(10 + i)],
                vec![Reg(0)],
            ));
        }
        let mut cycle_stats = CheckStats::new();
        ListScheduler::new(&mdes).schedule(&block, &mut cycle_stats);
        let mut op_stats = CheckStats::new();
        ListScheduler::new(&mdes).schedule_operation_driven(&block, &mut op_stats);
        assert!(op_stats.attempts >= cycle_stats.attempts);
    }

    #[test]
    fn backward_schedule_is_valid_and_normalized() {
        let mdes = two_issue();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(3)], vec![]));
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule_backward(&block, &mut stats);
        let graph = DepGraph::build(&block, &mdes);
        schedule.verify(&graph, &mdes).unwrap();
        assert_eq!(schedule.cycles().iter().min(), Some(&0));
    }

    #[test]
    fn double_booking_is_detected_by_verify() {
        let mdes = two_issue();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "load"), vec![Reg(2)], vec![Reg(0)]));
        let mut stats = CheckStats::new();
        let mut schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let graph = DepGraph::build(&block, &mdes);
        schedule.verify(&graph, &mdes).unwrap();
        // Force both loads into the same cycle: M is double-booked.
        let c0 = schedule.ops[0].cycle;
        schedule.ops[1].cycle = c0;
        assert!(schedule
            .verify(&graph, &mdes)
            .unwrap_err()
            .contains("double-books"));
    }
}
