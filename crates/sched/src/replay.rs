//! Deterministic schedule replay for the differential oracle.
//!
//! The checker-level probes in [`mdes_core::probe`] compare raw
//! reservation outcomes; this module closes the loop at the level the
//! paper actually argues about — *schedules*.  A seeded generator builds
//! synthetic basic blocks over a description's class list, the list
//! scheduler schedules them, and the per-op issue cycles are compared
//! between the pre- and post-stage descriptions.  "The exact same
//! schedule is produced in each case" (Section 4) is checked literally.
//!
//! Block generation depends only on the seed and the class count, which
//! every pipeline stage preserves, so the same blocks replay against both
//! sides of a stage boundary.

use crate::list::ListScheduler;
use crate::operation::{Block, Op, Reg};
use mdes_core::probe::ProbeRng;
use mdes_core::spec::ClassId;
use mdes_core::{CheckStats, CompiledMdes};

/// Parameters of the block generator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Master seed; each block derives its own stream.
    pub seed: u64,
    /// Number of blocks to generate.
    pub blocks: u32,
    /// Operations per block.
    pub ops_per_block: u32,
    /// Percent chance (0–100) that an op reads a prior op's result.
    pub dep_percent: u32,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            seed: 0x4d44_4553, // "MDES", matching the probe engine default
            blocks: 8,
            ops_per_block: 16,
            dep_percent: 35,
        }
    }
}

/// Generates the replay blocks for a machine with `num_classes` classes.
///
/// Op `i` writes `Reg(i)`; with probability `dep_percent` it also reads a
/// uniformly chosen earlier op's destination, producing realistic mixes of
/// dependence-bound and resource-bound regions.
pub fn replay_blocks(num_classes: usize, config: &ReplayConfig) -> Vec<Block> {
    if num_classes == 0 {
        return Vec::new();
    }
    let classes = num_classes as u32;
    (0..config.blocks)
        .map(|b| {
            let mut rng = ProbeRng::new(config.seed, 0x1000 + u64::from(b));
            let mut block = Block::new();
            for i in 0..config.ops_per_block {
                let class = ClassId::from_index(rng.gen_range(classes) as usize);
                let mut srcs = Vec::new();
                if i > 0 && rng.gen_range(100) < config.dep_percent {
                    srcs.push(Reg(rng.gen_range(i)));
                }
                block.push(Op::new(class, vec![Reg(i)], srcs));
            }
            block
        })
        .collect()
}

/// Schedules every block against `mdes` and returns the issue cycles per
/// op, in block order — the value the differential oracle compares.
pub fn replay_cycles(mdes: &CompiledMdes, blocks: &[Block]) -> Vec<Vec<i32>> {
    let scheduler = ListScheduler::new(mdes);
    blocks
        .iter()
        .map(|block| {
            let mut stats = CheckStats::new();
            scheduler.schedule(block, &mut stats).cycles()
        })
        .collect()
}

/// Replays `blocks` against both descriptions and returns the index of
/// the first block whose schedule differs, with both cycle vectors.
pub fn find_schedule_divergence(
    a: &CompiledMdes,
    b: &CompiledMdes,
    blocks: &[Block],
) -> Option<(usize, Vec<i32>, Vec<i32>)> {
    let ca = replay_cycles(a, blocks);
    let cb = replay_cycles(b, blocks);
    ca.into_iter()
        .zip(cb)
        .enumerate()
        .find(|(_, (x, y))| x != y)
        .map(|(i, (x, y))| (i, x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::UsageEncoding;

    fn compiled(src: &str) -> CompiledMdes {
        let spec = mdes_lang::compile(src).unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn block_generation_is_deterministic() {
        let config = ReplayConfig::default();
        let a = replay_blocks(3, &config);
        let b = replay_blocks(3, &config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ops, y.ops);
        }
    }

    #[test]
    fn identical_descriptions_schedule_identically() {
        let mdes = compiled(
            "resource ALU[2];
             or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
             class alu { constraint = AnyAlu; latency = 1; }",
        );
        let blocks = replay_blocks(mdes.classes().len(), &ReplayConfig::default());
        assert!(find_schedule_divergence(&mdes, &mdes, &blocks).is_none());
    }

    #[test]
    fn narrower_machine_schedules_differently() {
        let wide = compiled(
            "resource ALU[2];
             or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
             class alu { constraint = AnyAlu; latency = 1; }",
        );
        let narrow = compiled(
            "resource ALU[2];
             or_tree AnyAlu = first_of({ ALU[0] @ 0 });
             class alu { constraint = AnyAlu; latency = 1; }",
        );
        let blocks = replay_blocks(wide.classes().len(), &ReplayConfig::default());
        let (block, a, b) = find_schedule_divergence(&wide, &narrow, &blocks)
            .expect("halving issue width must change some schedule");
        assert!(block < blocks.len());
        assert_ne!(a, b);
    }
}
