//! MDES-driven schedulers: the "generic, high-quality scheduler … that can
//! be quickly targeted to a new processor" of the paper's introduction.
//!
//! * [`operation`] — the operation / basic-block model;
//! * [`depgraph`] — dependence-DAG construction with MDES latencies;
//! * [`list`] — the forward (and backward) cycle-driven list scheduler
//!   whose attempt counting matches the paper's statistics;
//! * [`modulo`] — iterative modulo scheduling (Rau \[12\]), exercising the
//!   unscheduling capability that distinguishes reservation tables from
//!   finite-state automata (Section 10);
//! * [`replay`] — deterministic seeded block replay backing the pipeline
//!   guard's schedule-level differential oracle;
//! * [`simulate`] — an in-order issue simulator that measures the
//!   "unexpected execution cycles" of scheduling with an inaccurate
//!   description (the paper's introduction).
//!
//! # Example
//!
//! ```
//! use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
//! use mdes_sched::{Block, ListScheduler, Op, Reg};
//!
//! let spec = mdes_lang::compile("
//!     resource ALU[2];
//!     or_tree AnyAlu = first_of(for a in 0..2: { ALU[a] @ 0 });
//!     class alu { constraint = AnyAlu; latency = 1; }
//! ").unwrap();
//! let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
//! let alu = mdes.class_by_name("alu").unwrap();
//!
//! let mut block = Block::new();
//! for i in 0..4 {
//!     block.push(Op::new(alu, vec![Reg(i)], vec![]));
//! }
//! let mut stats = CheckStats::new();
//! let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
//! assert_eq!(schedule.length, 2); // 4 independent ops, 2 ALUs
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod depgraph;
pub mod list;
pub mod modulo;
pub mod operation;
pub mod replay;
pub mod simulate;

pub use chart::{occupancy_chart, resource_utilization};
pub use depgraph::{DepGraph, DepKind, Edge};
pub use list::{ListScheduler, Priority, SchedScratch, Schedule, ScheduledOp};
pub use mdes_core::CheckStats;
pub use modulo::{LoopBlock, ModuloSchedule, ModuloScheduler};
pub use operation::{Block, Op, Reg};
pub use replay::{find_schedule_divergence, replay_blocks, replay_cycles, ReplayConfig};
pub use simulate::{order_of_schedule, simulate_in_order, SimResult};
