//! The operation and basic-block model the schedulers consume.
//!
//! An operation is deliberately minimal: an MDES class (which carries the
//! resource constraint, latency and semantic flags), destination and
//! source registers, and an optional mnemonic for diagnostics.  Everything
//! the scheduler needs to know about *how* the operation executes lives in
//! the machine description — that is the point of the MDES model.

use mdes_core::ClassId;

/// A virtual or architectural register number.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u32);

/// One operation of a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Op {
    /// MDES operation class.
    pub class: ClassId,
    /// Destination registers (written).
    pub dests: Vec<Reg>,
    /// Source registers (read).
    pub srcs: Vec<Reg>,
    /// Mnemonic for diagnostics (does not affect scheduling).
    pub mnemonic: String,
}

impl Op {
    /// Creates an operation.
    pub fn new(class: ClassId, dests: Vec<Reg>, srcs: Vec<Reg>) -> Op {
        Op {
            class,
            dests,
            srcs,
            mnemonic: String::new(),
        }
    }

    /// Attaches a mnemonic for diagnostics.
    pub fn with_mnemonic(mut self, mnemonic: impl Into<String>) -> Op {
        self.mnemonic = mnemonic.into();
        self
    }
}

/// A basic block: operations in original program order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Block {
    /// Operations in source order.
    pub ops: Vec<Op>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Appends an operation and returns its index.
    pub fn push(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the block has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<Op> for Block {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Block {
        Block {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_push_returns_indices_in_order() {
        let class = ClassId::from_index(0);
        let mut block = Block::new();
        assert!(block.is_empty());
        let a = block.push(Op::new(class, vec![Reg(1)], vec![]));
        let b = block.push(Op::new(class, vec![Reg(2)], vec![Reg(1)]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn from_iterator_collects_ops() {
        let class = ClassId::from_index(0);
        let block: Block = (0..3)
            .map(|i| Op::new(class, vec![Reg(i)], vec![]))
            .collect();
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn mnemonic_is_cosmetic() {
        let class = ClassId::from_index(0);
        let plain = Op::new(class, vec![], vec![Reg(0)]);
        let named = plain.clone().with_mnemonic("ld");
        assert_eq!(named.mnemonic, "ld");
        assert_eq!(named.class, plain.class);
    }
}
