//! In-order issue simulation.
//!
//! The paper's introduction motivates accurate machine descriptions by
//! the cost of inaccuracy: compilers that model the machine with
//! "easy-to-modify metrics, such as the function unit mix and operation
//! latencies … can only approximately model the complex execution
//! constraints in today's superscalar processors.  Inaccurate modeling of
//! execution constraints during compilation … As a result, unexpected
//! execution cycles arise during run time."
//!
//! This module provides the measurement instrument for that claim: an
//! in-order superscalar issue simulator driven by the *accurate* compiled
//! MDES.  Give it a block in the order some scheduler emitted it; it
//! issues operations strictly in that order, as many per cycle as the
//! machine's real dependences and resource constraints allow, stalling at
//! the first operation that cannot issue — and reports how many cycles
//! the code actually takes.  Scheduling with an approximate description
//! and simulating on the accurate one exposes exactly the "unexpected
//! execution cycles" the paper describes (see the `mdes-bench` accuracy
//! ablation).

use mdes_core::{Checker, CompiledMdes, RuMap};

use crate::depgraph::DepGraph;
use crate::operation::Block;
use crate::CheckStats;

/// Outcome of one in-order simulation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    /// Total machine cycles from first issue to last issue, inclusive.
    pub cycles: i32,
    /// Cycles in which nothing could issue (pure stall cycles).
    pub stall_cycles: i32,
    /// Operations issued (always the block size on return).
    pub issued: usize,
}

impl SimResult {
    /// Issued operations per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }
}

/// Simulates `block` issued strictly in `order` on the machine described
/// by `mdes` (the *accurate* description).
///
/// In-order superscalar semantics: each cycle, the next unissued
/// operations are issued one after another while their operands are
/// ready (per the MDES dependence latencies) and the MDES grants their
/// resources; the first blocked operation stalls itself and everything
/// behind it until the next cycle.
///
/// # Examples
///
/// ```
/// use mdes_core::{CompiledMdes, UsageEncoding};
/// use mdes_sched::{simulate_in_order, Block, Op, Reg};
///
/// let spec = mdes_lang::compile("
///     resource ALU;
///     or_tree T = first_of({ ALU @ 0 });
///     class alu { constraint = T; latency = 2; }
/// ").unwrap();
/// let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
/// let alu = mdes.class_by_name("alu").unwrap();
///
/// let mut block = Block::new();
/// block.push(Op::new(alu, vec![Reg(1)], vec![Reg(0)]));
/// block.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)])); // waits 2 cycles
/// let result = simulate_in_order(&block, &[0, 1], &mdes);
/// assert_eq!(result.cycles, 3);
/// assert_eq!(result.stall_cycles, 1);
/// ```
///
/// # Panics
///
/// Panics if `order` is not a permutation of the block's indices, or if
/// some operation can never issue (invalid description).
pub fn simulate_in_order(block: &Block, order: &[usize], mdes: &CompiledMdes) -> SimResult {
    assert_eq!(order.len(), block.len(), "order must cover the block");
    let mut seen = vec![false; block.len()];
    for &op in order {
        assert!(!seen[op], "order must be a permutation");
        seen[op] = true;
    }
    if block.is_empty() {
        return SimResult {
            cycles: 0,
            stall_cycles: 0,
            issued: 0,
        };
    }

    let graph = DepGraph::build(block, mdes);
    let checker = Checker::new(mdes);
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();

    let mut issue_cycle: Vec<Option<i32>> = vec![None; block.len()];
    let mut next = 0usize; // next position in `order` to issue
    let mut cycle = 0i32;
    let mut stall_cycles = 0i32;
    let span = (mdes.max_check_time() - mdes.min_check_time() + 1).max(1);
    let limit = (block.len() as i32 + 8) * span * 4 + 64;

    while next < order.len() {
        assert!(
            cycle <= limit,
            "in-order simulation wedged: some operation can never issue"
        );
        let issued_before = next;
        // Issue as many consecutive operations as possible this cycle.
        while next < order.len() {
            let op = order[next];
            let ready = graph.preds[op]
                .iter()
                .map(|edge| issue_cycle[edge.from].map(|c| c + edge.latency))
                .try_fold(0i32, |acc, r| r.map(|r| acc.max(r)));
            let Some(ready) = ready else {
                // A predecessor appears *later* in the issue order: the
                // order is not a topological order of the dependences.
                panic!("issue order violates dependences of the block");
            };
            if ready > cycle {
                break;
            }
            if checker
                .try_reserve(&mut ru, block.ops[op].class, cycle, &mut stats)
                .is_none()
            {
                break;
            }
            issue_cycle[op] = Some(cycle);
            next += 1;
        }
        if next == issued_before {
            stall_cycles += 1;
        }
        cycle += 1;
    }

    let first = issue_cycle.iter().flatten().min().copied().unwrap_or(0);
    let last = issue_cycle.iter().flatten().max().copied().unwrap_or(0);
    SimResult {
        cycles: last - first + 1,
        stall_cycles,
        issued: block.len(),
    }
}

/// Orders a block by a schedule: ascending issue cycle, original index
/// breaking ties (so a trailing branch stays last within its cycle).
pub fn order_of_schedule(schedule: &crate::list::Schedule) -> Vec<usize> {
    let mut order: Vec<usize> = (0..schedule.ops.len()).collect();
    order.sort_by_key(|&i| (schedule.ops[i].cycle, i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::operation::{Op, Reg};
    use mdes_core::UsageEncoding;

    /// Accurate machine: 2 issue slots but only ONE result bus.
    fn accurate() -> CompiledMdes {
        let spec = mdes_lang::compile(
            "
            resource Slot[2];
            resource Bus;
            or_tree AnySlot = first_of(for s in 0..2: { Slot[s] @ 0 });
            or_tree UseBus  = first_of({ Bus @ 1 });
            and_or_tree AluOp = all_of(UseBus, AnySlot);
            class alu { constraint = AluOp; latency = 2; }
        ",
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    /// Approximate machine: same class names, bus not modeled.
    fn approximate() -> CompiledMdes {
        let spec = mdes_lang::compile(
            "
            resource Slot[2];
            or_tree AnySlot = first_of(for s in 0..2: { Slot[s] @ 0 });
            class alu { constraint = AnySlot; latency = 2; }
        ",
        )
        .unwrap();
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    fn independent_block(mdes: &CompiledMdes, n: u32) -> Block {
        let alu = mdes.class_by_name("alu").unwrap();
        (0..n).map(|i| Op::new(alu, vec![Reg(i)], vec![])).collect()
    }

    #[test]
    fn accurate_schedule_simulates_at_its_planned_length() {
        let mdes = accurate();
        let block = independent_block(&mdes, 6);
        let mut stats = CheckStats::new();
        let schedule = ListScheduler::new(&mdes).schedule(&block, &mut stats);
        let order = order_of_schedule(&schedule);
        let result = simulate_in_order(&block, &order, &mdes);
        // One op per cycle (single result bus): planned == simulated.
        assert_eq!(schedule.length, 6);
        assert_eq!(result.cycles, schedule.length);
        assert_eq!(result.stall_cycles, 0);
    }

    #[test]
    fn approximate_schedule_pays_unexpected_cycles_on_the_real_machine() {
        let accurate = accurate();
        let approx = approximate();
        let block = independent_block(&accurate, 6);
        let mut stats = CheckStats::new();
        // The approximate scheduler believes 2 ops can issue per cycle.
        let schedule = ListScheduler::new(&approx).schedule(&block, &mut stats);
        assert_eq!(schedule.length, 3, "approx model promises 3 cycles");
        // The real machine's single result bus stretches it to 6.
        let order = order_of_schedule(&schedule);
        let result = simulate_in_order(&block, &order, &accurate);
        assert_eq!(result.cycles, 6, "unexpected execution cycles at run time");
    }

    #[test]
    fn dependences_stall_in_order_issue() {
        let mdes = accurate();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(alu, vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)])); // needs r1, lat 2
        let order = vec![0, 1];
        let result = simulate_in_order(&block, &order, &mdes);
        assert_eq!(result.cycles, 3); // issue at 0 and 2
        assert_eq!(result.stall_cycles, 1);
        assert!(result.ipc() < 1.0);
    }

    #[test]
    fn empty_block_simulates_to_zero() {
        let mdes = accurate();
        let result = simulate_in_order(&Block::new(), &[], &mdes);
        assert_eq!(result.cycles, 0);
        assert_eq!(result.issued, 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_order_is_rejected() {
        let mdes = accurate();
        let block = independent_block(&mdes, 2);
        simulate_in_order(&block, &[0, 0], &mdes);
    }

    #[test]
    #[should_panic(expected = "violates dependences")]
    fn anti_topological_order_is_rejected() {
        let mdes = accurate();
        let alu = mdes.class_by_name("alu").unwrap();
        let mut block = Block::new();
        block.push(Op::new(alu, vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(alu, vec![Reg(2)], vec![Reg(1)]));
        simulate_in_order(&block, &[1, 0], &mdes);
    }
}
