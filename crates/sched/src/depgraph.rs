//! Dependence-graph construction for basic blocks.
//!
//! Edges always point from an earlier operation to a later one (program
//! order), so the graph is a DAG and index order is a topological order.
//! Latencies come from the MDES: flow dependences use the producer
//! class's destination latency, memory dependences its memory latency
//! (which models effects like the SuperSPARC's address-generation
//! interlock).

use mdes_core::CompiledMdes;

use crate::operation::Block;

/// Why two operations are ordered.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write through a register.
    Flow,
    /// Write-after-read through a register.
    Anti,
    /// Write-after-write through a register.
    Output,
    /// Ordering through memory.
    Mem,
    /// Ordering against a branch or serializing operation.
    Control,
}

/// A dependence edge `from → to` requiring
/// `cycle(to) ≥ cycle(from) + latency`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the earlier operation.
    pub from: usize,
    /// Index of the later operation.
    pub to: usize,
    /// Minimum issue-cycle separation.
    pub latency: i32,
    /// Dependence kind.
    pub kind: DepKind,
}

/// The dependence DAG of one basic block.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepGraph {
    /// Number of operations.
    pub num_ops: usize,
    /// Outgoing edges per operation.
    pub succs: Vec<Vec<Edge>>,
    /// Incoming edges per operation.
    pub preds: Vec<Vec<Edge>>,
}

impl DepGraph {
    /// Builds the dependence graph of `block` using latencies from `mdes`.
    ///
    /// Rules (conventional list-scheduler dependences):
    ///
    /// * flow (RAW): producer → consumer, latency from
    ///   [`CompiledMdes::flow_latency`] — a declared bypass exception or
    ///   the operand read/write-time default (producer's `dest` write
    ///   time minus consumer's `src` read time, clamped to 0);
    /// * anti (WAR): reader → writer, latency 0 (the writer may issue in
    ///   the reader's cycle);
    /// * output (WAW): writer → writer, latency 1;
    /// * memory: store → load/store with the store's `mem` latency
    ///   (min 1); load → store with latency 1 (conservative aliasing — the
    ///   workload generator does not carry symbolic addresses);
    /// * control: every operation → branch with latency 0 (nothing may
    ///   issue after the branch, which block construction puts last);
    ///   serializing operations order against everything on both sides.
    ///
    /// # Panics
    ///
    /// Panics if an operation references a class not present in `mdes`.
    pub fn build(block: &Block, mdes: &CompiledMdes) -> DepGraph {
        let n = block.ops.len();
        let mut graph = DepGraph {
            num_ops: n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        };

        use std::collections::HashMap;
        let mut last_writer: HashMap<crate::operation::Reg, usize> = HashMap::new();
        let mut readers_since_write: HashMap<crate::operation::Reg, Vec<usize>> = HashMap::new();
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();
        let mut last_barrier: Option<usize> = None;

        for (i, op) in block.ops.iter().enumerate() {
            let class = mdes.class(op.class);
            let flags = class.flags;

            // Register dependences.  Flow latency follows the operand
            // read/write-time model: the consumer reads its sources
            // `src` cycles after issue, so the required issue separation
            // is producer write time minus consumer read time.
            for src in &op.srcs {
                if let Some(&writer) = last_writer.get(src) {
                    let latency = mdes.flow_latency(block.ops[writer].class, op.class);
                    graph.add(writer, i, latency, DepKind::Flow);
                }
                readers_since_write.entry(*src).or_default().push(i);
            }
            for dest in &op.dests {
                if let Some(&writer) = last_writer.get(dest) {
                    graph.add(writer, i, 1, DepKind::Output);
                }
                if let Some(readers) = readers_since_write.get(dest) {
                    for &reader in readers {
                        if reader != i {
                            graph.add(reader, i, 0, DepKind::Anti);
                        }
                    }
                }
                readers_since_write.insert(*dest, Vec::new());
                last_writer.insert(*dest, i);
            }

            // Memory dependences.
            if flags.load {
                if let Some(store) = last_store {
                    let latency = mdes.class(block.ops[store].class).latency.mem.max(1);
                    graph.add(store, i, latency, DepKind::Mem);
                }
                loads_since_store.push(i);
            }
            if flags.store {
                if let Some(store) = last_store {
                    let latency = mdes.class(block.ops[store].class).latency.mem.max(1);
                    graph.add(store, i, latency, DepKind::Mem);
                }
                for &load in &loads_since_store {
                    graph.add(load, i, 1, DepKind::Mem);
                }
                loads_since_store.clear();
                last_store = Some(i);
            }

            // Control dependences.
            if let Some(barrier) = last_barrier {
                let latency = mdes.class(block.ops[barrier].class).latency.dest.max(1);
                graph.add(barrier, i, latency, DepKind::Control);
            }
            if flags.branch || flags.serial {
                for j in 0..i {
                    if !graph.succs[j].iter().any(|e| e.to == i) {
                        graph.add(j, i, 0, DepKind::Control);
                    }
                }
                last_barrier = Some(i);
            }
        }

        graph
    }

    fn add(&mut self, from: usize, to: usize, latency: i32, kind: DepKind) {
        debug_assert!(from < to, "dependence edges must follow program order");
        let edge = Edge {
            from,
            to,
            latency,
            kind,
        };
        self.succs[from].push(edge);
        self.preds[to].push(edge);
    }

    /// Critical-path height of every operation: the longest latency chain
    /// from the operation to any leaf.  The standard list-scheduling
    /// priority (greater = more urgent).
    pub fn heights(&self) -> Vec<i32> {
        let mut heights = vec![0i32; self.num_ops];
        for i in (0..self.num_ops).rev() {
            for edge in &self.succs[i] {
                heights[i] = heights[i].max(edge.latency + heights[edge.to]);
            }
        }
        heights
    }

    /// Total edge count.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{Op, Reg};
    use mdes_core::spec::{Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::{CompiledMdes, ResourceId, UsageEncoding};

    /// A toy machine: alu (lat 1), load (lat 2, mem 2), store, branch.
    fn toy_mdes() -> CompiledMdes {
        let mut spec = MdesSpec::new();
        let alu = spec.resources_mut().add("ALU").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(alu, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class(
            "alu",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.add_class(
            "load",
            Constraint::Or(tree),
            Latency::with_mem(2, 2),
            OpFlags::load(),
        )
        .unwrap();
        spec.add_class(
            "store",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::store(),
        )
        .unwrap();
        spec.add_class(
            "br",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::branch(),
        )
        .unwrap();
        let _ = ResourceId::from_index(0);
        CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap()
    }

    fn class(mdes: &CompiledMdes, name: &str) -> mdes_core::ClassId {
        mdes.class_by_name(name).unwrap()
    }

    #[test]
    fn flow_dependence_uses_producer_latency() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)]));
        let graph = DepGraph::build(&block, &mdes);
        let edge = graph.succs[0]
            .iter()
            .find(|e| e.kind == DepKind::Flow)
            .unwrap();
        assert_eq!(edge.latency, 2);
        assert_eq!(edge.to, 1);
    }

    #[test]
    fn late_reading_consumer_cascades_to_zero_latency() {
        // A consumer with src == producer's dest can issue in the same
        // cycle — the SuperSPARC cascaded-IALU feature.
        let mut spec = MdesSpec::new();
        let alu = spec.resources_mut().add("ALU").unwrap();
        let opt = spec.add_option(TableOption::new(vec![ResourceUsage::new(alu, 0)]));
        let tree = spec.add_or_tree(OrTree::new(vec![opt]));
        spec.add_class(
            "alu",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.add_class(
            "cascade",
            Constraint::Or(tree),
            Latency::new(1).with_src(1),
            OpFlags::none(),
        )
        .unwrap();
        let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();

        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "cascade"), vec![Reg(2)], vec![Reg(1)]));
        let graph = DepGraph::build(&block, &mdes);
        let edge = graph.succs[0]
            .iter()
            .find(|e| e.kind == DepKind::Flow)
            .unwrap();
        assert_eq!(edge.latency, 0, "cascaded consumer may issue same cycle");
    }

    #[test]
    fn anti_and_output_dependences() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(1)], vec![Reg(0)])); // write r1
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)])); // read r1
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(1)], vec![Reg(3)])); // rewrite r1
        let graph = DepGraph::build(&block, &mdes);
        assert!(graph.succs[0]
            .iter()
            .any(|e| e.kind == DepKind::Output && e.to == 2 && e.latency == 1));
        assert!(graph.succs[1]
            .iter()
            .any(|e| e.kind == DepKind::Anti && e.to == 2 && e.latency == 0));
    }

    #[test]
    fn memory_dependences_are_conservative() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "store"), vec![], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(2)]));
        block.push(Op::new(class(&mdes, "store"), vec![], vec![Reg(3)]));
        let graph = DepGraph::build(&block, &mdes);
        // store0 → load1, store0 → store2, load1 → store2.
        assert!(graph.succs[0]
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.to == 1));
        assert!(graph.succs[0]
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.to == 2));
        assert!(graph.succs[1]
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.to == 2));
    }

    #[test]
    fn branch_is_a_barrier_for_preceding_ops() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "br"), vec![], vec![Reg(1)]));
        let graph = DepGraph::build(&block, &mdes);
        // Both earlier ops are ordered before the branch.
        assert!(graph.preds[2].iter().any(|e| e.from == 0));
        assert!(graph.preds[2].iter().any(|e| e.from == 1));
    }

    #[test]
    fn heights_reflect_critical_path() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "load"), vec![Reg(1)], vec![Reg(0)])); // lat 2
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(1)])); // lat 1
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(3)], vec![Reg(2)]));
        let graph = DepGraph::build(&block, &mdes);
        let heights = graph.heights();
        assert_eq!(heights, vec![3, 1, 0]);
    }

    #[test]
    fn independent_ops_have_no_edges() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(1)], vec![Reg(0)]));
        block.push(Op::new(class(&mdes, "alu"), vec![Reg(2)], vec![Reg(3)]));
        let graph = DepGraph::build(&block, &mdes);
        assert_eq!(graph.num_edges(), 0);
    }

    #[test]
    fn edges_always_point_forward() {
        let mdes = toy_mdes();
        let mut block = Block::new();
        for i in 0..6 {
            block.push(Op::new(
                class(&mdes, if i % 2 == 0 { "load" } else { "store" }),
                vec![Reg(i)],
                vec![Reg(i.wrapping_sub(1))],
            ));
        }
        let graph = DepGraph::build(&block, &mdes);
        for edges in &graph.succs {
            for edge in edges {
                assert!(edge.from < edge.to);
            }
        }
    }
}
