//! `mdesc` — the command-line MDES customizer.
//!
//! The paper's two-tier model assumes an offline step that translates the
//! high-level description into the optimized low-level file the compiler
//! loads at start-up (IMPACT's "Lmdes customizer", reference \[4\]).  This
//! binary is that step:
//!
//! ```text
//! mdesc compile <in.hmdl> [-o out.lmdes] [--no-optimize] [--expand-or]
//!               [--encoding scalar|bitvector] [--direction forward|backward]
//! mdesc optimize <in.hmdl> [--ops N] [-o out.lmdes]
//! mdesc verify  <in.hmdl> [--guard validate|oracle] [--seed N]
//!               [--inject <stage>:<fault>]
//! mdesc dump    <in.hmdl|in.lmdes> [--class NAME]
//! mdesc stats   <in.hmdl>
//! mdesc fmt     <in.hmdl>
//! mdesc check   <in.hmdl>
//! mdesc bundled <PA7100|Pentium|SuperSPARC|K5>
//! mdesc bench-serve [--machine NAME] [--jobs N] [--regions M]
//! mdesc serve   [--machine LIST|all] [--socket PATH] [--workers N] [--chaos]
//! mdesc serve-load --socket PATH [--requests N] [--pipeline D]
//!               [--machines LIST|all] [--reload-at I[@MACHINE]:PATH]
//! mdesc oracle  [--seed N] [--regions N] [--max-ops K] [--machine NAME]
//!               [--fleet N]
//! mdesc lint    [<in.hmdl>] [--machine NAME|all] [--fleet N] [--seed S]
//!               [--defects] [--json]
//! ```
//!
//! The binary is also installed as `mdes`.  The global `--metrics <path>`
//! and `--metrics-summary` flags collect pipeline/compile/scheduler
//! telemetry into a JSON file or a stderr table; see `docs/telemetry.md`.
//!
//! Diagnostics go to stderr and failures map onto distinct exit codes:
//! 1 for general errors, 2 for parse/elaboration errors, 3 for
//! structural-validation failures, and 4 for differential-oracle
//! mismatches; see `docs/robustness.md`.

mod analysis;

use std::process::ExitCode;

use mdes_core::size::measure;
use mdes_core::{lmdes, CompiledMdes, MdesSpec, UsageEncoding};
use mdes_guard::{optimize_guarded, Fault, FaultKind, GuardConfig, GuardMode, GuardedReport};
use mdes_opt::pipeline::{optimize, optimize_with_telemetry, PipelineConfig, StageId};
use mdes_opt::timeshift::Direction;
use mdes_serve::{BenchFlags, BindAddr, ImageStore, LoadOptions, ReloadEvent, ServeConfig};
use mdes_telemetry::Telemetry;

/// Exit code for usage, I/O and other general failures.
const EXIT_GENERAL: u8 = 1;
/// Exit code for parse or elaboration errors in an input description.
const EXIT_PARSE: u8 = 2;
/// Exit code for structural-validation failures (input or stage output).
const EXIT_VALIDATION: u8 = 3;
/// Exit code for differential-oracle mismatches under `--guard oracle`.
const EXIT_ORACLE: u8 = 4;
/// Exit code for perf-gate failures under `mdesc perf --baseline`.
const EXIT_PERF: u8 = 5;

/// A CLI failure: the diagnostic text plus the process exit code it maps
/// to.  Diagnostics always go to stderr (see [`main`]); stdout carries
/// only the command's requested output.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn parse(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_PARSE,
            message: message.into(),
        }
    }

    fn validation(message: impl Into<String>) -> CliError {
        CliError {
            code: EXIT_VALIDATION,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError {
            code: EXIT_GENERAL,
            message,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::from(message.to_string())
    }
}

type CliResult<T = ()> = Result<T, CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {}", err.message);
            ExitCode::from(err.code)
        }
    }
}

/// Where telemetry goes, per the global `--metrics` / `--metrics-summary`
/// flags.
struct MetricsOpts {
    json_path: Option<String>,
    summary: bool,
}

impl MetricsOpts {
    fn enabled(&self) -> bool {
        self.json_path.is_some() || self.summary
    }

    /// Writes the collected report to the requested sinks.
    fn emit(&self, tel: &Telemetry) -> CliResult {
        if !self.enabled() {
            return Ok(());
        }
        let report = tel.report();
        if let Some(path) = &self.json_path {
            // An empty report means the command failed before anything ran
            // (e.g. `--metrics` swallowed the subcommand as its path);
            // writing it would litter a useless file at a surprising path.
            if report.spans.is_empty() && report.counters.is_empty() && report.gauges.is_empty() {
                return Ok(());
            }
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        }
        if self.summary {
            eprint!("{}", report.to_table());
        }
        Ok(())
    }
}

/// Strips the global metrics flags out of the argument list (they may
/// appear anywhere, before or after the subcommand).
fn extract_metrics_flags(args: &[String]) -> CliResult<(Vec<String>, MetricsOpts)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = MetricsOpts {
        json_path: None,
        summary: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--metrics" => {
                opts.json_path = Some(iter.next().ok_or("--metrics requires a path")?.clone());
            }
            "--metrics-summary" => opts.summary = true,
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, opts))
}

fn run(args: &[String]) -> CliResult {
    let (args, metrics) = extract_metrics_flags(args)?;
    let tel = if metrics.enabled() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let result = dispatch(&args, &tel);
    // Emit whatever was collected even when the command failed: partial
    // metrics from an aborted run are still useful for diagnosis.
    metrics.emit(&tel)?;
    result
}

fn dispatch(args: &[String], tel: &Telemetry) -> CliResult {
    let Some(command) = args.first() else {
        return Err(usage().into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "compile" => compile_cmd(rest, tel),
        "optimize" => optimize_cmd(rest, tel),
        "verify" => verify_cmd(rest, tel),
        "dump" => dump_cmd(rest),
        "stats" => stats_cmd(rest),
        "fmt" => fmt_cmd(rest),
        "check" => check_cmd(rest),
        "bundled" => bundled_cmd(rest),
        "bench-serve" => bench_serve_cmd(rest, tel),
        "serve" => serve_cmd(rest, tel),
        "serve-load" => serve_load_cmd(rest, tel),
        "perf" => perf_cmd(rest, tel),
        "oracle" => oracle_cmd(rest, tel),
        "schedule" => schedule_cmd(rest, tel),
        "dot" => dot_cmd(rest),
        "lint" => lint_cmd(rest, tel),
        "diff" => diff_cmd(rest),
        "chart" => chart_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

fn usage() -> String {
    "usage: mdesc [--metrics <path>] [--metrics-summary] <command>\n\
     \n\
     global flags:\n\
     \x20 --metrics <path>    write collected telemetry as JSON to <path>\n\
     \x20 --metrics-summary   print a telemetry table to stderr on exit\n\
     \n\
     commands:\n\
     \x20 compile <in.hmdl> [-o out.lmdes] [--no-optimize] [--expand-or]\n\
     \x20         [--encoding scalar|bitvector] [--direction forward|backward]\n\
     \x20         [--guard off|validate|oracle]\n\
     \x20         translate a high-level description to an optimized LMDES image\n\
     \x20 optimize <in.hmdl> [--ops N] [--jobs N] [-o out.lmdes]\n\
     \x20         [--guard off|validate|oracle]\n\
     \x20         run the full pipeline, compile, and drive a synthetic scheduling\n\
     \x20         workload (in parallel with --jobs), collecting per-stage telemetry\n\
     \x20 verify  <in.hmdl> [--guard validate|oracle] [--seed N]\n\
     \x20         [--inject <stage>:<fault>]\n\
     \x20         run the stage-guarded pipeline and fail on any incident;\n\
     \x20         --inject plants a deliberate fault to exercise the guard\n\
     \x20 dump    <in.hmdl|in.lmdes> [--class NAME]   inspect a description\n\
     \x20 stats   <in.hmdl>                           per-stage size report\n\
     \x20 fmt     <in.hmdl>                           canonical formatting to stdout\n\
     \x20 check   <in.hmdl>                           validate only\n\
     \x20 bundled <machine>                           print a bundled description\n\
     \x20 bench-serve [--machine NAME] [--jobs N] [--regions M] [--mean-ops K]\n\
     \x20         [--seed S]\n\
     \x20         serve a synthetic region stream through the concurrent engine\n\
     \x20         and report per-worker load and jobs/sec\n\
     \x20 serve   [--machine A,B,..|all | <in.hmdl|in.lmdes>] [--socket PATH | --tcp ADDR]\n\
     \x20         [--workers N] [--queue N] [--read-timeout-ms MS] [--deadline-ms MS]\n\
     \x20         [--chaos] [--seed S]\n\
     \x20         run the fault-tolerant scheduling daemon (line-delimited JSON\n\
     \x20         protocol with pipelined request ids, per-machine shards routed\n\
     \x20         by the `machine` field, hot reload, and backpressure; see\n\
     \x20         docs/serve.md)\n\
     \x20 serve-load (--socket PATH | --tcp ADDR) [--machine NAME] [--requests N]\n\
     \x20         [--connections N] [--pipeline DEPTH] [--machines A,B,..|all]\n\
     \x20         [--jobs N] [--regions M] [--mean-ops K] [--seed S]\n\
     \x20         [--deadline-ms MS] [--max-retries N] [--reload-at I[@MACHINE]:PATH]\n\
     \x20         [--reload-corrupt-at I[@MACHINE]:PATH] [--no-verify] [--shutdown]\n\
     \x20         closed-loop verified client against a running daemon; fails if\n\
     \x20         any request is dropped or any answer is wrong.  --pipeline keeps\n\
     \x20         DEPTH requests in flight per connection (1 = serial v1 frames);\n\
     \x20         --machines sprays requests across shards round-robin;\n\
     \x20         I@MACHINE targets a reload at one shard\n\
     \x20 perf    [--seed S] [--scale F] [--reps K] [--filter SUBSTR] [--json PATH]\n\
     \x20         [--baseline PATH] [--max-regression F] [--quiet]\n\
     \x20         run the deterministic hot-path benchmark suite; with\n\
     \x20         --baseline, gate against a committed report (see docs/performance.md)\n\
     \x20 oracle  [--seed S] [--regions N] [--max-ops K] [--node-limit N]\n\
     \x20         [--machine NAME] [--fleet N]\n\
     \x20         run the exact branch-and-bound scheduler as a differential oracle\n\
     \x20         against the production schedulers (bundled machines, or --fleet N\n\
     \x20         synthetic machines with a guard-oracle fuzz pass; see docs/oracle.md)\n\
     \x20 schedule <in.hmdl> [--ops N] [--no-optimize]\n\
     \x20         drive the list scheduler over a synthetic stream and report\n\
     \x20         the paper's efficiency statistics\n\
     \x20 dot     <in.hmdl> --class NAME              Graphviz export of a constraint\n\
     \x20 lint    [<in.hmdl>] [--machine NAME|all] [--fleet N] [--seed S] [--defects]\n\
     \x20         [--json]\n\
     \x20         run the static diagnostics engine over descriptions: stable MDnnn\n\
     \x20         codes, fatal/warn/info severities, exit 3 on any fatal diagnostic;\n\
     \x20         --defects plants known-bad structure and reports analyzer recall\n\
     \x20         (see docs/analysis.md)\n\
     \x20 diff    <old.hmdl> <new.hmdl>               structural diff of two revisions\n\
     \x20 chart   <in.hmdl> [--ops N]                 schedule a block and show the RU map\n\
     \n\
     exit codes:\n\
     \x20 1 usage, I/O and other general errors\n\
     \x20 2 parse or elaboration errors in an input description\n\
     \x20 3 structural-validation failures\n\
     \x20 4 differential-oracle mismatches under --guard oracle\n\
     \x20 5 perf regression against the baseline under perf --baseline"
        .to_string()
}

/// Loads and elaborates an HMDL file, rendering diagnostics with source
/// context.
fn load_hmdl(path: &str) -> CliResult<MdesSpec> {
    load_hmdl_with(path, &Telemetry::disabled())
}

/// [`load_hmdl`] with `lang/*` spans recorded into `tel`.
///
/// Parsing runs with error recovery, so one invocation renders *every*
/// syntax error in the file, not just the first.
fn load_hmdl_with(path: &str, tel: &Telemetry) -> CliResult<MdesSpec> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    mdes_lang::compile_all_with_telemetry(&source, tel).map_err(|errors| {
        let rendered: Vec<String> = errors.iter().map(|e| e.render(&source)).collect();
        CliError::parse(format!("{path}:\n{}", rendered.join("\n")))
    })
}

fn compile_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut do_optimize = true;
    let mut expand_or = false;
    let mut encoding = UsageEncoding::BitVector;
    let mut direction = Direction::Forward;
    let mut guard = GuardMode::Off;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-o" => output = Some(iter.next().ok_or("-o requires a path")?),
            "--no-optimize" => do_optimize = false,
            "--expand-or" => expand_or = true,
            "--guard" => {
                guard = iter
                    .next()
                    .ok_or("--guard requires off, validate or oracle")?
                    .parse()?;
            }
            "--encoding" => {
                encoding = match iter.next().map(String::as_str) {
                    Some("scalar") => UsageEncoding::Scalar,
                    Some("bitvector") => UsageEncoding::BitVector,
                    other => return Err(CliError::from(format!("bad --encoding {other:?}"))),
                };
            }
            "--direction" => {
                direction = match iter.next().map(String::as_str) {
                    Some("forward") => Direction::Forward,
                    Some("backward") => Direction::Backward,
                    other => return Err(CliError::from(format!("bad --direction {other:?}"))),
                };
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("compile needs an input .hmdl file")?;
    let mut spec = load_hmdl_with(input, tel)?;

    if expand_or {
        spec = mdes_opt::expand_to_or(&spec).0;
    }
    if do_optimize {
        let config = PipelineConfig {
            direction,
            ..PipelineConfig::full()
        };
        optimize_with_guard(&mut spec, &config, guard, tel)?;
    }

    let compiled = CompiledMdes::compile_with_telemetry(&spec, encoding, tel)
        .map_err(|e| CliError::validation(e.to_string()))?;
    let image = lmdes::write(&compiled);
    let report = measure(&compiled);

    let output = output.map(str::to_string).unwrap_or_else(|| {
        let stem = input.strip_suffix(".hmdl").unwrap_or(input);
        format!("{stem}.lmdes")
    });
    std::fs::write(&output, &image).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    println!(
        "wrote {output}: {} bytes on disk, {} bytes in-compiler ({} options, {} OR-trees, {} classes)",
        image.len(),
        report.total(),
        report.num_options,
        report.num_or_trees,
        compiled.classes().len()
    );
    Ok(())
}

/// Loads either tier by sniffing the LMDES magic.
fn load_any(path: &str) -> CliResult<CompiledMdes> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if bytes.starts_with(lmdes::MAGIC) {
        return Ok(lmdes::read(&bytes).map_err(|e| format!("{path}: {e}"))?);
    }
    let source = String::from_utf8(bytes).map_err(|_| format!("`{path}` is not UTF-8 HMDL"))?;
    let spec = mdes_lang::compile_all(&source).map_err(|errors| {
        let rendered: Vec<String> = errors.iter().map(|e| e.render(&source)).collect();
        CliError::parse(format!("{path}:\n{}", rendered.join("\n")))
    })?;
    CompiledMdes::compile(&spec, UsageEncoding::BitVector)
        .map_err(|e| CliError::validation(e.to_string()))
}

fn dump_cmd(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut class: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--class" => class = Some(iter.next().ok_or("--class requires a name")?),
            other if input.is_none() => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("dump needs an input file")?;

    // Prefer the spec-level dump for HMDL (names survive); fall back to
    // the compiled dump for LMDES images.
    if let Ok(spec) = load_hmdl(input) {
        println!(
            "{input}: {} resources, {} options, {} OR-trees, {} AND/OR-trees, {} classes, {} opcodes",
            spec.resources().len(),
            spec.num_options(),
            spec.num_or_trees(),
            spec.num_and_or_trees(),
            spec.num_classes(),
            spec.opcodes().len(),
        );
        match class {
            Some(name) => match mdes_core::pretty::class_constraint(&spec, name) {
                Some(text) => println!("\n{text}"),
                None => return Err(CliError::from(format!("class `{name}` not found"))),
            },
            None => {
                println!("\nclass                 options  latency  opcodes");
                println!("---------------------+--------+--------+--------");
                for id in spec.class_ids() {
                    let c = spec.class(id);
                    println!(
                        "{:<21}| {:>6} | {:>6} | {}",
                        c.name,
                        spec.class_option_count(id),
                        c.latency.dest,
                        spec.opcodes_of_class(id).join(" ")
                    );
                }
            }
        }
        return Ok(());
    }

    let compiled = load_any(input)?;
    println!(
        "{input}: LMDES image, {:?} encoding, {} resources, {} options, {} OR-trees, {} classes",
        compiled.encoding(),
        compiled.num_resources(),
        compiled.num_options(),
        compiled.or_trees().len(),
        compiled.classes().len()
    );
    for (i, c) in compiled.classes().iter().enumerate() {
        let id = mdes_core::ClassId::from_index(i);
        println!(
            "  {:<21} {:>6} options, latency {}",
            c.name,
            compiled.class_option_count(id),
            c.latency.dest
        );
    }
    Ok(())
}

fn stats_cmd(args: &[String]) -> CliResult {
    let input = args.first().ok_or("stats needs an input .hmdl file")?;
    let spec = load_hmdl(input)?;

    println!("=== {input} ===");
    let staged = mdes_opt::staged_report(&spec, Direction::Forward)
        .map_err(|e| CliError::validation(e.to_string()))?;
    for stage in staged {
        println!(
            "{:<48} {:>5} options {:>8} bytes  ({} probes)",
            stage.stage, stage.options, stage.bytes, stage.checks
        );
    }
    let (expanded, _) = mdes_opt::expand_to_or(&spec);
    let compiled = CompiledMdes::compile(&expanded, UsageEncoding::Scalar)
        .map_err(|e| CliError::validation(e.to_string()))?;
    let memory = measure(&compiled);
    println!(
        "{:<48} {:>5} options {:>8} bytes  ({} probes)",
        "traditional OR-tree baseline (scalar)",
        memory.num_options,
        memory.total(),
        memory.num_checks
    );
    Ok(())
}

fn fmt_cmd(args: &[String]) -> CliResult {
    let input = args.first().ok_or("fmt needs an input .hmdl file")?;
    let spec = load_hmdl(input)?;
    let printed = mdes_lang::print(&spec).map_err(|e| e.to_string())?;
    print!("{printed}");
    Ok(())
}

fn check_cmd(args: &[String]) -> CliResult {
    let input = args.first().ok_or("check needs an input .hmdl file")?;
    let spec = load_hmdl(input)?;
    println!(
        "{input}: ok ({} classes, {} options, {} opcodes)",
        spec.num_classes(),
        spec.num_options(),
        spec.opcodes().len()
    );
    Ok(())
}

/// Runs the full telemetry-instrumented flow on one description: parse
/// and elaborate, optimize, compile, then drive the list scheduler over a
/// synthetic workload so scheduler query counters land in the same
/// report.  This is the `--metrics` showcase command.
fn optimize_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut total_ops = 2_000usize;
    let mut jobs: Option<usize> = None;
    let mut encoding = UsageEncoding::BitVector;
    let mut direction = Direction::Forward;
    let mut guard = GuardMode::Off;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-o" => output = Some(iter.next().ok_or("-o requires a path")?),
            "--guard" => {
                guard = iter
                    .next()
                    .ok_or("--guard requires off, validate or oracle")?
                    .parse()?;
            }
            "--ops" => {
                total_ops = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ops requires a positive integer")?;
            }
            "--jobs" => {
                jobs = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or("--jobs requires a positive integer")?,
                );
            }
            "--encoding" => {
                encoding = match iter.next().map(String::as_str) {
                    Some("scalar") => UsageEncoding::Scalar,
                    Some("bitvector") => UsageEncoding::BitVector,
                    other => return Err(CliError::from(format!("bad --encoding {other:?}"))),
                };
            }
            "--direction" => {
                direction = match iter.next().map(String::as_str) {
                    Some("forward") => Direction::Forward,
                    Some("backward") => Direction::Backward,
                    other => return Err(CliError::from(format!("bad --direction {other:?}"))),
                };
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("optimize needs an input .hmdl file")?;

    let mut spec = load_hmdl_with(input, tel)?;
    let options_before = spec.num_options();
    let config = PipelineConfig {
        direction,
        ..PipelineConfig::full()
    };
    optimize_with_guard(&mut spec, &config, guard, tel)?;
    let compiled = std::sync::Arc::new(
        CompiledMdes::compile_with_telemetry(&spec, encoding, tel)
            .map_err(|e| CliError::validation(e.to_string()))?,
    );

    let workload =
        mdes_workload::generate_uniform(&spec, &mdes_workload::uniform_config(total_ops));
    let (stats, total_cycles) = match jobs {
        // The engine's determinism contract makes the two paths produce
        // identical schedules and counters; --jobs only changes who does
        // the work (and adds the per-worker telemetry breakdown).
        Some(jobs) => {
            let engine = mdes_engine::Engine::new(std::sync::Arc::clone(&compiled));
            let outcome = {
                let _span = tel.span("sched/list");
                engine.schedule_batch(&workload.blocks, jobs)
            };
            if !outcome.is_clean() {
                return Err(CliError::from(format!(
                    "{} worker panic(s) while scheduling",
                    outcome.worker_panics()
                )));
            }
            outcome.stats.publish(tel, "sched/list");
            outcome.publish(tel, "engine");
            (outcome.stats.clone(), outcome.total_cycles())
        }
        None => {
            let scheduler = mdes_sched::ListScheduler::new(&compiled);
            let mut stats = mdes_core::CheckStats::new();
            let mut total_cycles = 0i64;
            {
                let _span = tel.span("sched/list");
                for block in &workload.blocks {
                    let schedule = scheduler.schedule(block, &mut stats);
                    total_cycles += i64::from(schedule.length);
                }
            }
            // Publish the aggregate once so the report's counters equal
            // the CheckStats totals for the whole workload.
            stats.publish(tel, "sched/list");
            (stats, total_cycles)
        }
    };

    if let Some(output) = output {
        let image = lmdes::write(&compiled);
        std::fs::write(output, &image).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    }
    println!(
        "{input}: {} -> {} options; scheduled {} ops in {} cycles \
         ({:.2} attempts/op, {:.2} checks/attempt)",
        options_before,
        spec.num_options(),
        workload.total_ops,
        total_cycles,
        stats.attempts_per_op(),
        stats.checks_per_attempt()
    );
    Ok(())
}

/// Runs the optimization pipeline under the requested guard mode.
///
/// `off` runs the plain pipeline.  Otherwise every stage is wrapped with
/// the structural validator — and, under `oracle`, the differential query
/// oracle — and a non-clean run fails with the guard exit codes.
fn optimize_with_guard(
    spec: &mut MdesSpec,
    config: &PipelineConfig,
    guard: GuardMode,
    tel: &Telemetry,
) -> CliResult {
    if guard == GuardMode::Off {
        optimize_with_telemetry(spec, config, tel);
        return Ok(());
    }
    let guard_config = GuardConfig {
        mode: guard,
        ..GuardConfig::default()
    };
    let report = optimize_guarded(spec, config, &guard_config, tel);
    guard_outcome(&report)
}

/// Prints a guarded run's incidents to stderr and maps them onto the
/// exit-code contract: 3 for structural-validation failures, 4 for
/// differential-oracle mismatches (the oracle code wins when both kinds
/// occurred, since an oracle incident is the stronger evidence).
fn guard_outcome(report: &GuardedReport) -> CliResult {
    if report.clean() {
        return Ok(());
    }
    for incident in &report.incidents {
        eprintln!("guard: {incident}");
    }
    let code = if report.has_oracle_incident() {
        EXIT_ORACLE
    } else {
        EXIT_VALIDATION
    };
    Err(CliError {
        code,
        message: format!("{} guard incident(s)", report.incidents.len()),
    })
}

/// Parses an `--inject` argument of the form `<stage>:<fault>`, e.g.
/// `redundancy:drop-usage`.
fn parse_fault(text: &str) -> CliResult<Fault> {
    let (stage_name, kind_name) = text
        .split_once(':')
        .ok_or_else(|| CliError::from(format!("--inject wants <stage>:<fault>, got `{text}`")))?;
    let stage = StageId::all()
        .into_iter()
        .find(|s| s.name() == stage_name)
        .ok_or_else(|| {
            let names: Vec<&str> = StageId::all().into_iter().map(StageId::name).collect();
            CliError::from(format!(
                "unknown stage `{stage_name}` (one of: {})",
                names.join(", ")
            ))
        })?;
    let kind = FaultKind::parse(kind_name).ok_or_else(|| {
        let names: Vec<&str> = FaultKind::all().into_iter().map(FaultKind::name).collect();
        CliError::from(format!(
            "unknown fault `{kind_name}` (one of: {})",
            names.join(", ")
        ))
    })?;
    Ok(Fault { stage, kind })
}

/// Runs the stage-guarded pipeline over a description and fails on any
/// incident.  With `--inject`, a deliberate fault is planted after the
/// named stage so the guard's detection can be demonstrated end to end.
fn verify_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut input: Option<&str> = None;
    let mut mode = GuardMode::Oracle;
    let mut seed: Option<u64> = None;
    let mut inject: Vec<Fault> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--guard" => {
                mode = iter
                    .next()
                    .ok_or("--guard requires validate or oracle")?
                    .parse()?;
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed requires an integer")?,
                );
            }
            "--inject" => {
                inject.push(parse_fault(
                    iter.next().ok_or("--inject requires <stage>:<fault>")?,
                )?);
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("verify needs an input .hmdl file")?;
    if mode == GuardMode::Off {
        return Err("verify needs --guard validate or --guard oracle".into());
    }

    let mut spec = load_hmdl_with(input, tel)?;
    let mut guard = GuardConfig {
        mode,
        inject,
        ..GuardConfig::default()
    };
    if let Some(seed) = seed {
        guard.seed = seed;
    }
    let report = optimize_guarded(&mut spec, &PipelineConfig::full(), &guard, tel);
    for injected in &report.injected {
        eprintln!("injected: {injected}");
    }
    guard_outcome(&report)?;
    println!(
        "{input}: guard clean ({} stages run in {mode} mode, seed {})",
        report.stages_run, guard.seed
    );
    Ok(())
}

/// Serves a synthetic region stream through the concurrent engine: one
/// shared compiled description, N workers draining the region queue.
/// Reports jobs/sec and a per-worker breakdown, and publishes the same
/// under `engine/*` in the `--metrics` report.  Exits non-zero if any
/// worker panicked (the `engine/worker_panics` counter is always
/// present, so metrics consumers can gate on it too).
fn bench_serve_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    // The workload flags are shared with `serve-load`: one parser, one
    // contract (crates/serve/src/client.rs).
    let (flags, rest) = BenchFlags::parse(args)?;
    if let Some(extra) = rest.first() {
        return Err(CliError::from(format!("unexpected argument `{extra}`")));
    }
    let BenchFlags {
        machine,
        jobs,
        regions,
        mean_ops,
        seed,
    } = flags;

    let mut spec = machine.spec();
    optimize_with_telemetry(&mut spec, &PipelineConfig::full(), tel);
    let compiled = std::sync::Arc::new(
        CompiledMdes::compile_with_telemetry(&spec, UsageEncoding::BitVector, tel)
            .map_err(|e| CliError::validation(e.to_string()))?,
    );

    let config = mdes_workload::RegionConfig::new(regions)
        .with_mean_ops(mean_ops)
        .with_seed(seed);
    let workload = mdes_workload::generate_regions(&spec, &config);

    let engine = mdes_engine::Engine::new(compiled);
    let outcome = engine.schedule_batch(&workload.blocks, jobs);
    outcome.publish(tel, "engine");

    println!(
        "{}: served {} regions ({} ops) on {} worker(s): {:.0} jobs/sec, \
         {} cycles, {:.2} checks/attempt",
        machine.name(),
        outcome.completed(),
        workload.total_ops,
        outcome.workers.len(),
        outcome.jobs_per_sec(),
        outcome.total_cycles(),
        outcome.stats.checks_per_attempt()
    );
    for worker in &outcome.workers {
        println!(
            "  worker{}: {} jobs, {} steals, {} checks, busy {:.3}ms, queue wait {:.3}ms",
            worker.load.worker,
            worker.load.jobs,
            worker.load.steals,
            worker.stats.resource_checks,
            worker.load.busy_nanos as f64 / 1e6,
            worker.load.queue_wait_nanos as f64 / 1e6,
        );
    }
    if !outcome.is_clean() {
        return Err(CliError::from(format!(
            "{} worker panic(s) while serving the batch",
            outcome.worker_panics()
        )));
    }
    Ok(())
}

/// Maps a reload/boot rejection onto the CLI exit-code ladder (the wire
/// error numbers 1–4 and the exit codes agree by contract).
fn reload_error(err: mdes_serve::ReloadError) -> CliError {
    CliError {
        code: err.code().num() as u8,
        message: err.message().to_string(),
    }
}

/// Resolves one machine name (case-insensitive) to a bundled machine.
fn bundled_machine(name: &str) -> CliResult<mdes_machines::Machine> {
    mdes_machines::Machine::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::from(format!(
                "unknown machine `{name}` (PA7100, Pentium, SuperSPARC, K5)"
            ))
        })
}

/// Parses a `--machine`/`--machines` operand: a comma-separated list of
/// bundled machine names, or `all` for every bundled machine.
fn machine_list(spec: &str) -> CliResult<Vec<mdes_machines::Machine>> {
    if spec.eq_ignore_ascii_case("all") {
        return Ok(mdes_machines::Machine::all().into_iter().collect());
    }
    let mut machines = Vec::new();
    for name in spec.split(',').filter(|n| !n.is_empty()) {
        let machine = bundled_machine(name)?;
        if machines.contains(&machine) {
            return Err(CliError::from(format!("machine `{name}` listed twice")));
        }
        machines.push(machine);
    }
    if machines.is_empty() {
        return Err(CliError::from("--machine requires at least one name"));
    }
    Ok(machines)
}

/// Runs the scheduling daemon until a client sends the `shutdown` verb.
/// Serves one or more bundled machines (`--machine a,b,c` or
/// `--machine all` boots one shard per name) or a vetted description
/// file; see `docs/serve.md` for the protocol.
fn serve_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut machines: Vec<mdes_machines::Machine> = Vec::new();
    let mut input: Option<&str> = None;
    let mut addr: Option<BindAddr> = None;
    let mut config = ServeConfig::default();
    let positive = |v: Option<&String>, flag: &str| -> CliResult<usize> {
        v.and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::from(format!("{flag} requires a positive integer")))
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--machine" => {
                let spec = iter.next().ok_or("--machine requires a name")?;
                machines = machine_list(spec)?;
            }
            "--socket" => {
                addr = Some(BindAddr::Unix(
                    iter.next().ok_or("--socket requires a path")?.into(),
                ));
            }
            "--tcp" => {
                addr = Some(BindAddr::Tcp(
                    iter.next().ok_or("--tcp requires an address")?.clone(),
                ));
            }
            "--workers" => config.workers = positive(iter.next(), "--workers")?,
            "--queue" => config.queue_capacity = positive(iter.next(), "--queue")?,
            "--read-timeout-ms" => {
                config.read_timeout_ms = positive(iter.next(), "--read-timeout-ms")? as u64;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = Some(positive(iter.next(), "--deadline-ms")? as u64);
            }
            "--chaos" => config.chaos = true,
            "--seed" => {
                config.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }

    let stores: Vec<(String, std::sync::Arc<ImageStore>)> = match (input, machines.is_empty()) {
        (Some(_), false) => {
            return Err("serve takes either --machine or an input file, not both".into())
        }
        (Some(path), true) => {
            // An input file is untrusted: it goes through the same
            // compile-and-vet path as a hot reload.
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let mdes = mdes_serve::compile_source(&bytes, config.seed).map_err(reload_error)?;
            vec![(
                path.to_string(),
                std::sync::Arc::new(ImageStore::new(mdes, path, config.seed)),
            )]
        }
        (None, _) => {
            if machines.is_empty() {
                machines.push(mdes_machines::Machine::Pa7100);
            }
            machines
                .iter()
                .map(|&m| {
                    let mdes = mdes_serve::compile_machine(m);
                    (
                        m.name().to_string(),
                        std::sync::Arc::new(ImageStore::new(mdes, m.name(), config.seed)),
                    )
                })
                .collect()
        }
    };

    let addr = addr.unwrap_or_else(|| {
        BindAddr::Unix(
            std::env::temp_dir().join(format!("mdesc-serve-{}.sock", std::process::id())),
        )
    });
    let served: Vec<&str> = stores.iter().map(|(name, _)| name.as_str()).collect();
    let served = served.join(", ");
    let handle = mdes_serve::serve_sharded(addr, stores, config)
        .map_err(|e| format!("cannot bind daemon: {e}"))?;
    match handle.addr() {
        BindAddr::Unix(path) => println!("serving `{served}` on unix socket {}", path.display()),
        BindAddr::Tcp(spec) => println!("serving `{served}` on tcp {spec}"),
    }

    // Blocks until a client sends the `shutdown` verb; the daemon drains
    // every admitted request before join returns.
    let stats = std::sync::Arc::clone(handle.stats());
    let shard_views: Vec<(String, std::sync::Arc<ImageStore>, _)> = handle
        .shards()
        .iter()
        .map(|shard| {
            (
                shard.name().to_string(),
                std::sync::Arc::clone(shard.store()),
                std::sync::Arc::clone(shard.stats()),
            )
        })
        .collect();
    handle.join();
    stats.publish(tel);
    for (name, _, shard_stats) in &shard_views {
        shard_stats.publish_shard(tel, name);
    }
    let epochs: Vec<String> = shard_views
        .iter()
        .map(|(name, store, _)| format!("{}@{}", name, store.current().epoch))
        .collect();
    println!(
        "daemon stopped ({}): answered {}, shed {}, reloads {} (+{} rejected), \
         p50 {}us, p99 {}us",
        epochs.join(", "),
        stats.answered.load(std::sync::atomic::Ordering::Relaxed),
        stats.shed.load(std::sync::atomic::Ordering::Relaxed),
        stats.reloads.load(std::sync::atomic::Ordering::Relaxed),
        stats
            .reload_failures
            .load(std::sync::atomic::Ordering::Relaxed),
        stats.latency.percentile(0.50).unwrap_or(0),
        stats.latency.percentile(0.99).unwrap_or(0),
    );
    if stats.in_flight() != 0 {
        return Err(CliError::from(format!(
            "{} admitted request(s) were never answered",
            stats.in_flight()
        )));
    }
    Ok(())
}

/// Parses a `--reload-at` / `--reload-corrupt-at` operand of the form
/// `<request-index>[@<machine>]:<path>` — the optional `@<machine>`
/// targets one shard of a multi-machine daemon.
fn parse_reload_event(text: &str, expect_rejection: bool) -> CliResult<ReloadEvent> {
    let (at, path) = text.split_once(':').ok_or_else(|| {
        CliError::from(format!(
            "reload event wants <index>[@<machine>]:<path>, got `{text}`"
        ))
    })?;
    let (at, machine) = match at.split_once('@') {
        Some((index, shard)) if !shard.is_empty() => {
            (index, Some(bundled_machine(shard)?.name().to_string()))
        }
        Some(_) => return Err(CliError::from(format!("empty machine in `{text}`"))),
        None => (at, None),
    };
    let at = at
        .parse()
        .map_err(|_| CliError::from(format!("bad reload index in `{text}`")))?;
    Ok(ReloadEvent {
        at,
        path: path.to_string(),
        machine,
        expect_rejection,
    })
}

/// The closed-loop verified client: drives `--requests` schedule
/// requests over `--connections` connections against a running daemon,
/// optionally firing scripted hot reloads, and checks every answer
/// against a locally recomputed expectation.  Exits non-zero if any
/// request was dropped, any answer was wrong, or any scripted reload
/// misbehaved.
fn serve_load_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let (flags, rest) = BenchFlags::parse(args)?;
    let mut addr: Option<BindAddr> = None;
    let mut requests = 256usize;
    let mut connections = 2usize;
    let mut pipeline = 1usize;
    let mut spray: Vec<mdes_machines::Machine> = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut max_retries = 16usize;
    let mut verify = true;
    let mut shutdown = false;
    let mut reloads: Vec<ReloadEvent> = Vec::new();
    let positive = |v: Option<&String>, flag: &str| -> CliResult<usize> {
        v.and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| CliError::from(format!("{flag} requires a positive integer")))
    };
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => {
                addr = Some(BindAddr::Unix(
                    iter.next().ok_or("--socket requires a path")?.into(),
                ));
            }
            "--tcp" => {
                addr = Some(BindAddr::Tcp(
                    iter.next().ok_or("--tcp requires an address")?.clone(),
                ));
            }
            "--requests" => requests = positive(iter.next(), "--requests")?,
            "--connections" => connections = positive(iter.next(), "--connections")?,
            "--pipeline" => pipeline = positive(iter.next(), "--pipeline")?,
            "--machines" => {
                let spec = iter.next().ok_or("--machines requires a,b,c or `all`")?;
                spray = machine_list(spec)?;
            }
            "--deadline-ms" => {
                deadline_ms = Some(positive(iter.next(), "--deadline-ms")? as u64);
            }
            "--max-retries" => max_retries = positive(iter.next(), "--max-retries")?,
            "--no-verify" => verify = false,
            "--shutdown" => shutdown = true,
            "--reload-at" => reloads.push(parse_reload_event(
                iter.next().ok_or("--reload-at requires <index>:<path>")?,
                false,
            )?),
            "--reload-corrupt-at" => reloads.push(parse_reload_event(
                iter.next()
                    .ok_or("--reload-corrupt-at requires <index>:<path>")?,
                true,
            )?),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let addr = addr.ok_or("serve-load needs --socket <path> or --tcp <addr>")?;

    // The verifier needs the source bytes of every image the daemon may
    // legitimately serve: the boot machine (or every sprayed shard's
    // machine) plus every good reload target (corrupt targets are never
    // promoted, so never serve).
    let mut known_sources = Vec::new();
    if verify {
        known_sources.push(lmdes::write(&mdes_serve::compile_machine(flags.machine)));
        for &machine in &spray {
            known_sources.push(lmdes::write(&mdes_serve::compile_machine(machine)));
        }
        for event in reloads.iter().filter(|e| !e.expect_rejection) {
            let bytes = std::fs::read(&event.path)
                .map_err(|e| format!("cannot read reload target `{}`: {e}", event.path))?;
            known_sources.push(bytes);
        }
    }

    let report = mdes_serve::run_load(&LoadOptions {
        addr,
        connections,
        requests,
        params: flags.params(),
        pipeline,
        machines: spray.iter().map(|m| m.name().to_string()).collect(),
        deadline_ms,
        reloads,
        known_sources,
        verify_responses: verify,
        shutdown_when_done: shutdown,
        max_retries,
    })?;
    report.publish(tel);
    println!("{}", report.to_json().render());
    for error in &report.errors {
        eprintln!("serve-load: {error}");
    }
    if !report.is_clean() {
        return Err(CliError::from(format!(
            "load run not clean: {} dropped, {} mismatched, {} reload surprise(s)",
            report.dropped, report.mismatches, report.reload_surprises
        )));
    }
    Ok(())
}

fn perf_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut config = mdes_perf::BenchConfig::default();
    let mut json_path: Option<&str> = None;
    let mut baseline_path: Option<&str> = None;
    let mut max_regression = 0.25f64;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
            }
            "--scale" => {
                config.scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &f64| s > 0.0)
                    .ok_or("--scale requires a positive number")?;
            }
            "--filter" => {
                config.filter = Some(iter.next().ok_or("--filter requires a substring")?.clone());
            }
            "--reps" => {
                config.reps = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &usize| r >= 1)
                    .ok_or("--reps requires a positive integer")?;
            }
            "--json" => json_path = Some(iter.next().ok_or("--json requires a path")?),
            "--baseline" => {
                baseline_path = Some(iter.next().ok_or("--baseline requires a path")?);
            }
            "--max-regression" => {
                max_regression = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .ok_or("--max-regression requires a non-negative number")?;
            }
            "--quiet" => quiet = true,
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }

    let report = {
        let _span = tel.span("perf/suite");
        mdes_perf::run_all(&config)
    };
    report.publish(tel);
    if !quiet {
        print!("{}", mdes_perf::report::render_table(&report));
    }
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write report to `{path}`: {e}"))?;
    }

    let Some(baseline_path) = baseline_path else {
        return Ok(());
    };
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let baseline = mdes_perf::Report::from_json(&text)
        .map_err(|e| format!("bad baseline `{baseline_path}`: {e}"))?;
    let floor = mdes_perf::batch_scaling_floor();
    let ceiling = mdes_perf::ORACLE_GAP_CEILING;
    let outcome = mdes_perf::compare(&report, &baseline, max_regression, floor, ceiling);
    print!("\n{}", mdes_perf::report::render_deltas(&outcome));
    println!(
        "batch_scaling floor on this host: {floor:.2}x (hardware-aware, see docs/performance.md)"
    );
    println!("oracle_gap_hinted ceiling: {ceiling:.2} (absolute bound, see docs/oracle.md)");
    if outcome.passed() {
        println!("perf gate: PASS");
        Ok(())
    } else {
        let failures: Vec<String> = outcome
            .failures()
            .map(|d| format!("{} ({:?})", d.name, d.kind))
            .collect();
        Err(CliError {
            code: EXIT_PERF,
            message: format!("perf gate: FAIL — {}", failures.join(", ")),
        })
    }
}

/// Every bundled machine, keyed by the bench-name suffixes shared with
/// `mdesc perf` and `docs/performance.md`: the four `Machine` variants
/// plus the two HMDL-only reconstructions.
fn oracle_machines() -> Vec<(String, MdesSpec)> {
    let mut machines: Vec<(String, MdesSpec)> = mdes_machines::Machine::all()
        .into_iter()
        .map(|m| (m.name().to_lowercase(), m.spec()))
        .collect();
    machines.push(("pentiumpro".to_string(), mdes_machines::pentium_pro()));
    machines.push((
        "superspark_approx".to_string(),
        mdes_machines::approximate_superspark(),
    ));
    machines
}

/// Runs the exact branch-and-bound scheduler as a differential oracle
/// against the production list and modulo schedulers.
///
/// Default mode covers every bundled machine: seeded oracle-sized
/// regions are scheduled by the oracle (provably minimal up to the node
/// budget), replay-verified, and compared against the unhinted and
/// hinted list schedulers plus the modulo scheduler's II sandwich.  Any
/// invariant inversion (`sched/oracle_violations` in `--metrics`) fails
/// with the oracle exit code.  `--fleet N` switches to N synthetic
/// machines from `mdes_workload::fleet`, adding a guard-oracle fuzz of
/// the optimization pipeline per machine; see docs/oracle.md.
fn oracle_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut seed = 42u64;
    let mut regions = 12usize;
    let mut max_ops = mdes_oracle::DEFAULT_MAX_OPS;
    let mut node_limit: Option<u64> = None;
    let mut machine_filter: Option<String> = None;
    let mut fleet_size: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
            }
            "--regions" => {
                regions = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--regions requires a positive integer")?;
            }
            "--max-ops" => {
                max_ops = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--max-ops requires a positive integer")?;
            }
            "--node-limit" => {
                node_limit = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n >= 1)
                        .ok_or("--node-limit requires a positive integer")?,
                );
            }
            "--machine" => {
                machine_filter = Some(iter.next().ok_or("--machine requires a name")?.clone());
            }
            "--fleet" => {
                fleet_size = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .ok_or("--fleet requires a positive integer")?,
                );
            }
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }

    if let Some(n) = fleet_size {
        if machine_filter.is_some() {
            return Err("oracle takes either --machine or --fleet, not both".into());
        }
        // Fleet machines are wider and more numerous than the bundled
        // six; a tighter default node budget keeps the fuzz pass fast
        // (a budget-bailed region keeps its list incumbent, which is
        // still a sound upper bound).
        return oracle_fleet_cmd(
            n,
            seed,
            regions,
            max_ops,
            node_limit.unwrap_or(1_000_000),
            tel,
        );
    }
    // A 2M-node per-region budget proves most bundled-machine regions
    // and keeps the CI smoke in seconds; `--node-limit` raises it for
    // deeper proofs (the crate default is mdes_oracle::DEFAULT_NODE_LIMIT).
    let node_limit = node_limit.unwrap_or(2_000_000);

    let mut total = mdes_oracle::GapReport::default();
    let mut stats = mdes_core::CheckStats::new();
    let mut machines_run = 0usize;
    for (name, spec) in oracle_machines() {
        if let Some(filter) = &machine_filter {
            if !name.eq_ignore_ascii_case(filter) {
                continue;
            }
        }
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector)
            .map_err(|e| CliError::validation(e.to_string()))?;
        let config = mdes_workload::RegionConfig::small(regions).with_seed(seed);
        let blocks = mdes_workload::generate_regions(&spec, &config).blocks;
        let oracle = mdes_oracle::OracleScheduler::new(&compiled)
            .with_max_ops(max_ops)
            .with_node_limit(node_limit);
        let mut report = {
            let _span = tel.span("oracle/differential");
            mdes_oracle::differential_gap(&compiled, &blocks, &oracle, &mut stats)
        };
        let loops = mdes_oracle::loops_from_blocks(&compiled, &blocks);
        let modulo = {
            let _span = tel.span("oracle/modulo");
            mdes_oracle::modulo_differential(&compiled, &loops, &oracle, &mut stats)
        };
        report.merge(&modulo);
        println!(
            "{name}: {} regions ({} skipped), {} proved, {} improved, gap {:.3} \
             (hinted {:.3}), {} loops, II gap {:.3}, {} nodes, {} violation(s)",
            report.regions,
            report.skipped,
            report.proved,
            report.improved,
            report.gap(),
            report.hinted_gap(),
            report.loops,
            report.modulo_gap(),
            report.nodes,
            report.violations
        );
        for detail in &report.violation_details {
            eprintln!("oracle: {name}: {detail}");
        }
        total.merge(&report);
        machines_run += 1;
    }
    if machines_run == 0 {
        let names: Vec<String> = oracle_machines().into_iter().map(|(n, _)| n).collect();
        return Err(CliError::from(format!(
            "unknown machine `{}` (one of: {})",
            machine_filter.unwrap_or_default(),
            names.join(", ")
        )));
    }
    total.publish(tel);
    println!(
        "oracle: {machines_run} machine(s), {} regions, {} loops, gap {:.3} hinted {:.3} \
         modulo {:.3}, {} violation(s)",
        total.regions,
        total.loops,
        total.gap(),
        total.hinted_gap(),
        total.modulo_gap(),
        total.violations
    );
    if total.violations > 0 {
        return Err(CliError {
            code: EXIT_ORACLE,
            message: format!("{} oracle violation(s)", total.violations),
        });
    }
    Ok(())
}

/// `mdesc oracle --fleet N`: the mass differential pass over synthetic
/// machines — a guard-oracle fuzz of the full optimization pipeline on
/// each generated spec, then the exact-scheduler differential over its
/// seeded small regions.
fn oracle_fleet_cmd(
    n: usize,
    seed: u64,
    regions: usize,
    max_ops: usize,
    node_limit: u64,
    tel: &Telemetry,
) -> CliResult {
    let mut total = mdes_oracle::GapReport::default();
    let mut stats = mdes_core::CheckStats::new();
    let mut incidents = 0usize;
    for machine in mdes_workload::fleet(seed, n) {
        let mut spec = machine.spec.clone();
        let guard = GuardConfig::oracle(seed);
        let guarded = {
            let _span = tel.span("oracle/guard_fuzz");
            optimize_guarded(&mut spec, &PipelineConfig::full(), &guard, tel)
        };
        if !guarded.clean() {
            for incident in &guarded.incidents {
                eprintln!("oracle: {}: guard incident: {incident}", machine.name);
            }
            incidents += guarded.incidents.len();
        }

        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector)
            .map_err(|e| CliError::validation(format!("{}: {e}", machine.name)))?;
        let config = mdes_workload::RegionConfig::small(regions).with_seed(seed);
        let blocks = mdes_workload::generate_regions(&spec, &config).blocks;
        let oracle = mdes_oracle::OracleScheduler::new(&compiled)
            .with_max_ops(max_ops)
            .with_node_limit(node_limit);
        let report = {
            let _span = tel.span("oracle/differential");
            mdes_oracle::differential_gap(&compiled, &blocks, &oracle, &mut stats)
        };
        for detail in &report.violation_details {
            eprintln!("oracle: {}: {detail}", machine.name);
        }
        total.merge(&report);
    }
    total.publish(tel);
    tel.counter_add("sched/oracle_guard_incidents", incidents as u64);
    println!(
        "oracle fleet: {n} machine(s), {} regions ({} skipped), gap {:.3} hinted {:.3}, \
         {} guard incident(s), {} violation(s)",
        total.regions,
        total.skipped,
        total.gap(),
        total.hinted_gap(),
        incidents,
        total.violations
    );
    if total.violations > 0 || incidents > 0 {
        return Err(CliError {
            code: EXIT_ORACLE,
            message: format!(
                "{} oracle violation(s), {} guard incident(s)",
                total.violations, incidents
            ),
        });
    }
    Ok(())
}

fn schedule_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut input: Option<&str> = None;
    let mut total_ops = 10_000usize;
    let mut do_optimize = true;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => {
                total_ops = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ops requires a positive integer")?;
            }
            "--no-optimize" => do_optimize = false,
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("schedule needs an input .hmdl file")?;
    let mut spec = load_hmdl_with(input, tel)?;
    if do_optimize {
        optimize_with_telemetry(&mut spec, &PipelineConfig::full(), tel);
    }
    let compiled = CompiledMdes::compile_with_telemetry(&spec, UsageEncoding::BitVector, tel)
        .map_err(|e| CliError::validation(e.to_string()))?;

    let workload =
        mdes_workload::generate_uniform(&spec, &mdes_workload::uniform_config(total_ops));
    let scheduler = mdes_sched::ListScheduler::new(&compiled);
    let mut stats = mdes_core::CheckStats::new();
    let mut total_cycles = 0i64;
    {
        let _span = tel.span("sched/list");
        for block in &workload.blocks {
            let schedule = scheduler.schedule(block, &mut stats);
            total_cycles += i64::from(schedule.length);
        }
    }
    stats.publish(tel, "sched/list");
    println!(
        "{input}: scheduled {} ops in {} blocks ({} cycles, {:.2} ops/cycle)",
        workload.total_ops,
        workload.blocks.len(),
        total_cycles,
        workload.total_ops as f64 / total_cycles as f64
    );
    println!(
        "  {:.2} attempts/op, {:.2} options/attempt, {:.2} checks/attempt, {:.2} checks/option",
        stats.attempts_per_op(),
        stats.options_per_attempt_avg(),
        stats.checks_per_attempt(),
        stats.checks_per_option()
    );
    Ok(())
}

fn dot_cmd(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut class: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--class" => class = Some(iter.next().ok_or("--class requires a name")?),
            other if input.is_none() => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("dot needs an input .hmdl file")?;
    let class = class.ok_or("dot needs --class NAME")?;
    let spec = load_hmdl(input)?;
    match mdes_core::dot::class_constraint(&spec, class) {
        Some(dot) => {
            print!("{dot}");
            Ok(())
        }
        None => Err(format!("class `{class}` not found").into()),
    }
}

/// Runs the static diagnostics engine (`mdes-analyze`) over one or more
/// descriptions: an HMDL file (diagnostics anchored to source spans),
/// the bundled machines (`--machine NAME|all`), and/or a synthetic fleet
/// (`--fleet N`).  `--defects` plants known-bad structure into the fleet
/// machines and scores the analyzer's recall against the ground truth.
/// Any fatal diagnostic maps onto the structural-validation exit code
/// (3), consistent with `mdesc check`; with `--json` the report goes to
/// stdout as one JSON array and the summary lines move to stderr.
fn lint_cmd(args: &[String], tel: &Telemetry) -> CliResult {
    let mut input: Option<&str> = None;
    let mut machine: Option<&str> = None;
    let mut fleet_size: Option<usize> = None;
    let mut seed = 42u64;
    let mut defects = false;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--machine" => {
                machine = Some(
                    iter.next()
                        .ok_or("--machine requires a name (or `all`)")?
                        .as_str(),
                );
            }
            "--fleet" => {
                fleet_size = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fleet requires a positive integer")?,
                );
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
            }
            "--defects" => defects = true,
            "--json" => json = true,
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    if defects && fleet_size.is_none() {
        return Err("--defects needs --fleet N (defects are planted into fleet machines)".into());
    }

    let mut reports: Vec<(String, mdes_analyze::Analysis)> = Vec::new();
    // Ground truth for `--defects`: (origin, defect) pairs the report
    // must cover.
    let mut planted: Vec<(String, mdes_workload::PlantedDefect)> = Vec::new();

    if let Some(path) = input {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let spec = load_hmdl_with(path, tel)?;
        let mut analysis = mdes_analyze::analyze_spec_with_telemetry(&spec, tel);
        mdes_analyze::anchor_spans(&mut analysis.diagnostics, &source);
        reports.push((path.to_string(), analysis));
    }
    match machine {
        Some("all") => {
            for (name, spec) in oracle_machines() {
                reports.push((name, mdes_analyze::analyze_spec_with_telemetry(&spec, tel)));
            }
        }
        Some(name) => {
            let found = oracle_machines().into_iter().find(|(n, _)| n == name);
            let Some((n, spec)) = found else {
                let known: Vec<String> = oracle_machines().into_iter().map(|(n, _)| n).collect();
                return Err(format!(
                    "unknown machine `{name}`; try one of {} or `all`",
                    known.join(", ")
                )
                .into());
            };
            reports.push((n, mdes_analyze::analyze_spec_with_telemetry(&spec, tel)));
        }
        None => {}
    }
    if let Some(n) = fleet_size {
        if defects {
            for seeded in mdes_workload::fleet_with_defects(seed, n, 1.0) {
                for defect in &seeded.defects {
                    planted.push((seeded.machine.name.clone(), defect.clone()));
                }
                reports.push((
                    seeded.machine.name.clone(),
                    mdes_analyze::analyze_spec_with_telemetry(&seeded.machine.spec, tel),
                ));
            }
        } else {
            for fm in mdes_workload::fleet(seed, n) {
                reports.push((
                    fm.name.clone(),
                    mdes_analyze::analyze_spec_with_telemetry(&fm.spec, tel),
                ));
            }
        }
    }
    if reports.is_empty() {
        return Err("lint needs an input .hmdl file, --machine NAME|all, or --fleet N".into());
    }

    if json {
        print!(
            "{}",
            mdes_analyze::render_json_many(reports.iter().map(|(o, a)| (o.as_str(), a)))
        );
    } else {
        for (origin, analysis) in &reports {
            print!("{}", mdes_analyze::render_text(origin, analysis));
        }
    }

    use mdes_analyze::Severity;
    let count = |severity| -> usize { reports.iter().map(|(_, a)| a.count(severity)).sum() };
    let (fatal, warn, info) = (
        count(Severity::Fatal),
        count(Severity::Warn),
        count(Severity::Info),
    );
    let mut lines = vec![format!(
        "lint: {} machine(s), {} diagnostic(s) ({fatal} fatal, {warn} warn, {info} info)",
        reports.len(),
        fatal + warn + info
    )];
    if defects {
        let hit = planted
            .iter()
            .filter(|(origin, defect)| {
                reports.iter().any(|(o, a)| {
                    o == origin
                        && a.diagnostics.iter().any(|d| {
                            d.code == defect.code && d.item.as_deref() == Some(&defect.item)
                        })
                })
            })
            .count();
        lines.push(format!(
            "lint: recall {hit}/{} planted defect(s) reported",
            planted.len()
        ));
    }
    for line in &lines {
        // Keep stdout machine-readable under --json.
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if fatal > 0 {
        return Err(CliError::validation(format!(
            "lint: {fatal} fatal diagnostic(s)"
        )));
    }
    Ok(())
}

fn diff_cmd(args: &[String]) -> CliResult {
    let (old_path, new_path) = match args {
        [a, b] => (a, b),
        _ => return Err("diff needs exactly two .hmdl files".into()),
    };
    let old = load_hmdl(old_path)?;
    let new = load_hmdl(new_path)?;
    print!("{}", analysis::diff(&old, &new));
    Ok(())
}

fn chart_cmd(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut total_ops = 24usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => {
                total_ops = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--ops requires a positive integer")?;
            }
            other if input.is_none() && !other.starts_with('-') => input = Some(other),
            other => return Err(CliError::from(format!("unexpected argument `{other}`"))),
        }
    }
    let input = input.ok_or("chart needs an input .hmdl file")?;
    let mut spec = load_hmdl(input)?;
    optimize(&mut spec, &PipelineConfig::full());
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector)
        .map_err(|e| CliError::validation(e.to_string()))?;
    let workload =
        mdes_workload::generate_uniform(&spec, &mdes_workload::uniform_config(total_ops));
    let scheduler = mdes_sched::ListScheduler::new(&compiled);
    let mut stats = mdes_core::CheckStats::new();
    let block = &workload.blocks[0];
    let schedule = scheduler.schedule(block, &mut stats);
    println!(
        "{input}: first synthetic block, {} ops in {} cycles\n",
        block.len(),
        schedule.length
    );
    print!(
        "{}",
        mdes_sched::occupancy_chart(&spec, &compiled, block, &schedule)
    );
    println!();
    for (id, name) in spec.resources().iter() {
        let util = mdes_sched::resource_utilization(&compiled, &schedule)[id.index()];
        if util > 0.0 {
            println!("{name:>12}: {:>5.1}% busy", util * 100.0);
        }
    }
    Ok(())
}

fn bundled_cmd(args: &[String]) -> CliResult {
    let name = args.first().ok_or("bundled needs a machine name")?;
    let machine = mdes_machines::Machine::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown machine `{name}` (PA7100, Pentium, SuperSPARC, K5)"))?;
    print!("{}", machine.source());
    Ok(())
}
