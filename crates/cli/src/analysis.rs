//! `mdesc lint` and `mdesc diff` — maintenance tooling for evolving
//! machine descriptions.
//!
//! Section 5 of the paper is a story about evolution: "as the machine
//! descriptions evolve, the amount of redundant and unused information in
//! the MDES tends to grow, because … it is typically easier to just make
//! a local copy of the information to be changed than to do the careful
//! analysis required to safely modify or delete existing information."
//! The linter performs that careful analysis (without modifying
//! anything); the differ shows what actually changed between two
//! revisions of a description.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mdes_core::spec::MdesSpec;

/// One linter finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Finding category (stable identifier, e.g. `duplicate-option`).
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Analyzes a description for the Section-5 smells without changing it.
pub fn lint(spec: &MdesSpec) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Duplicate (structurally identical) options.
    let mut seen_options: BTreeMap<Vec<(usize, i32)>, usize> = BTreeMap::new();
    for id in spec.option_ids() {
        let shape: Vec<(usize, i32)> = spec
            .option(id)
            .usages
            .iter()
            .map(|u| (u.resource.index(), u.time))
            .collect();
        match seen_options.get(&shape) {
            Some(&first) => findings.push(Finding {
                kind: "duplicate-option",
                message: format!(
                    "option #{} duplicates option #{first} (redundancy elimination would merge them)",
                    id.index()
                ),
            }),
            None => {
                seen_options.insert(shape, id.index());
            }
        }
    }

    // Dominated options within each OR-tree.
    for tree_id in spec.or_tree_ids() {
        let tree = spec.or_tree(tree_id);
        let name = tree
            .name
            .clone()
            .unwrap_or_else(|| format!("#{}", tree_id.index()));
        for (i, &candidate) in tree.options.iter().enumerate() {
            let dominated = tree.options[..i]
                .iter()
                .any(|&winner| spec.option(candidate).covers(spec.option(winner)));
            if dominated {
                findings.push(Finding {
                    kind: "dominated-option",
                    message: format!(
                        "or_tree {name}: option {} can never be selected (a higher-priority \
                         option uses a subset of its resources)",
                        i + 1
                    ),
                });
            }
        }
    }

    // Unused (unreachable) items.
    let mut probe = spec.clone();
    let sweep = probe.sweep_unreferenced();
    if sweep.total() > 0 {
        findings.push(Finding {
            kind: "unused-items",
            message: format!(
                "{} option(s), {} OR-tree(s) and {} AND/OR-tree(s) are not reachable from any class",
                sweep.options_removed, sweep.or_trees_removed, sweep.and_or_trees_removed
            ),
        });
    }

    // Classes without opcodes (unreachable from the compiler's vocabulary).
    for id in spec.class_ids() {
        if spec.opcodes_of_class(id).is_empty() {
            findings.push(Finding {
                kind: "class-without-opcodes",
                message: format!(
                    "class `{}` has no opcodes mapped to it (internal classes are fine; \
                     otherwise it is dead vocabulary)",
                    spec.class(id).name
                ),
            });
        }
    }

    // Unused resources.
    let mut used = vec![false; spec.resources().len()];
    for id in spec.option_ids() {
        for usage in &spec.option(id).usages {
            used[usage.resource.index()] = true;
        }
    }
    for (id, name) in spec.resources().iter() {
        if !used[id.index()] {
            findings.push(Finding {
                kind: "unused-resource",
                message: format!("resource `{name}` is never used by any option"),
            });
        }
    }

    findings
}

/// A structural diff between two revisions of a description.
pub fn diff(old: &MdesSpec, new: &MdesSpec) -> String {
    let mut out = String::new();

    // Resources.
    let old_res: Vec<&str> = old.resources().iter().map(|(_, n)| n).collect();
    let new_res: Vec<&str> = new.resources().iter().map(|(_, n)| n).collect();
    for name in &new_res {
        if !old_res.contains(name) {
            let _ = writeln!(out, "+ resource {name}");
        }
    }
    for name in &old_res {
        if !new_res.contains(name) {
            let _ = writeln!(out, "- resource {name}");
        }
    }

    // Classes: added / removed / changed option counts, latency, flags.
    let describe = |spec: &MdesSpec, id: mdes_core::ClassId| -> (usize, i32, i32, i32) {
        let class = spec.class(id);
        (
            spec.class_option_count(id),
            class.latency.dest,
            class.latency.src,
            class.latency.mem,
        )
    };
    for id in new.class_ids() {
        let name = &new.class(id).name;
        match old.class_by_name(name) {
            None => {
                let _ = writeln!(
                    out,
                    "+ class {name} ({} options)",
                    new.class_option_count(id)
                );
            }
            Some(old_id) => {
                let before = describe(old, old_id);
                let after = describe(new, id);
                if before != after {
                    let _ = writeln!(
                        out,
                        "~ class {name}: options {} -> {}, latency {}/{}/{} -> {}/{}/{}",
                        before.0, after.0, before.1, before.2, before.3, after.1, after.2, after.3
                    );
                }
            }
        }
    }
    for id in old.class_ids() {
        let name = &old.class(id).name;
        if new.class_by_name(name).is_none() {
            let _ = writeln!(out, "- class {name}");
        }
    }

    // Opcodes.
    for (mnemonic, class) in new.opcodes() {
        match old.opcode_class(mnemonic) {
            None => {
                let _ = writeln!(out, "+ op {mnemonic} = {}", new.class(*class).name);
            }
            Some(old_class) => {
                let old_name = &old.class(old_class).name;
                let new_name = &new.class(*class).name;
                if old_name != new_name {
                    let _ = writeln!(out, "~ op {mnemonic}: {old_name} -> {new_name}");
                }
            }
        }
    }
    for (mnemonic, _) in old.opcodes() {
        if new.opcode_class(mnemonic).is_none() {
            let _ = writeln!(out, "- op {mnemonic}");
        }
    }

    if out.is_empty() {
        out.push_str("no structural differences\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> MdesSpec {
        mdes_lang::compile(src).unwrap()
    }

    const MESSY: &str = "
        resource Dec[2];
        resource Ghost;
        or_tree T = first_of(
            { Dec[0] @ 0 },
            { Dec[0] @ 0 },              // duplicate
            { Dec[0] @ 0, Dec[1] @ 0 }); // dominated
        or_tree Orphan = first_of({ Dec[1] @ 3 });
        class alu { constraint = T; }
    ";

    #[test]
    fn lint_finds_every_section5_smell() {
        let spec = compile(MESSY);
        let findings = lint(&spec);
        let kinds: Vec<&str> = findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&"duplicate-option"), "{kinds:?}");
        assert!(kinds.contains(&"dominated-option"), "{kinds:?}");
        assert!(kinds.contains(&"unused-items"), "{kinds:?}");
        assert!(kinds.contains(&"class-without-opcodes"), "{kinds:?}");
        assert!(kinds.contains(&"unused-resource"), "{kinds:?}");
    }

    #[test]
    fn lint_is_clean_on_a_tidy_description() {
        let spec = compile(
            "resource M;
             or_tree T = first_of({ M @ 0 });
             class mem { constraint = T; flags = load; }
             op LD = mem;",
        );
        assert!(lint(&spec).is_empty());
    }

    #[test]
    fn lint_does_not_modify_the_spec() {
        let spec = compile(MESSY);
        let before = spec.clone();
        let _ = lint(&spec);
        assert_eq!(spec, before);
    }

    #[test]
    fn diff_reports_additions_removals_and_changes() {
        let old = compile(
            "resource M;
             or_tree T = first_of({ M @ 0 });
             class mem { constraint = T; latency = 1; }
             op LD = mem;
             op ST = mem;",
        );
        let new = compile(
            "resource M;
             resource M2;
             or_tree T = first_of({ M @ 0 }, { M2 @ 0 });
             class mem { constraint = T; latency = 2; }
             class alu { constraint = T; }
             op LD = mem;
             op ADD = alu;
             op ST = alu;",
        );
        let text = diff(&old, &new);
        assert!(text.contains("+ resource M2"), "{text}");
        assert!(
            text.contains("~ class mem: options 1 -> 2, latency 1/0/1 -> 2/0/2"),
            "{text}"
        );
        assert!(text.contains("+ class alu"), "{text}");
        assert!(text.contains("+ op ADD"), "{text}");
        assert!(text.contains("~ op ST: mem -> alu"), "{text}");
    }

    #[test]
    fn diff_of_identical_specs_is_empty() {
        let spec =
            compile("resource M; or_tree T = first_of({ M @ 0 }); class c { constraint = T; }");
        assert_eq!(diff(&spec, &spec), "no structural differences\n");
    }
}
