//! `mdesc diff` — structural diffing for evolving machine descriptions.
//!
//! Section 5 of the paper is a story about evolution: "as the machine
//! descriptions evolve, the amount of redundant and unused information in
//! the MDES tends to grow, because … it is typically easier to just make
//! a local copy of the information to be changed than to do the careful
//! analysis required to safely modify or delete existing information."
//! The careful analysis itself lives in the `mdes-analyze` crate (driven
//! by `mdesc lint`); this module shows what actually changed between two
//! revisions of a description.

use std::fmt::Write as _;

use mdes_core::spec::MdesSpec;

/// A structural diff between two revisions of a description.
pub fn diff(old: &MdesSpec, new: &MdesSpec) -> String {
    let mut out = String::new();

    // Resources.
    let old_res: Vec<&str> = old.resources().iter().map(|(_, n)| n).collect();
    let new_res: Vec<&str> = new.resources().iter().map(|(_, n)| n).collect();
    for name in &new_res {
        if !old_res.contains(name) {
            let _ = writeln!(out, "+ resource {name}");
        }
    }
    for name in &old_res {
        if !new_res.contains(name) {
            let _ = writeln!(out, "- resource {name}");
        }
    }

    // Classes: added / removed / changed option counts, latency, flags.
    let describe = |spec: &MdesSpec, id: mdes_core::ClassId| -> (usize, i32, i32, i32) {
        let class = spec.class(id);
        (
            spec.class_option_count(id),
            class.latency.dest,
            class.latency.src,
            class.latency.mem,
        )
    };
    for id in new.class_ids() {
        let name = &new.class(id).name;
        match old.class_by_name(name) {
            None => {
                let _ = writeln!(
                    out,
                    "+ class {name} ({} options)",
                    new.class_option_count(id)
                );
            }
            Some(old_id) => {
                let before = describe(old, old_id);
                let after = describe(new, id);
                if before != after {
                    let _ = writeln!(
                        out,
                        "~ class {name}: options {} -> {}, latency {}/{}/{} -> {}/{}/{}",
                        before.0, after.0, before.1, before.2, before.3, after.1, after.2, after.3
                    );
                }
            }
        }
    }
    for id in old.class_ids() {
        let name = &old.class(id).name;
        if new.class_by_name(name).is_none() {
            let _ = writeln!(out, "- class {name}");
        }
    }

    // Opcodes.
    for (mnemonic, class) in new.opcodes() {
        match old.opcode_class(mnemonic) {
            None => {
                let _ = writeln!(out, "+ op {mnemonic} = {}", new.class(*class).name);
            }
            Some(old_class) => {
                let old_name = &old.class(old_class).name;
                let new_name = &new.class(*class).name;
                if old_name != new_name {
                    let _ = writeln!(out, "~ op {mnemonic}: {old_name} -> {new_name}");
                }
            }
        }
    }
    for (mnemonic, _) in old.opcodes() {
        if new.opcode_class(mnemonic).is_none() {
            let _ = writeln!(out, "- op {mnemonic}");
        }
    }

    if out.is_empty() {
        out.push_str("no structural differences\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> MdesSpec {
        mdes_lang::compile(src).unwrap()
    }

    #[test]
    fn diff_reports_additions_removals_and_changes() {
        let old = compile(
            "resource M;
             or_tree T = first_of({ M @ 0 });
             class mem { constraint = T; latency = 1; }
             op LD = mem;
             op ST = mem;",
        );
        let new = compile(
            "resource M;
             resource M2;
             or_tree T = first_of({ M @ 0 }, { M2 @ 0 });
             class mem { constraint = T; latency = 2; }
             class alu { constraint = T; }
             op LD = mem;
             op ADD = alu;
             op ST = alu;",
        );
        let text = diff(&old, &new);
        assert!(text.contains("+ resource M2"), "{text}");
        assert!(
            text.contains("~ class mem: options 1 -> 2, latency 1/0/1 -> 2/0/2"),
            "{text}"
        );
        assert!(text.contains("+ class alu"), "{text}");
        assert!(text.contains("+ op ADD"), "{text}");
        assert!(text.contains("~ op ST: mem -> alu"), "{text}");
    }

    #[test]
    fn diff_of_identical_specs_is_empty() {
        let spec =
            compile("resource M; or_tree T = first_of({ M @ 0 }); class c { constraint = T; }");
        assert_eq!(diff(&spec, &spec), "no structural differences\n");
    }
}
