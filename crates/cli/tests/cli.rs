//! End-to-end tests of the `mdesc` binary: every command is exercised
//! against real files in a temporary directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mdesc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mdesc"))
        .args(args)
        .output()
        .expect("mdesc runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A unique temp dir per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdesc-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const DEMO: &str = "
    resource Dec[2];
    resource M;
    or_tree AnyDec = first_of(for d in 0..2: { Dec[d] @ -1 });
    or_tree UseM = first_of({ M @ 0 });
    and_or_tree Load = all_of(UseM, AnyDec);
    class load { constraint = Load; latency = 2; flags = load; }
    op LD, LDB = load;
";

#[test]
fn compile_produces_a_loadable_lmdes_image() {
    let dir = temp_dir("compile");
    let hmdl = dir.join("demo.hmdl");
    let lmdes = dir.join("demo.lmdes");
    std::fs::write(&hmdl, DEMO).unwrap();

    let out = mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "-o",
        lmdes.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote"));

    let bytes = std::fs::read(&lmdes).unwrap();
    let loaded = mdes_core::lmdes::read(&bytes).unwrap();
    assert!(loaded.class_by_name("load").is_some());
}

#[test]
fn compile_default_output_path_replaces_extension() {
    let dir = temp_dir("defaultout");
    let hmdl = dir.join("machine.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["compile", hmdl.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(dir.join("machine.lmdes").exists());
}

#[test]
fn compile_reports_source_errors_with_context() {
    let dir = temp_dir("badsrc");
    let hmdl = dir.join("bad.hmdl");
    std::fs::write(&hmdl, "resource M;\nclass c { constraint = Ghost; }").unwrap();
    let out = mdesc(&["compile", hmdl.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown constraint tree"), "{err}");
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn dump_lists_classes_and_honours_class_filter() {
    let dir = temp_dir("dump");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();

    let out = mdesc(&["dump", hmdl.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("load"));
    assert!(text.contains("LD LDB"));

    let out = mdesc(&["dump", hmdl.to_str().unwrap(), "--class", "load"]);
    assert!(stdout(&out).contains("AND/OR-tree Load"));

    let out = mdesc(&["dump", hmdl.to_str().unwrap(), "--class", "ghost"]);
    assert!(!out.status.success());
}

#[test]
fn dump_reads_lmdes_images_too() {
    let dir = temp_dir("dumplmdes");
    let hmdl = dir.join("demo.hmdl");
    let lmdes = dir.join("demo.lmdes");
    std::fs::write(&hmdl, DEMO).unwrap();
    assert!(mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "-o",
        lmdes.to_str().unwrap()
    ])
    .status
    .success());

    let out = mdesc(&["dump", lmdes.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("LMDES image"), "{text}");
    assert!(text.contains("load"));
}

#[test]
fn fmt_output_reparses_to_the_same_structure() {
    let dir = temp_dir("fmt");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["fmt", hmdl.to_str().unwrap()]);
    assert!(out.status.success());
    let formatted = stdout(&out);
    let original = mdes_lang::compile(DEMO).unwrap();
    let reparsed = mdes_lang::compile(&formatted).unwrap();
    assert!(mdes_lang::structurally_equal(&original, &reparsed));
}

#[test]
fn check_accepts_valid_and_rejects_invalid() {
    let dir = temp_dir("check");
    let good = dir.join("good.hmdl");
    std::fs::write(&good, DEMO).unwrap();
    assert!(mdesc(&["check", good.to_str().unwrap()]).status.success());

    let bad = dir.join("bad.hmdl");
    std::fs::write(&bad, "option x = { M @ 0 };").unwrap();
    assert!(!mdesc(&["check", bad.to_str().unwrap()]).status.success());
}

#[test]
fn stats_reports_every_stage() {
    let dir = temp_dir("stats");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["stats", hmdl.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    for needle in [
        "as authored",
        "redundancy",
        "bit-vector",
        "usage-time shift",
        "factoring",
        "OR-tree baseline",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn bundled_prints_machine_sources() {
    let out = mdesc(&["bundled", "supersparc"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("resource Decoder[3];"));

    let out = mdesc(&["bundled", "nonesuch"]);
    assert!(!out.status.success());
}

#[test]
fn bundled_sources_compile_through_the_cli() {
    let dir = temp_dir("bundledcompile");
    for name in ["PA7100", "Pentium", "SuperSPARC", "K5"] {
        let out = mdesc(&["bundled", name]);
        assert!(out.status.success());
        let path = dir.join(format!("{name}.hmdl"));
        std::fs::write(&path, stdout(&out)).unwrap();
        let out = mdesc(&["compile", path.to_str().unwrap()]);
        assert!(out.status.success(), "{name}: {}", stderr(&out));
    }
}

#[test]
fn schedule_reports_efficiency_statistics() {
    let dir = temp_dir("schedule");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["schedule", hmdl.to_str().unwrap(), "--ops", "400"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("attempts/op"), "{text}");
    assert!(text.contains("checks/attempt"));
}

#[test]
fn dot_exports_graphviz() {
    let dir = temp_dir("dot");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["dot", hmdl.to_str().unwrap(), "--class", "load"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("M@0"));
    assert!(!mdesc(&["dot", hmdl.to_str().unwrap()]).status.success());
}

#[test]
fn lint_reports_diagnostics_with_spans_and_keeps_warns_nonfatal() {
    let dir = temp_dir("lint");
    let messy = dir.join("messy.hmdl");
    std::fs::write(
        &messy,
        "resource D[2];
         or_tree T = first_of({ D[0] @ 0 }, { D[0] @ 0 });
         class alu { constraint = T; }",
    )
    .unwrap();
    // Dominated/duplicate options are warnings: reported, exit 0.
    let out = mdesc(&["lint", messy.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MD002"), "{text}");
    assert!(text.contains("warn"), "{text}");
    assert!(text.contains("lint: 1 machine(s)"), "{text}");

    let clean = dir.join("clean.hmdl");
    std::fs::write(
        &clean,
        "resource M;
         or_tree T = first_of({ M @ 0 });
         class mem { constraint = T; }
         op LD = mem;",
    )
    .unwrap();
    let out = mdesc(&["lint", clean.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("0 diagnostic(s) (0 fatal, 0 warn, 0 info)"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn lint_exits_with_the_validation_code_on_fatal_diagnostics() {
    let dir = temp_dir("lintfatal");
    let unsat = dir.join("unsat.hmdl");
    std::fs::write(
        &unsat,
        "resource ALU;
         or_tree A = first_of({ ALU @ 0 });
         or_tree B = first_of({ ALU @ 0 });
         and_or_tree Both = all_of(A, B);
         class stuck { constraint = Both; }",
    )
    .unwrap();
    let out = mdesc(&["lint", unsat.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("MD001"), "{text}");
    assert!(text.contains("fatal"), "{text}");
    // Span-anchored to the class declaration in the source.
    assert!(text.contains("unsat.hmdl:5:"), "{text}");
}

#[test]
fn lint_covers_bundled_machines_and_emits_json() {
    let out = mdesc(&["lint", "--machine", "all"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("lint: 6 machine(s)"), "{text}");
    assert!(text.contains("0 fatal"), "{text}");

    let json = mdesc(&["lint", "--machine", "all", "--json"]);
    assert!(json.status.success(), "{}", stderr(&json));
    let body = stdout(&json);
    assert!(body.starts_with("[\n"), "{body}");
    assert!(body.trim_end().ends_with(']'), "{body}");
    // Under --json the summary moves to stderr, keeping stdout parseable.
    assert!(
        stderr(&json).contains("lint: 6 machine(s)"),
        "{}",
        stderr(&json)
    );

    assert!(!mdesc(&["lint", "--machine", "nosuch"]).status.success());
}

#[test]
fn lint_defect_fleets_report_full_recall_and_gate() {
    let out = mdesc(&["lint", "--fleet", "4", "--seed", "42", "--defects"]);
    // Planted unsatisfiable classes are fatal, so the run gates.
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("lint: recall 8/8 planted defect(s) reported"),
        "{text}"
    );

    // Identical invocations are byte-identical.
    let again = mdesc(&["lint", "--fleet", "4", "--seed", "42", "--defects"]);
    assert_eq!(stdout(&out), stdout(&again));

    // --defects without a fleet is a usage error.
    assert!(!mdesc(&["lint", "--defects"]).status.success());
}

#[test]
fn diff_shows_revision_changes() {
    let dir = temp_dir("diff");
    let old = dir.join("old.hmdl");
    let new = dir.join("new.hmdl");
    std::fs::write(&old, DEMO).unwrap();
    std::fs::write(
        &new,
        format!("{DEMO}\nclass alu {{ constraint = AnyDec; }}\nop ADD = alu;"),
    )
    .unwrap();
    let out = mdesc(&["diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("+ class alu"), "{text}");
    assert!(text.contains("+ op ADD"), "{text}");

    let out = mdesc(&["diff", old.to_str().unwrap(), old.to_str().unwrap()]);
    assert!(stdout(&out).contains("no structural differences"));
}

#[test]
fn chart_renders_occupancy_for_a_block() {
    let dir = temp_dir("chart");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["chart", hmdl.to_str().unwrap(), "--ops", "12"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("cycle |"), "{text}");
    assert!(text.contains("% busy"), "{text}");
}

/// Path to a bundled HMDL source in the repo checkout.
fn machine_hmdl(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../machines/hmdl")
        .join(name)
}

#[test]
fn metrics_json_contains_one_span_per_pipeline_stage_for_pa7100() {
    let dir = temp_dir("metrics");
    let json_path = dir.join("pa7100-metrics.json");
    let hmdl = machine_hmdl("pa7100.hmdl");

    // The acceptance-criteria invocation, via the `mdes` bin alias.
    let out = Command::new(env!("CARGO_BIN_EXE_mdes"))
        .args([
            "--metrics",
            json_path.to_str().unwrap(),
            "optimize",
            hmdl.to_str().unwrap(),
            "--ops",
            "400",
        ])
        .output()
        .expect("mdes runs");
    assert!(out.status.success(), "{}", stderr(&out));

    let text = std::fs::read_to_string(&json_path).unwrap();
    let report = mdes_telemetry::Report::from_json(&text).expect("valid metrics JSON");

    // One span per pipeline stage, each entered exactly once, plus the
    // front-end, compiler, and scheduler phases.
    for path in [
        "lang/parse",
        "lang/elaborate",
        "pipeline/redundancy",
        "pipeline/dominance",
        "pipeline/shifting",
        "pipeline/sortzero",
        "pipeline/treesort",
        "pipeline/factor",
        "compile/validate",
        "compile/packing",
        "compile/classes",
        "sched/list",
    ] {
        let span = report
            .span(path)
            .unwrap_or_else(|| panic!("missing span `{path}`"));
        assert_eq!(span.count, 1, "span `{path}` entered more than once");
    }
    assert!(report.wall_nanos > 0, "wall clock missing");

    // Scheduler query counters are present and self-consistent with the
    // CheckStats accounting (every attempt checks at least one option,
    // every option at least one probe).
    let attempts = report.counter("sched/list/attempts").unwrap();
    let options = report.counter("sched/list/options_checked").unwrap();
    let checks = report.counter("sched/list/resource_checks").unwrap();
    let operations = report.counter("sched/list/operations").unwrap();
    assert_eq!(operations, 400);
    assert!(attempts >= operations);
    assert!(options >= attempts);
    assert!(checks >= options);

    // Before/after gauges record the pipeline's net effect.
    let before = report.gauge("pipeline/options/before").unwrap();
    let after = report.gauge("pipeline/options/after").unwrap();
    assert!(after <= before);
}

#[test]
fn metrics_summary_prints_a_table_to_stderr() {
    let dir = temp_dir("metricssum");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&[
        "--metrics-summary",
        "optimize",
        hmdl.to_str().unwrap(),
        "--ops",
        "100",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("telemetry report"), "{err}");
    assert!(err.contains("redundancy"), "{err}");
    assert!(err.contains("sched/list/attempts"), "{err}");
}

#[test]
fn metrics_flags_are_global_and_off_by_default() {
    let dir = temp_dir("metricsoff");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    // No flags: no telemetry output on stderr.
    let out = mdesc(&["optimize", hmdl.to_str().unwrap(), "--ops", "50"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!stderr(&out).contains("telemetry report"));
    // Flag after the subcommand works too.
    let json_path = dir.join("late-flag.json");
    let out = mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "--metrics",
        json_path.to_str().unwrap(),
        "-o",
        dir.join("demo.lmdes").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report =
        mdes_telemetry::Report::from_json(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    assert!(report.span("pipeline/redundancy").is_some());
}

#[test]
fn unknown_command_and_missing_args_fail_cleanly() {
    assert!(!mdesc(&["frobnicate"]).status.success());
    assert!(!mdesc(&[]).status.success());
    assert!(!mdesc(&["compile"]).status.success());
    let help = mdesc(&["--help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("usage: mdesc"));
}

/// A description with enough structure for every fault-injection class
/// to find an observable site (mirrors the guard crate's test fixture).
const GUARDABLE: &str = "
    resource Dec[2];
    resource Bus;
    resource Port;
    or_tree AnyDec = first_of(
        { Dec[0] @ 0, Port @ 1 },
        { Dec[1] @ 0, Bus @ 1 });
    or_tree BusT  = first_of({ Bus @ 0 });
    or_tree PortT = first_of({ Port @ 0 });
    class alu     { constraint = AnyDec; latency = 1; }
    class bus_op  { constraint = BusT;   latency = 1; }
    class port_op { constraint = PortT;  latency = 2; }
";

#[test]
fn parse_errors_exit_2_with_every_diagnostic_on_stderr() {
    let dir = temp_dir("exit2");
    let hmdl = dir.join("bad.hmdl");
    // Two independent syntax errors: recovery must surface both in one
    // run, on stderr, with nothing on stdout.
    std::fs::write(&hmdl, "resource M\nclass c { constraint = ; }\nop = mem;").unwrap();
    let out = mdesc(&["check", hmdl.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "{}", stdout(&out));
    let err = stderr(&out);
    assert!(err.contains("expected"), "{err}");
    // More than one diagnostic rendered from the single invocation.
    assert!(err.matches("line ").count() >= 2, "{err}");
}

#[test]
fn elaboration_errors_exit_2() {
    let dir = temp_dir("exit2sem");
    let hmdl = dir.join("bad.hmdl");
    std::fs::write(&hmdl, "resource M;\nclass c { constraint = Ghost; }").unwrap();
    let out = mdesc(&["compile", hmdl.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn usage_errors_exit_1() {
    assert_eq!(mdesc(&["frobnicate"]).status.code(), Some(1));
    assert_eq!(mdesc(&[]).status.code(), Some(1));
    let dir = temp_dir("exit1");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let out = mdesc(&["verify", hmdl.to_str().unwrap(), "--inject", "nonsense"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let out = mdesc(&[
        "verify",
        hmdl.to_str().unwrap(),
        "--inject",
        "redundancy:nonsense",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("drop-usage"), "{}", stderr(&out));
}

#[test]
fn verify_clean_run_exits_0_and_reports_on_stdout() {
    let dir = temp_dir("verifyclean");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, GUARDABLE).unwrap();
    let out = mdesc(&["verify", hmdl.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("guard clean"), "{text}");
    assert!(text.contains("oracle mode"), "{text}");
}

#[test]
fn injected_oracle_fault_exits_4_with_the_incident_on_stderr() {
    let dir = temp_dir("exit4");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, GUARDABLE).unwrap();
    let out = mdesc(&[
        "verify",
        hmdl.to_str().unwrap(),
        "--seed",
        "1234",
        "--inject",
        "redundancy:drop-usage",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("injected: redundancy"), "{err}");
    assert!(err.contains("guard:"), "{err}");
    assert!(err.contains("seed 1234"), "{err}");
    assert!(stdout(&out).is_empty(), "{}", stdout(&out));
}

#[test]
fn injected_structural_fault_exits_3_under_validate_mode() {
    let dir = temp_dir("exit3");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, GUARDABLE).unwrap();
    let out = mdesc(&[
        "verify",
        hmdl.to_str().unwrap(),
        "--guard",
        "validate",
        "--inject",
        "dominance:clear-usages",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("validation"), "{}", stderr(&out));
}

#[test]
fn guarded_compile_is_byte_identical_to_unguarded() {
    // The acceptance criterion: `--guard oracle` on a bundled machine
    // reports zero incidents and the output image is byte-for-byte the
    // same as a guard-off run.
    let dir = temp_dir("guardid");
    let hmdl = machine_hmdl("pa7100.hmdl");
    let plain = dir.join("plain.lmdes");
    let guarded = dir.join("guarded.lmdes");
    let out = mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "-o",
        plain.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "--guard",
        "oracle",
        "-o",
        guarded.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&plain).unwrap(),
        std::fs::read(&guarded).unwrap(),
        "guarded output differs from unguarded"
    );
}

#[test]
fn expand_or_flag_produces_the_traditional_baseline() {
    let dir = temp_dir("expandor");
    let hmdl = dir.join("demo.hmdl");
    std::fs::write(&hmdl, DEMO).unwrap();
    let expanded = dir.join("expanded.lmdes");
    let normal = dir.join("normal.lmdes");
    assert!(mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "--expand-or",
        "--no-optimize",
        "-o",
        expanded.to_str().unwrap()
    ])
    .status
    .success());
    assert!(mdesc(&[
        "compile",
        hmdl.to_str().unwrap(),
        "--no-optimize",
        "-o",
        normal.to_str().unwrap()
    ])
    .status
    .success());
    let expanded = mdes_core::lmdes::read(&std::fs::read(expanded).unwrap()).unwrap();
    let normal = mdes_core::lmdes::read(&std::fs::read(normal).unwrap()).unwrap();
    // Expanded: one 2-option tree of full tables; AND/OR: two trees.
    let load_exp = expanded.class_by_name("load").unwrap();
    let load_nrm = normal.class_by_name("load").unwrap();
    assert_eq!(expanded.class(load_exp).or_trees.len(), 1);
    assert_eq!(normal.class(load_nrm).or_trees.len(), 2);
}

#[test]
fn bench_serve_reports_workers_and_publishes_engine_metrics() {
    let dir = temp_dir("benchserve");
    let json_path = dir.join("serve-metrics.json");
    let out = mdesc(&[
        "--metrics",
        json_path.to_str().unwrap(),
        "bench-serve",
        "--jobs",
        "2",
        "--regions",
        "64",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("PA7100: served 64 regions"), "{text}");
    assert!(text.contains("worker0:"), "{text}");
    assert!(text.contains("worker1:"), "{text}");

    let json = std::fs::read_to_string(&json_path).unwrap();
    // The panic counter is always published — zero when clean — so CI can
    // grep for it without parsing.
    assert!(json.contains("\"engine/worker_panics\":0"), "{json}");
    let report = mdes_telemetry::Report::from_json(&json).unwrap();
    assert_eq!(report.counter("engine/jobs_completed"), Some(64));
    assert_eq!(report.gauge("engine/workers"), Some(2.0));
    assert!(report.gauge("engine/jobs_per_sec").unwrap() > 0.0);
    for worker in 0..2 {
        assert!(
            report
                .span(&format!("engine/worker{worker}/busy"))
                .is_some(),
            "missing busy span for worker{worker}:\n{json}"
        );
        assert!(report
            .counter(&format!("engine/worker{worker}/jobs"))
            .is_some());
    }
    // The folded scheduler counters mirror the per-worker split exactly.
    let folded = report.counter("engine/sched/resource_checks").unwrap();
    let split: u64 = (0..2)
        .map(|w| {
            report
                .counter(&format!("engine/worker{w}/resource_checks"))
                .unwrap()
        })
        .sum();
    assert_eq!(folded, split);
}

#[test]
fn bench_serve_rejects_bad_flags() {
    assert!(!mdesc(&["bench-serve", "--jobs", "0"]).status.success());
    assert!(!mdesc(&["bench-serve", "--machine", "PDP11"])
        .status
        .success());
    assert!(!mdesc(&["bench-serve", "--frobnicate"]).status.success());
}

#[test]
fn optimize_jobs_flag_is_deterministic_at_the_cli_level() {
    let dir = temp_dir("optjobs");
    let hmdl = machine_hmdl("superspark.hmdl");
    let one = mdesc(&[
        "optimize",
        hmdl.to_str().unwrap(),
        "--ops",
        "400",
        "--jobs",
        "1",
    ]);
    let eight = mdesc(&[
        "optimize",
        hmdl.to_str().unwrap(),
        "--ops",
        "400",
        "--jobs",
        "8",
    ]);
    let serial = mdesc(&["optimize", hmdl.to_str().unwrap(), "--ops", "400"]);
    assert!(one.status.success(), "{}", stderr(&one));
    assert!(eight.status.success(), "{}", stderr(&eight));
    assert!(serial.status.success(), "{}", stderr(&serial));
    // Same seed, any worker count, and the serial path: identical stdout
    // (op counts, cycles, attempts/op, checks/attempt all match).
    assert_eq!(stdout(&one), stdout(&eight));
    assert_eq!(stdout(&one), stdout(&serial));
    let _ = dir;
}
