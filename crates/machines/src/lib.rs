//! Detailed HMDL descriptions of the four processors evaluated by the
//! paper: HP PA7100, Intel Pentium, Sun SuperSPARC and AMD K5.
//!
//! Each description reconstructs the execution constraints the paper
//! itself documents (Sections 2 and 4 plus Tables 1–4), with exactly the
//! per-class reservation-table option counts the paper reports.  The
//! descriptions deliberately retain the kinds of redundant and unused
//! information the paper discusses in Section 5 (copy-pasted trees, a
//! stale duplicate option in the PA7100 memory pipeline, dead
//! experimental trees), so the redundancy-elimination experiments have
//! their intended inputs.
//!
//! # Example
//!
//! ```
//! use mdes_machines::Machine;
//!
//! let spec = Machine::SuperSparc.spec();
//! let load = spec.class_by_name("load").unwrap();
//! assert_eq!(spec.class_option_count(load), 6); // the paper's Figure 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mdes_core::MdesSpec;

/// The four processors of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Machine {
    /// HP PA7100 (in-order, two-issue).
    Pa7100,
    /// Intel Pentium (in-order, two-pipe x86).
    Pentium,
    /// Sun SuperSPARC (in-order, three-issue).
    SuperSparc,
    /// AMD K5 (four-issue out-of-order x86, modeled in-order with
    /// buffering).
    K5,
}

impl Machine {
    /// All four machines in the paper's table order.
    pub fn all() -> [Machine; 4] {
        [
            Machine::Pa7100,
            Machine::Pentium,
            Machine::SuperSparc,
            Machine::K5,
        ]
    }

    /// Display name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            Machine::Pa7100 => "PA7100",
            Machine::Pentium => "Pentium",
            Machine::SuperSparc => "SuperSPARC",
            Machine::K5 => "K5",
        }
    }

    /// The HMDL source text of this machine's description.
    pub fn source(&self) -> &'static str {
        match self {
            Machine::Pa7100 => include_str!("../hmdl/pa7100.hmdl"),
            Machine::Pentium => include_str!("../hmdl/pentium.hmdl"),
            Machine::SuperSparc => include_str!("../hmdl/superspark.hmdl"),
            Machine::K5 => include_str!("../hmdl/k5.hmdl"),
        }
    }

    /// Compiles the HMDL description into a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if the bundled description fails to compile — a build-time
    /// invariant covered by tests.
    pub fn spec(&self) -> MdesSpec {
        match mdes_lang::compile(self.source()) {
            Ok(spec) => spec,
            Err(err) => panic!(
                "bundled {} description failed to compile:\n{}",
                self.name(),
                err.render(self.source())
            ),
        }
    }

    /// True for the machines the paper calls "complex" / "flexible"
    /// (where AND/OR-trees are decisive).
    pub fn is_flexible(&self) -> bool {
        matches!(self, Machine::SuperSparc | Machine::K5)
    }
}

/// HMDL source of the speculative Pentium Pro (P6) demonstrator — the
/// "latest generation" machine the paper's Section 9 predicts will need
/// AND/OR-trees even more than the K5.  Not part of the paper's
/// evaluated set; used by the next-generation ablation.
pub fn pentium_pro_source() -> &'static str {
    include_str!("../hmdl/pentiumpro.hmdl")
}

/// Compiles the Pentium Pro demonstrator description.
///
/// # Panics
///
/// Panics if the bundled description fails to compile (a build-time
/// invariant covered by tests).
pub fn pentium_pro() -> MdesSpec {
    match mdes_lang::compile(pentium_pro_source()) {
        Ok(spec) => spec,
        Err(err) => panic!(
            "Pentium Pro description failed to compile:\n{}",
            err.render(pentium_pro_source())
        ),
    }
}

/// HMDL source of the *approximate* SuperSPARC description — the
/// "function unit mix and operation latencies" model the paper's
/// introduction attributes to portable compilers.  Class names, order,
/// latencies, flags and opcodes match [`Machine::SuperSparc`] exactly,
/// so the two descriptions are interchangeable to a scheduler; only the
/// execution constraints differ (no register ports, no branch-decoder
/// restriction, no cascade-unit restriction).
pub fn approximate_superspark_source() -> &'static str {
    include_str!("../hmdl/superspark_approx.hmdl")
}

/// Compiles the approximate SuperSPARC description.
///
/// # Panics
///
/// Panics if the bundled description fails to compile (a build-time
/// invariant covered by tests).
pub fn approximate_superspark() -> MdesSpec {
    match mdes_lang::compile(approximate_superspark_source()) {
        Ok(spec) => spec,
        Err(err) => panic!(
            "approximate SuperSPARC description failed to compile:\n{}",
            err.render(approximate_superspark_source())
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn option_counts(machine: Machine) -> BTreeMap<String, usize> {
        let spec = machine.spec();
        spec.class_ids()
            .map(|id| (spec.class(id).name.clone(), spec.class_option_count(id)))
            .collect()
    }

    #[test]
    fn all_descriptions_compile_and_validate() {
        for machine in Machine::all() {
            let spec = machine.spec();
            assert!(spec.validate().is_ok(), "{} invalid", machine.name());
            assert!(spec.num_classes() > 0);
        }
    }

    #[test]
    fn superspark_matches_table_1_option_counts() {
        let counts = option_counts(Machine::SuperSparc);
        assert_eq!(counts["branch"], 1);
        assert_eq!(counts["serial_op"], 1);
        assert_eq!(counts["fp_op"], 3);
        assert_eq!(counts["load"], 6);
        assert_eq!(counts["store"], 12);
        assert_eq!(counts["shift_1src"], 24);
        assert_eq!(counts["cascade_1src"], 24);
        assert_eq!(counts["shift_2src"], 36);
        assert_eq!(counts["cascade_2src"], 36);
        assert_eq!(counts["ialu_1src"], 48);
        assert_eq!(counts["ialu_2src"], 72);
    }

    #[test]
    fn pa7100_matches_table_2_option_counts() {
        let counts = option_counts(Machine::Pa7100);
        assert_eq!(counts["branch"], 1);
        assert_eq!(counts["int_op"], 2);
        assert_eq!(counts["fp_op"], 2);
        // The memory pipeline ships with the stale duplicate (3 options);
        // dominated-option elimination reduces it to 2 (Table 8).
        assert_eq!(counts["load"], 3);
        assert_eq!(counts["store"], 3);
    }

    #[test]
    fn pentium_matches_table_3_option_counts() {
        let counts = option_counts(Machine::Pentium);
        for one_option in ["u_only_alu", "np_alu", "complex_op", "cmp_branch"] {
            assert_eq!(counts[one_option], 1, "{one_option}");
        }
        for two_options in ["pair_alu", "pair_mov", "pair_load", "pair_store"] {
            assert_eq!(counts[two_options], 2, "{two_options}");
        }
    }

    #[test]
    fn pentium_uses_no_and_or_trees() {
        let spec = Machine::Pentium.spec();
        assert_eq!(spec.num_and_or_trees(), 0);
    }

    #[test]
    fn k5_matches_table_4_option_counts() {
        let counts = option_counts(Machine::K5);
        assert_eq!(counts["rop1_fp"], 16);
        assert_eq!(counts["rop2_fp_br"], 24);
        assert_eq!(counts["rop1_alu"], 32);
        assert_eq!(counts["rop1_load"], 32);
        assert_eq!(counts["rop1_store"], 32);
        assert_eq!(counts["cmp_br2"], 48);
        assert_eq!(counts["cmp_br3"], 64);
        assert_eq!(counts["rop2_op"], 96);
        assert_eq!(counts["cmp_br2_slow"], 128);
        assert_eq!(counts["rop2_sub"], 192);
        assert_eq!(counts["rop2_slow"], 256);
        assert_eq!(counts["cmp_br3_slow"], 384);
        assert_eq!(counts["rop3_slow"], 768);
    }

    #[test]
    fn branches_are_flagged_on_every_machine() {
        for machine in Machine::all() {
            let spec = machine.spec();
            let has_branch = spec.class_ids().any(|id| spec.class(id).flags.branch);
            assert!(has_branch, "{} lacks a branch class", machine.name());
        }
    }

    #[test]
    fn descriptions_contain_deliberate_redundancy_except_clean_ones() {
        // The paper's Section-5 premise: evolving descriptions accumulate
        // redundant/unused information.  Verify the shipped descriptions
        // give the redundancy pass something to do.
        for machine in Machine::all() {
            let mut spec = machine.spec();
            let report = mdes_opt::eliminate_redundancy(&mut spec);
            assert!(
                report.total() > 0,
                "{} shipped with no redundancy",
                machine.name()
            );
        }
    }

    #[test]
    fn and_or_sub_trees_are_resource_disjoint() {
        // The greedy AND/OR checking algorithm is equivalent to the
        // expanded OR-tree exactly when sub-OR-trees touch disjoint
        // (resource, time) cells; assert the property the machine models
        // rely on.
        for machine in Machine::all() {
            let spec = machine.spec();
            for andor in spec.and_or_tree_ids() {
                let tree = spec.and_or_tree(andor);
                let mut seen: Vec<(usize, i32)> = Vec::new();
                for &or in &tree.or_trees {
                    let mut mine: Vec<(usize, i32)> = Vec::new();
                    for &opt in &spec.or_tree(or).options {
                        for usage in &spec.option(opt).usages {
                            mine.push((usage.resource.index(), usage.time));
                        }
                    }
                    mine.sort_unstable();
                    mine.dedup();
                    for cell in &mine {
                        assert!(
                            !seen.contains(cell),
                            "{}: AND/OR tree shares cell {:?} across sub-trees",
                            machine.name(),
                            cell
                        );
                    }
                    seen.extend(mine);
                }
            }
        }
    }

    #[test]
    fn long_occupancy_classes_exist_with_correct_counts() {
        let sparc = option_counts(Machine::SuperSparc);
        assert_eq!(sparc["fp_div"], 3); // still in Table 1's 3-option group
        let pa = option_counts(Machine::Pa7100);
        assert_eq!(pa["fp_div"], 2); // Table 2's 2-option group
        let pentium = option_counts(Machine::Pentium);
        for one in ["fp_op", "mul_op", "div_op", "string_op"] {
            assert_eq!(pentium[one], 1, "{one}"); // Table 3's 1-option group
        }
        // Divide holds both pipes for 17 cycles: a big reservation table.
        let spec = Machine::Pentium.spec();
        let div = spec.class_by_name("div_op").unwrap();
        let mdes_core::Constraint::Or(tree) = spec.class(div).constraint else {
            panic!("div_op is an OR class");
        };
        let opt = spec.or_tree(tree).options[0];
        assert!(spec.option(opt).usages.len() > 30);
    }

    #[test]
    fn opcode_vocabularies_cover_every_class() {
        for machine in Machine::all() {
            let spec = machine.spec();
            assert!(
                spec.opcodes().len() >= 20,
                "{}: only {} opcodes",
                machine.name(),
                spec.opcodes().len()
            );
            for id in spec.class_ids() {
                let class = spec.class(id);
                // Cascaded classes are scheduler-internal (Section 2) and
                // carry no opcodes; everything else must.
                if class.name.starts_with("cascade") {
                    continue;
                }
                assert!(
                    !spec.opcodes_of_class(id).is_empty(),
                    "{}: class `{}` has no opcodes",
                    machine.name(),
                    class.name
                );
            }
        }
    }

    #[test]
    fn opcode_lookup_resolves_known_mnemonics() {
        let spec = Machine::SuperSparc.spec();
        let load = spec.class_by_name("load").unwrap();
        assert_eq!(spec.opcode_class("LDUB"), Some(load));
        assert_eq!(spec.opcode_class("NOPE"), None);
    }

    #[test]
    fn approximate_superspark_is_class_compatible_with_the_accurate_one() {
        let accurate = Machine::SuperSparc.spec();
        let approx = approximate_superspark();
        assert_eq!(accurate.num_classes(), approx.num_classes());
        for id in accurate.class_ids() {
            let a = accurate.class(id);
            let b = approx.class(id);
            assert_eq!(a.name, b.name, "class order must match");
            assert_eq!(a.latency, b.latency, "{}: latency differs", a.name);
            assert_eq!(a.flags, b.flags, "{}: flags differ", a.name);
        }
        assert_eq!(accurate.opcodes(), approx.opcodes());
        // And it really is weaker: fewer constraints to model.
        let accurate_size = accurate.num_options();
        assert!(approx.num_options() < accurate_size);
    }

    #[test]
    fn forwarding_exceptions_shorten_store_data_paths() {
        use mdes_core::{CompiledMdes, UsageEncoding};
        let spec = Machine::SuperSparc.spec();
        assert!(!spec.bypasses().is_empty());
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let fp = compiled.class_by_name("fp_op").unwrap();
        let store = compiled.class_by_name("store").unwrap();
        let alu = compiled.class_by_name("ialu_1src").unwrap();
        assert_eq!(compiled.flow_latency(fp, store), 2); // bypassed (dest 3)
        assert_eq!(compiled.flow_latency(fp, alu), 3); // default
    }

    #[test]
    fn loads_take_the_lowest_numbered_decoder_and_write_port_first() {
        // Figure 1: "the first available (lowest numbered) decoder and
        // register write port will be used by the integer load."
        use mdes_core::{CheckStats, Checker, CompiledMdes, RuMap, UsageEncoding};
        let spec = Machine::SuperSparc.spec();
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let checker = Checker::new(&compiled);
        let load = compiled.class_by_name("load").unwrap();
        let dec = |i: usize| spec.resources().lookup(&format!("Decoder[{i}]")).unwrap();
        let wrpt = |i: usize| spec.resources().lookup(&format!("WrPt[{i}]")).unwrap();

        let mut ru = RuMap::new();
        let mut stats = CheckStats::new();
        checker.try_reserve(&mut ru, load, 0, &mut stats).unwrap();
        assert!(!ru.is_free(-1, dec(0).bit()), "first load takes Decoder[0]");
        assert!(!ru.is_free(1, wrpt(0).bit()), "first load takes WrPt[0]");
        assert!(ru.is_free(-1, dec(1).bit()));

        // A second load in the same cycle fails on the single memory
        // unit — the Section-2 constraint that makes loads serialize.
        assert!(checker.try_reserve(&mut ru, load, 0, &mut stats).is_none());
        // One cycle later it succeeds and again takes the lowest free
        // decoder and write port.
        checker.try_reserve(&mut ru, load, 1, &mut stats).unwrap();
        assert!(!ru.is_free(0, dec(0).bit()));
        assert!(!ru.is_free(2, wrpt(0).bit()));
    }

    #[test]
    fn pentium_pro_demonstrator_compiles_with_expected_counts() {
        let spec = pentium_pro();
        assert!(spec.validate().is_ok());
        let count = |name: &str| {
            let id = spec.class_by_name(name).unwrap();
            spec.class_option_count(id)
        };
        assert_eq!(count("simple_alu"), 18);
        assert_eq!(count("complex_alu"), 6);
        assert_eq!(count("load"), 9);
        assert_eq!(count("store"), 9);
        assert_eq!(count("load_alu"), 18);
        assert_eq!(count("fp_op"), 3);
        assert_eq!(count("cmp_branch"), 18);
        assert!(!spec.opcodes().is_empty());
    }

    #[test]
    fn machine_names_and_flexibility() {
        assert_eq!(Machine::SuperSparc.name(), "SuperSPARC");
        assert!(Machine::K5.is_flexible());
        assert!(!Machine::Pentium.is_flexible());
        assert_eq!(Machine::all().len(), 4);
    }
}
