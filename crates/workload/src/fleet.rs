//! A synthetic machine fleet for mass differential testing.
//!
//! The six bundled descriptions exercise the paper's four platforms plus
//! two reconstructions — a fixed, small population.  Mass differential
//! testing (scalar ≡ bit-vector ≡ automaton conformance, guard-oracle
//! fuzzing, exact-scheduler differentials) wants *structural* coverage:
//! machines that vary in group width, option shape, multi-cycle
//! occupancy, AND/OR depth, latencies and class flags.  [`fleet`]
//! generates that population deterministically: machine `i` of seed `s`
//! is a pure function of `(s, i)`, every spec passes
//! [`MdesSpec::validate`], and AND/OR classes only combine OR-trees from
//! distinct resource groups, preserving the bundled-machine invariant
//! that AND/OR sub-trees are resource-disjoint.
//!
//! # Example
//!
//! ```
//! use mdes_workload::fleet;
//!
//! let machines = fleet(42, 8);
//! assert_eq!(machines.len(), 8);
//! for m in &machines {
//!     m.spec.validate().unwrap();
//! }
//! ```

use mdes_core::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
use mdes_core::usage::ResourceUsage;

use crate::rng::Pcg32;

/// One synthetic machine: a name for diagnostics and a validated spec.
#[derive(Clone, Debug)]
pub struct FleetMachine {
    /// Stable diagnostic name, `fleet-<seed>-<index>`.
    pub name: String,
    /// The validated machine description.
    pub spec: MdesSpec,
}

/// Generates `n` structurally-diverse valid machine specs from `seed`.
///
/// Machine `i` draws from the RNG stream `(seed, i)` only, so fleets are
/// prefix-stable: `fleet(s, 64)[..8]` equals `fleet(s, 8)` machine for
/// machine.
pub fn fleet(seed: u64, n: usize) -> Vec<FleetMachine> {
    (0..n).map(|index| fleet_machine(seed, index)).collect()
}

/// Generates the single fleet machine at `index` (see [`fleet`]).
///
/// # Panics
///
/// Panics if the generated spec fails validation — a bug in this
/// generator, not an input condition.
pub fn fleet_machine(seed: u64, index: usize) -> FleetMachine {
    let mut rng = Pcg32::new(seed, 0x000F_1EE7_0000 + index as u64);
    let mut spec = MdesSpec::new();

    // Resource groups of interchangeable units, each with an optional
    // private staging resource that makes some options multi-cycle.
    let n_groups = 2 + rng.gen_range(3) as usize; // 2..=4
    let mut group_trees = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let width = 1 + rng.gen_range(3) as usize; // 1..=3 units
        let units = spec
            .resources_mut()
            .add_indexed(&format!("U{g}"), width)
            .expect("fleet resource budget fits the pool");
        let stage = if rng.gen_f64() < 0.4 {
            Some(
                spec.resources_mut()
                    .add(format!("S{g}"))
                    .expect("fleet resource budget fits the pool"),
            )
        } else {
            None
        };
        let mut options = Vec::with_capacity(units.len());
        for &unit in &units {
            let mut usages = vec![ResourceUsage::new(unit, 0)];
            if rng.gen_f64() < 0.35 {
                // Occupy the unit for a second cycle (non-pipelined).
                usages.push(ResourceUsage::new(unit, 1));
            }
            if let Some(stage) = stage {
                if rng.gen_f64() < 0.5 {
                    usages.push(ResourceUsage::new(stage, 1 + rng.gen_range(2) as i32));
                }
            }
            options.push(spec.add_option(TableOption::new(usages)));
        }
        group_trees.push(spec.add_or_tree(OrTree::named(format!("G{g}"), options)));
    }

    // Constraint picker: either one group's OR-tree, or an AND of two
    // *distinct* groups' trees (distinct groups touch disjoint
    // resources, the bundled-machine AND/OR invariant).
    let constraint = |spec: &mut MdesSpec, rng: &mut Pcg32| {
        let first = rng.gen_range(n_groups as u32) as usize;
        if n_groups > 1 && rng.gen_f64() < 0.55 {
            let mut second = rng.gen_range(n_groups as u32 - 1) as usize;
            if second >= first {
                second += 1;
            }
            let tree = spec.add_and_or_tree(AndOrTree::new(vec![
                group_trees[first],
                group_trees[second],
            ]));
            Constraint::AndOr(tree)
        } else {
            Constraint::Or(group_trees[first])
        }
    };

    let n_compute = 2 + rng.gen_range(3) as usize; // 2..=4 plain classes
    for c in 0..n_compute {
        let shape = constraint(&mut spec, &mut rng);
        let latency = Latency::new(1 + rng.gen_range(3) as i32);
        spec.add_class(format!("op{c}"), shape, latency, OpFlags::none())
            .expect("fleet class construction is well-formed");
    }
    if rng.gen_f64() < 0.8 {
        let shape = constraint(&mut spec, &mut rng);
        let latency = Latency::with_mem(1 + rng.gen_range(3) as i32, 1 + rng.gen_range(3) as i32);
        spec.add_class("load", shape, latency, OpFlags::load())
            .expect("fleet class construction is well-formed");
    }
    if rng.gen_f64() < 0.6 {
        let shape = constraint(&mut spec, &mut rng);
        let latency = Latency::with_mem(1, 1 + rng.gen_range(2) as i32);
        spec.add_class("store", shape, latency, OpFlags::store())
            .expect("fleet class construction is well-formed");
    }
    if rng.gen_f64() < 0.7 {
        let tree = group_trees[rng.gen_range(n_groups as u32) as usize];
        spec.add_class(
            "branch",
            Constraint::Or(tree),
            Latency::new(1),
            OpFlags::branch(),
        )
        .expect("fleet class construction is well-formed");
    }

    // Occasional bypass exception between two compute classes, to vary
    // flow latencies beyond the operand read/write-time default.
    if rng.gen_f64() < 0.3 {
        let producer = mdes_core::ClassId::from_index(rng.gen_range(n_compute as u32) as usize);
        let consumer = mdes_core::ClassId::from_index(rng.gen_range(n_compute as u32) as usize);
        spec.add_bypass(producer, consumer, rng.gen_range(2) as i32)
            .expect("bypass endpoints are in range");
    }

    spec.validate()
        .expect("fleet specs are valid by construction");
    FleetMachine {
        name: format!("fleet-{seed}-{index}"),
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::{CompiledMdes, UsageEncoding};

    #[test]
    fn fleet_is_deterministic_and_prefix_stable() {
        let a = fleet(42, 16);
        let b = fleet(42, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.spec.num_options(), y.spec.num_options());
            assert_eq!(x.spec.num_classes(), y.spec.num_classes());
        }
        let prefix = fleet(42, 4);
        for (x, y) in prefix.iter().zip(&a) {
            assert_eq!(x.spec.num_options(), y.spec.num_options());
        }
    }

    #[test]
    fn fleet_specs_validate_and_compile_under_both_encodings() {
        for machine in fleet(0xF1EE7, 32) {
            machine.spec.validate().unwrap();
            CompiledMdes::compile(&machine.spec, UsageEncoding::Scalar)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            CompiledMdes::compile(&machine.spec, UsageEncoding::BitVector)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
        }
    }

    #[test]
    fn fleet_is_structurally_diverse() {
        let machines = fleet(7, 32);
        let class_counts: std::collections::BTreeSet<usize> =
            machines.iter().map(|m| m.spec.num_classes()).collect();
        let option_counts: std::collections::BTreeSet<usize> =
            machines.iter().map(|m| m.spec.num_options()).collect();
        assert!(class_counts.len() >= 3, "{class_counts:?}");
        assert!(option_counts.len() >= 4, "{option_counts:?}");
        assert!(machines.iter().any(|m| m.spec.num_and_or_trees() > 0));
        assert!(machines.iter().any(|m| !m.spec.bypasses().is_empty()));
    }

    #[test]
    fn fleet_machines_schedule_seeded_regions() {
        use crate::regions::{generate_regions, RegionConfig};
        use mdes_sched::{DepGraph, ListScheduler};

        for machine in fleet(3, 8) {
            let mdes = CompiledMdes::compile(&machine.spec, UsageEncoding::BitVector).unwrap();
            let workload = generate_regions(&machine.spec, &RegionConfig::small(6).with_seed(11));
            let mut stats = mdes_core::CheckStats::new();
            for block in &workload.blocks {
                let schedule = ListScheduler::new(&mdes).schedule(block, &mut stats);
                let graph = DepGraph::build(block, &mdes);
                schedule
                    .verify(&graph, &mdes)
                    .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            }
        }
    }
}
