//! A small deterministic PCG32 generator.
//!
//! Workload streams must be bit-reproducible across platforms and
//! releases (every experiment table is derived from them), so the crate
//! embeds its own 40-line PCG32 instead of depending on an external RNG
//! whose stream might change between major versions.

/// PCG-XSH-RR 64/32 (O'Neill 2014).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(6364136223846793005).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_range(&mut self, n: u32) -> u32 {
        assert!(n > 0, "gen_range requires a non-empty range");
        // Lemire-style rejection to avoid modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let value = self.next_u32();
            let product = u64::from(value) * u64::from(n);
            if (product as u32) >= threshold {
                return (product >> 32) as u32;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        f64::from(self.next_u32()) / f64::from(u32::MAX as u64 as u32) / (1.0 + f64::EPSILON)
    }

    /// Picks an index with probability proportional to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::new(42, 7);
        let mut b = Pcg32::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::new(1, 7);
        let mut b = Pcg32::new(2, 7);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers_values() {
        let mut rng = Pcg32::new(3, 1);
        let mut seen = [false; 8];
        for _ in 0..400 {
            let v = rng.gen_range(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_pick_tracks_weights() {
        let mut rng = Pcg32::new(9, 2);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Pcg32::new(5, 5);
        for _ in 0..100 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_range_zero_panics() {
        Pcg32::new(0, 0).gen_range(0);
    }
}
