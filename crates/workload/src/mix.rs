//! Per-machine operation mixes calibrated to the paper's Tables 1–4.
//!
//! The paper schedules SPEC CINT92 assembly produced by a production
//! compiler; we cannot ship that, so the generator reproduces the property
//! every experiment actually depends on: the *distribution of scheduling
//! attempts across operation classes* the paper reports per machine.
//! Weights below are the paper's per-class attempt percentages (weights of
//! classes the paper aggregates are split along plausible lines, e.g.
//! shifts vs. cascaded IALU ops inside SuperSPARC's 24-option group).

use mdes_machines::Machine;

/// How one operation class appears in a synthetic stream.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OpTemplate {
    /// MDES class name.
    pub class: &'static str,
    /// Relative frequency (the paper's attempt percentages).
    pub weight: f64,
    /// Number of register sources.
    pub srcs: usize,
    /// Number of register destinations.
    pub dests: usize,
}

const fn t(class: &'static str, weight: f64, srcs: usize, dests: usize) -> OpTemplate {
    OpTemplate {
        class,
        weight,
        srcs,
        dests,
    }
}

/// SuperSPARC non-branch mix (Table 1; the 24- and 36-option groups are
/// split between shifts and cascaded IALU ops).
pub const SUPERSPARC_BODY: &[OpTemplate] = &[
    t("fp_op", 0.67, 2, 1),
    t("fp_div", 0.05, 2, 1),
    t("load", 14.37, 1, 1),
    t("store", 4.92, 2, 0),
    t("shift_1src", 5.24, 1, 1),
    t("cascade_1src", 4.00, 1, 1),
    t("shift_2src", 1.80, 2, 1),
    t("cascade_2src", 1.20, 2, 1),
    t("ialu_1src", 40.00, 1, 1),
    t("ialu_move", 10.29, 1, 1),
    t("ialu_2src", 4.05, 2, 1),
];

/// SuperSPARC block terminators (13.41% of attempts are branches/serial
/// ops; serial ops are rare).
pub const SUPERSPARC_END: &[OpTemplate] = &[t("branch", 13.0, 1, 0), t("serial_op", 0.41, 0, 0)];

/// PA7100 non-branch mix (Table 2 aggregates everything into the 2-option
/// group; the split follows typical CINT92 proportions).
pub const PA7100_BODY: &[OpTemplate] = &[
    t("int_op", 43.0, 2, 1),
    t("shift_op", 5.0, 2, 1),
    t("load", 17.0, 1, 1),
    t("load_mod", 2.5, 1, 1),
    t("ldcw", 0.1, 1, 1),
    t("store", 8.0, 2, 0),
    t("fp_op", 3.00, 2, 1),
    t("fp_mpy", 1.90, 2, 1),
    t("fp_mpyadd", 0.50, 2, 1),
    t("fp_div", 0.19, 2, 1),
];

/// PA7100 block terminators (18.81% branches).
pub const PA7100_END: &[OpTemplate] = &[t("branch", 15.81, 1, 0), t("branch_n", 3.0, 1, 0)];

/// Pentium non-branch mix (Table 3: 45.42% single-option attempts
/// including the bundled branches, 54.58% pairable).
pub const PENTIUM_BODY: &[OpTemplate] = &[
    t("pair_alu", 27.0, 2, 1),
    t("pair_mov", 9.0, 1, 1),
    t("pair_load", 9.0, 1, 1),
    t("pair_store", 4.0, 2, 0),
    t("pair_alu_rm", 5.28, 1, 1),
    t("u_only_alu", 13.5, 2, 1),
    t("np_alu", 6.0, 2, 1),
    t("complex_op", 1.5, 2, 1),
    t("fp_op", 2.5, 2, 1),
    t("mul_op", 0.8, 2, 1),
    t("div_op", 0.3, 2, 1),
    t("fp_div", 0.12, 2, 1),
    t("string_op", 0.2, 2, 0),
    t("alu_mr", 3.5, 2, 0),
    t("shift_cl", 1.5, 2, 1),
    t("mcode_op", 0.3, 1, 1),
    t("seg_op", 0.2, 1, 1),
];

/// Pentium block terminators (bundled cmp+branch).
pub const PENTIUM_END: &[OpTemplate] = &[t("cmp_branch", 13.3, 2, 0), t("call_op", 2.0, 1, 0)];

/// K5 non-branch mix (Table 4).
pub const K5_BODY: &[OpTemplate] = &[
    t("rop1_fp", 14.72, 2, 1),
    t("rop1_alu", 38.00, 2, 1),
    t("rop1_shift", 7.00, 1, 1),
    t("rop1_lea", 4.50, 1, 1),
    t("rop1_flags", 0.20, 0, 1),
    t("rop1_load", 16.92, 1, 1),
    t("rop1_store", 8.00, 2, 0),
    t("rop2_op", 0.19, 1, 1),
    t("rop2_sub", 0.15, 2, 1),
    t("rop2_slow", 0.27, 1, 1),
    t("rop2_slow_st", 0.20, 2, 0),
    t("rop3_slow", 0.15, 2, 1),
];

/// K5 block terminators (the bundled cmp+br classes of Table 4).
pub const K5_END: &[OpTemplate] = &[
    t("cmp_br2", 5.91, 2, 0),
    t("cmp_br3", 2.56, 2, 0),
    t("cmp_br2_slow", 0.66, 2, 0),
    t("cmp_br3_slow", 0.43, 2, 0),
    t("rop2_fp_br", 0.14, 2, 0),
];

/// The non-terminator mix for `machine`.
pub fn body_mix(machine: Machine) -> &'static [OpTemplate] {
    match machine {
        Machine::Pa7100 => PA7100_BODY,
        Machine::Pentium => PENTIUM_BODY,
        Machine::SuperSparc => SUPERSPARC_BODY,
        Machine::K5 => K5_BODY,
    }
}

/// The block-terminator mix for `machine`.
pub fn end_mix(machine: Machine) -> &'static [OpTemplate] {
    match machine {
        Machine::Pa7100 => PA7100_END,
        Machine::Pentium => PENTIUM_END,
        Machine::SuperSparc => SUPERSPARC_END,
        Machine::K5 => K5_END,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_total_one_hundred_per_machine() {
        for machine in Machine::all() {
            let total: f64 = body_mix(machine)
                .iter()
                .chain(end_mix(machine))
                .map(|t| t.weight)
                .sum();
            assert!(
                (total - 100.0).abs() < 0.01,
                "{}: weights sum to {total}",
                machine.name()
            );
        }
    }

    #[test]
    fn every_template_names_a_real_class() {
        for machine in Machine::all() {
            let spec = machine.spec();
            for template in body_mix(machine).iter().chain(end_mix(machine)) {
                assert!(
                    spec.class_by_name(template.class).is_some(),
                    "{}: class `{}` missing",
                    machine.name(),
                    template.class
                );
            }
        }
    }

    #[test]
    fn terminators_are_branch_flagged() {
        for machine in Machine::all() {
            let spec = machine.spec();
            for template in end_mix(machine) {
                let id = spec.class_by_name(template.class).unwrap();
                assert!(
                    spec.class(id).flags.branch,
                    "{}: terminator `{}` not a branch",
                    machine.name(),
                    template.class
                );
            }
        }
    }

    #[test]
    fn body_classes_are_not_branches() {
        for machine in Machine::all() {
            let spec = machine.spec();
            for template in body_mix(machine) {
                let id = spec.class_by_name(template.class).unwrap();
                assert!(
                    !spec.class(id).flags.branch,
                    "{}: body class `{}` is a branch",
                    machine.name(),
                    template.class
                );
            }
        }
    }
}
