//! Defect-seeded fleets: machines with *known-bad* structure planted in.
//!
//! [`crate::fleet`] only emits well-formed machines, which makes it
//! useless for measuring a static analyzer's **recall** — you cannot
//! count found defects without ground truth.  [`fleet_with_defects`]
//! takes a fleet machine and, at a seeded rate, plants the two defect
//! classes the paper's transformations revolve around:
//!
//! * a **dominated option** — the first option of a reachable OR-tree,
//!   duplicated with an extra resource usage and appended at the lowest
//!   priority.  A strict usage superset of a higher-priority option can
//!   never be selected (Section 5); the analyzer must report `MD002`
//!   against that tree.
//! * an **unsatisfiable AND class** — a new class whose two AND branches
//!   each demand the same fresh resource at cycle 0.  Every option
//!   combination self-collides, so the class can never schedule; the
//!   analyzer must report `MD001` against it.
//!
//! Planted specs still pass [`MdesSpec::validate`] — these are *semantic*
//! defects, invisible to structural checking — and still compile, so the
//! checker-level probe paths work (reservations of the unsatisfiable
//! class simply always fail).  **Do not list-schedule a workload that
//! issues the planted class**: an unsatisfiable operation never places,
//! which is exactly the daemon-hang the analyzer exists to prevent.

use mdes_core::spec::{AndOrTree, Constraint, Latency, MdesSpec, OpFlags, OrTree, TableOption};
use mdes_core::usage::ResourceUsage;
use mdes_core::ClassId;

use crate::fleet::{fleet_machine, FleetMachine};
use crate::rng::Pcg32;

/// Ground truth for one planted defect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedDefect {
    /// The stable diagnostic code the analyzer must report (`MD001` or
    /// `MD002`).
    pub code: &'static str,
    /// The item name the diagnostic must be attached to: the OR-tree
    /// name for a dominated option, the class name for an unsatisfiable
    /// class.
    pub item: String,
}

/// One fleet machine plus the ground-truth list of defects planted into
/// it (empty when the seeded rate spared this machine).
#[derive(Clone, Debug)]
pub struct SeededDefectMachine {
    /// The (possibly defective) machine.  Name and base structure match
    /// [`fleet_machine`]`(seed, index)` exactly.
    pub machine: FleetMachine,
    /// Every defect planted, in planting order.
    pub defects: Vec<PlantedDefect>,
}

/// Generates `n` fleet machines and plants both defect classes into each
/// machine with probability `defect_rate` (clamped to `[0, 1]`).
/// Deterministic in `(seed, n, defect_rate)`; the underlying machines
/// are exactly `fleet(seed, n)`.
pub fn fleet_with_defects(seed: u64, n: usize, defect_rate: f64) -> Vec<SeededDefectMachine> {
    let rate = defect_rate.clamp(0.0, 1.0);
    (0..n)
        .map(|index| {
            let mut machine = fleet_machine(seed, index);
            let mut rng = Pcg32::new(seed, 0x0DEF_EC75_0000 + index as u64);
            let mut defects = Vec::new();
            if rng.gen_f64() < rate {
                defects.push(plant_dominated_option(&mut machine.spec, index));
                defects.push(plant_unsatisfiable_class(&mut machine.spec, index));
                machine
                    .spec
                    .validate()
                    .expect("planted defects are structurally valid");
            }
            SeededDefectMachine { machine, defects }
        })
        .collect()
}

/// Appends a strict usage superset of a reachable tree's first option at
/// the tree's lowest priority.
fn plant_dominated_option(spec: &mut MdesSpec, tag: usize) -> PlantedDefect {
    let class = spec.class(ClassId::from_index(0));
    let tree_id = match class.constraint {
        Constraint::Or(tree) => tree,
        Constraint::AndOr(and) => spec.and_or_tree(and).or_trees[0],
    };
    let winner = spec.or_tree(tree_id).options[0];
    let mut usages = spec.option(winner).usages.clone();
    let extra = spec
        .resources_mut()
        .add(format!("Planted{tag}"))
        .expect("fleet machines leave resource-pool headroom");
    usages.push(ResourceUsage::new(extra, 0));
    let dominated = spec.add_option(TableOption::new(usages));
    spec.or_tree_mut(tree_id).options.push(dominated);
    let item = spec
        .or_tree(tree_id)
        .name
        .clone()
        .unwrap_or_else(|| format!("#{}", tree_id.index()));
    PlantedDefect {
        code: "MD002",
        item,
    }
}

/// Adds a class whose two AND branches both demand a fresh resource at
/// cycle 0 — provably unable to schedule.
fn plant_unsatisfiable_class(spec: &mut MdesSpec, tag: usize) -> PlantedDefect {
    let clash = spec
        .resources_mut()
        .add(format!("Clash{tag}"))
        .expect("fleet machines leave resource-pool headroom");
    let left = spec.add_option(TableOption::new(vec![ResourceUsage::new(clash, 0)]));
    let right = spec.add_option(TableOption::new(vec![ResourceUsage::new(clash, 0)]));
    let lt = spec.add_or_tree(OrTree::named(format!("ClashL{tag}"), vec![left]));
    let rt = spec.add_or_tree(OrTree::named(format!("ClashR{tag}"), vec![right]));
    let and = spec.add_and_or_tree(AndOrTree::named(format!("Clash{tag}"), vec![lt, rt]));
    let name = format!("planted_unsat{tag}");
    spec.add_class(
        name.clone(),
        Constraint::AndOr(and),
        Latency::new(1),
        OpFlags::none(),
    )
    .expect("planted class name is unique");
    PlantedDefect {
        code: "MD001",
        item: name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_fleets_are_deterministic_and_based_on_the_plain_fleet() {
        let a = fleet_with_defects(42, 8, 1.0);
        let b = fleet_with_defects(42, 8, 1.0);
        let plain = crate::fleet(42, 8);
        for ((x, y), base) in a.iter().zip(&b).zip(&plain) {
            assert_eq!(x.machine.name, y.machine.name);
            assert_eq!(x.defects, y.defects);
            assert_eq!(x.machine.name, base.name);
            // Planting only ever *adds* structure.
            assert!(x.machine.spec.num_options() > base.spec.num_options());
            assert!(x.machine.spec.num_classes() > base.spec.num_classes());
        }
    }

    #[test]
    fn rate_one_plants_both_classes_everywhere_rate_zero_none() {
        for seeded in fleet_with_defects(7, 16, 1.0) {
            let codes: Vec<&str> = seeded.defects.iter().map(|d| d.code).collect();
            assert_eq!(codes, ["MD002", "MD001"], "{}", seeded.machine.name);
            seeded.machine.spec.validate().unwrap();
        }
        for seeded in fleet_with_defects(7, 16, 0.0) {
            assert!(seeded.defects.is_empty());
        }
    }

    #[test]
    fn defective_specs_still_compile_under_both_encodings() {
        use mdes_core::{CompiledMdes, UsageEncoding};
        for seeded in fleet_with_defects(11, 8, 1.0) {
            for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                CompiledMdes::compile(&seeded.machine.spec, encoding)
                    .unwrap_or_else(|e| panic!("{}: {e}", seeded.machine.name));
            }
        }
    }

    #[test]
    fn intermediate_rates_plant_a_seeded_subset() {
        let seeded = fleet_with_defects(3, 32, 0.5);
        let with: usize = seeded.iter().filter(|s| !s.defects.is_empty()).count();
        assert!(with > 0 && with < 32, "rate 0.5 planted {with}/32");
    }
}
