//! Region streams for the concurrent scheduling engine.
//!
//! A *region* is one independently schedulable basic block — the unit of
//! work `mdes-engine` drains from its queue. Unlike [`crate::generate`],
//! which derives every block from one sequential RNG walk, each region
//! here is generated from its own RNG stream seeded by `(seed, index)`.
//! That makes region *i* a pure function of the configuration and its
//! index: regions can be produced in any order (or in parallel) and the
//! stream is identical, which is what the engine's determinism tests
//! lean on.

use mdes_core::{ClassId, CompiledMdes, MdesSpec};
use mdes_sched::{Block, Reg};

use crate::generate::{make_op, Workload, WorkloadConfig};
use crate::rng::Pcg32;

/// Parameters of a synthetic region stream.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RegionConfig {
    /// Number of regions (blocks) to generate.
    pub regions: usize,
    /// Mean body operations per region; actual lengths are uniform in
    /// `[1, 2*mean_ops - 1]`.
    pub mean_ops: usize,
    /// Base seed; region `i` draws from the stream `(seed, i)`.
    pub seed: u64,
    /// Operand-shape parameters shared with the sequential generator.
    pub shape: WorkloadConfig,
}

impl RegionConfig {
    /// A default stream of `regions` regions: 16 body ops on average,
    /// with the machine-independent uniform operand shape.
    pub fn new(regions: usize) -> RegionConfig {
        RegionConfig {
            regions: regions.max(1),
            mean_ops: 16,
            seed: 0xC1D7A5,
            shape: crate::generate::uniform_config(1),
        }
    }

    /// Overrides the mean region size.
    pub fn with_mean_ops(mut self, mean_ops: usize) -> RegionConfig {
        self.mean_ops = mean_ops.max(1);
        self
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> RegionConfig {
        self.seed = seed;
        self
    }

    /// Oracle-sized regions: mean 8 body ops, so a region never exceeds
    /// 15 body operations plus one terminator — exactly the ≤ 16-op
    /// ceiling the exact scheduler (`mdes-oracle`) searches to proven
    /// optimality.
    pub fn small(regions: usize) -> RegionConfig {
        RegionConfig::new(regions).with_mean_ops(8)
    }
}

/// Generates a region stream for an arbitrary spec: a uniform class mix
/// over the non-branch classes, one branch-flagged terminator per region
/// when the spec has any.
///
/// # Panics
///
/// Panics if the spec has no schedulable non-branch classes.
pub fn generate_regions(spec: &MdesSpec, config: &RegionConfig) -> Workload {
    let mut body: Vec<ClassId> = Vec::new();
    let mut ends: Vec<ClassId> = Vec::new();
    for id in spec.class_ids() {
        if spec.class(id).flags.branch {
            ends.push(id);
        } else {
            body.push(id);
        }
    }
    assert!(
        !body.is_empty(),
        "spec has no schedulable non-branch classes"
    );

    let blocks: Vec<Block> = (0..config.regions)
        .map(|index| generate_region(spec, config, index as u64, &body, &ends))
        .collect();
    let total_ops = blocks.iter().map(Block::len).sum();
    Workload { blocks, total_ops }
}

/// [`generate_regions`] for a *compiled* description — the form a serving
/// daemon holds after loading a binary LMDES image, where the high-level
/// spec is no longer available.  Classes are partitioned by the compiled
/// branch/store flags, which round-trip through the image unchanged, so
/// for a description compiled from a spec this produces exactly the block
/// stream [`generate_regions`] would: the region at index `i` is a pure
/// function of `(config, i, class flags)` and nothing else.  That purity
/// is what lets two parties (a daemon and a client, or a pre-reload and a
/// post-rollback run) independently derive byte-identical workloads.
///
/// # Panics
///
/// Panics if the description has no schedulable non-branch classes.
pub fn generate_compiled_regions(mdes: &CompiledMdes, config: &RegionConfig) -> Workload {
    let mut body: Vec<ClassId> = Vec::new();
    let mut ends: Vec<ClassId> = Vec::new();
    for (index, class) in mdes.classes().iter().enumerate() {
        let id = ClassId::from_index(index);
        if class.flags.branch {
            ends.push(id);
        } else {
            body.push(id);
        }
    }
    assert!(
        !body.is_empty(),
        "description has no schedulable non-branch classes"
    );

    let is_store = |class: ClassId| mdes.class(class).flags.store;
    let blocks: Vec<Block> = (0..config.regions)
        .map(|index| region_at(config, index as u64, &body, &ends, &is_store))
        .collect();
    let total_ops = blocks.iter().map(Block::len).sum();
    Workload { blocks, total_ops }
}

/// Generates the single region at `index` — independent of every other
/// region by construction.
fn generate_region(
    spec: &MdesSpec,
    config: &RegionConfig,
    index: u64,
    body: &[ClassId],
    ends: &[ClassId],
) -> Block {
    region_at(config, index, body, ends, &|class| {
        spec.class(class).flags.store
    })
}

/// The shared region builder: everything machine-specific arrives through
/// the class partition and the `is_store` predicate, so the spec-level and
/// compiled-level entry points generate identical streams.
fn region_at(
    config: &RegionConfig,
    index: u64,
    body: &[ClassId],
    ends: &[ClassId],
    is_store: &dyn Fn(ClassId) -> bool,
) -> Block {
    let mut rng = Pcg32::new(config.seed, index.wrapping_add(1));
    let span = (2 * config.mean_ops - 1).max(1) as u32;
    let body_len = 1 + rng.gen_range(span) as usize;

    let mut block = Block::new();
    let mut recent: Vec<Reg> = Vec::with_capacity(8);
    let mut next_reg = 0u32;
    for _ in 0..body_len {
        let class = body[rng.gen_range(body.len() as u32) as usize];
        let dests = usize::from(!is_store(class));
        block.push(make_op(
            class,
            2,
            dests,
            &config.shape,
            &mut rng,
            &mut recent,
            &mut next_reg,
        ));
    }
    if !ends.is_empty() {
        let class = ends[rng.gen_range(ends.len() as u32) as usize];
        block.push(make_op(
            class,
            1,
            0,
            &config.shape,
            &mut rng,
            &mut recent,
            &mut next_reg,
        ));
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_machines::Machine;

    #[test]
    fn region_streams_are_deterministic() {
        let spec = Machine::Pa7100.spec();
        let config = RegionConfig::new(64).with_seed(9);
        assert_eq!(
            generate_regions(&spec, &config),
            generate_regions(&spec, &config)
        );
        assert_ne!(
            generate_regions(&spec, &config),
            generate_regions(&spec, &config.with_seed(10))
        );
    }

    #[test]
    fn each_region_is_independent_of_the_stream_length() {
        // Region i must not depend on how many regions surround it:
        // a longer stream starts with the shorter one.
        let spec = Machine::SuperSparc.spec();
        let short = generate_regions(&spec, &RegionConfig::new(16));
        let long = generate_regions(&spec, &RegionConfig::new(48));
        assert_eq!(short.blocks[..], long.blocks[..16]);
    }

    #[test]
    fn compiled_regions_match_spec_regions_exactly() {
        use mdes_core::{CompiledMdes, UsageEncoding};
        for machine in Machine::all() {
            let spec = machine.spec();
            let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
            let config = RegionConfig::new(24).with_seed(7).with_mean_ops(9);
            assert_eq!(
                generate_regions(&spec, &config),
                generate_compiled_regions(&compiled, &config),
                "{}",
                machine.name()
            );
        }
    }

    #[test]
    fn regions_respect_size_and_terminator_shape() {
        let spec = Machine::K5.spec();
        let config = RegionConfig::new(128).with_mean_ops(6);
        let workload = generate_regions(&spec, &config);
        assert_eq!(workload.blocks.len(), 128);
        for block in &workload.blocks {
            assert!(block.len() >= 2 && block.len() <= 2 * 6 + 1);
            let last = block.ops.last().unwrap();
            assert!(spec.class(last.class).flags.branch);
        }
        let mean = workload.total_ops as f64 / workload.blocks.len() as f64;
        assert!((3.0..12.0).contains(&mean), "mean region size {mean}");
    }
}
