//! The synthetic workload generator.
//!
//! Emits a stream of basic blocks whose class mix matches the calibrated
//! per-machine distributions of [`crate::mix`].  Each block ends in a
//! (bundled) branch; body operations draw sources preferentially from
//! recently defined registers so realistic flow-dependence chains form,
//! and the register-pool size models the prepass (many virtual registers)
//! vs. postpass (few architectural registers) distinction the paper makes
//! for the x86 machines (Section 4).

use mdes_core::{ClassId, MdesSpec};
use mdes_machines::Machine;
use mdes_sched::{Block, Op, Reg};

use crate::mix::{body_mix, end_mix, OpTemplate};
use crate::rng::Pcg32;

/// Generator parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Total operations to generate (the paper schedules 201k–282k static
    /// ops per platform; the default experiment size is smaller but
    /// statistically equivalent).
    pub total_ops: usize,
    /// PRNG seed; the same seed always yields the same stream.
    pub seed: u64,
    /// Register-pool size (small = postpass-like pressure).
    pub registers: u32,
    /// Probability that a source operand reuses a recently defined
    /// register (creates flow-dependence chains).
    pub dependence_density: f64,
    /// Probability that a source operand is an immediate or memory
    /// operand carrying no register dependence (high for x86, where many
    /// operations take memory operands).
    pub free_operand_fraction: f64,
    /// Attach a concrete opcode mnemonic (drawn from the machine's `op`
    /// vocabulary) to every operation.  Off by default: mnemonics cost
    /// an allocation per operation and only matter for human-readable
    /// output.
    pub mnemonics: bool,
    /// Block-length multiplier modeling the compiler's ILP-optimization
    /// level (1.0 = the calibrated SPEC CINT92 mix; superblock/hyperblock
    /// formation and inlining produce proportionally longer blocks).
    pub ilp_scale: f64,
}

impl WorkloadConfig {
    /// The default experiment configuration for `machine`: prepass-style
    /// for the RISC machines, postpass-style (8 architectural registers)
    /// for the x86 machines, matching the paper's setup.
    pub fn paper_default(machine: Machine) -> WorkloadConfig {
        // Per-machine operand-shape calibration: chosen so the measured
        // scheduling-attempt rates land near the paper's Table 5 column
        // (PA7100 1.97, Pentium 1.47, SuperSPARC 2.05, K5 1.65).
        let (registers, dependence_density, free_operand_fraction, ilp_scale) = match machine {
            Machine::Pentium => (8, 0.45, 0.35, 1.0),
            Machine::K5 => (8, 0.15, 0.75, 1.0),
            Machine::Pa7100 => (32, 0.20, 0.25, 1.0),
            Machine::SuperSparc => (32, 0.20, 0.20, 1.0),
        };
        WorkloadConfig {
            total_ops: 40_000,
            seed: 0xC1D7A5,
            registers,
            dependence_density,
            free_operand_fraction,
            mnemonics: false,
            ilp_scale,
        }
    }

    /// Scales mean block length (ILP-optimization level).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn with_ilp_scale(mut self, scale: f64) -> WorkloadConfig {
        assert!(
            scale.is_finite() && scale > 0.0,
            "ilp_scale must be positive"
        );
        self.ilp_scale = scale;
        self
    }

    /// Enables opcode mnemonics on generated operations.
    pub fn with_mnemonics(mut self) -> WorkloadConfig {
        self.mnemonics = true;
        self
    }

    /// Scales the stream length (for quick tests and benches).
    pub fn with_total_ops(mut self, total_ops: usize) -> WorkloadConfig {
        self.total_ops = total_ops.max(1);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> WorkloadConfig {
        self.seed = seed;
        self
    }
}

/// A generated workload: blocks plus bookkeeping for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// The basic blocks, each ending in a branch-class operation.
    pub blocks: Vec<Block>,
    /// Total operations across blocks.
    pub total_ops: usize,
}

impl Workload {
    /// Count of operations per class id.
    pub fn class_histogram(&self, spec: &MdesSpec) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; spec.num_classes()];
        for block in &self.blocks {
            for op in &block.ops {
                counts[op.class.index()] += 1;
            }
        }
        spec.class_ids()
            .map(|id| (spec.class(id).name.clone(), counts[id.index()]))
            .collect()
    }
}

/// Generates the synthetic stream for `machine`.
///
/// # Panics
///
/// Panics if a mix template names a class missing from `spec` — the mixes
/// and machine descriptions ship together and are covered by tests.
pub fn generate(machine: Machine, spec: &MdesSpec, config: &WorkloadConfig) -> Workload {
    let resolve = |template: &OpTemplate| -> (ClassId, usize, usize) {
        let id = spec
            .class_by_name(template.class)
            .unwrap_or_else(|| panic!("mix references unknown class `{}`", template.class));
        (id, template.srcs, template.dests)
    };
    // Per-class opcode lists for mnemonic annotation.
    let vocabulary: Vec<Vec<String>> = spec
        .class_ids()
        .map(|id| {
            spec.opcodes_of_class(id)
                .into_iter()
                .map(str::to_string)
                .collect()
        })
        .collect();
    let body: Vec<(ClassId, usize, usize)> = body_mix(machine).iter().map(resolve).collect();
    let body_weights: Vec<f64> = body_mix(machine).iter().map(|t| t.weight).collect();
    let ends: Vec<(ClassId, usize, usize)> = end_mix(machine).iter().map(resolve).collect();
    let end_weights: Vec<f64> = end_mix(machine).iter().map(|t| t.weight).collect();

    // Mean body length so branches hit their share of the stream:
    // branch_fraction = 1 / (body_len + 1).
    let branch_weight: f64 = end_weights.iter().sum();
    let total_weight: f64 = branch_weight + body_weights.iter().sum::<f64>();
    let mean_body_len = ((total_weight / branch_weight - 1.0) * config.ilp_scale).max(1.0);

    let mut rng = Pcg32::new(config.seed, machine as u64 + 1);
    let mut blocks = Vec::new();
    let mut emitted = 0usize;
    let mut next_reg = 0u32;

    while emitted < config.total_ops {
        // Block length: uniform in [1, 2*mean-1], mean = mean_body_len.
        let span = (2.0 * mean_body_len - 1.0).max(1.0) as u32;
        let body_len = 1 + rng.gen_range(span) as usize;

        let mut block = Block::new();
        let mut recent: Vec<Reg> = Vec::with_capacity(8);

        for _ in 0..body_len {
            let pick = rng.pick_weighted(&body_weights);
            let (class, srcs, dests) = body[pick];
            let op = make_op(
                class,
                srcs,
                dests,
                config,
                &mut rng,
                &mut recent,
                &mut next_reg,
            );
            block.push(annotate(op, config, &vocabulary, &mut rng));
        }
        // Terminator.
        let pick = rng.pick_weighted(&end_weights);
        let (class, srcs, dests) = ends[pick];
        let op = make_op(
            class,
            srcs,
            dests,
            config,
            &mut rng,
            &mut recent,
            &mut next_reg,
        );
        block.push(annotate(op, config, &vocabulary, &mut rng));

        emitted += block.len();
        blocks.push(block);
    }

    Workload {
        blocks,
        total_ops: emitted,
    }
}

/// Attaches a random opcode of the op's class when mnemonics are on.
fn annotate(op: Op, config: &WorkloadConfig, vocabulary: &[Vec<String>], rng: &mut Pcg32) -> Op {
    if !config.mnemonics {
        return op;
    }
    let opcodes = &vocabulary[op.class.index()];
    if opcodes.is_empty() {
        return op;
    }
    let pick = rng.gen_range(opcodes.len() as u32) as usize;
    op.with_mnemonic(opcodes[pick].clone())
}

/// Converts a workload into software-pipelinable loop bodies: each block
/// loses its trailing branch (a pipelined loop supplies its own back
/// edge) and gains a simple induction recurrence — the last remaining
/// operation feeds the first at distance 1.  Blocks that would become
/// empty are dropped.
///
/// Used by the modulo-scheduling experiments and tests.
pub fn as_loop_bodies(workload: &Workload) -> Vec<mdes_sched::LoopBlock> {
    workload
        .blocks
        .iter()
        .filter_map(|block| {
            let mut body = block.clone();
            body.ops.pop();
            if body.ops.is_empty() {
                return None;
            }
            let carried = vec![(body.ops.len() - 1, 0, 1, 1)];
            Some(mdes_sched::LoopBlock { body, carried })
        })
        .collect()
}

/// Generates a stream for an *arbitrary* spec with a uniform class mix:
/// every non-branch class equally likely in block bodies, every
/// branch-flagged class equally likely as terminator (or none, if the
/// spec has no branch classes).  Operand shapes default to two sources
/// and one destination (none for stores/branches).
///
/// This is the generic fallback `mdesc schedule` uses for user-supplied
/// descriptions; the calibrated per-machine mixes remain the right tool
/// for the paper's experiments.
pub fn generate_uniform(spec: &MdesSpec, config: &WorkloadConfig) -> Workload {
    let mut body: Vec<ClassId> = Vec::new();
    let mut ends: Vec<ClassId> = Vec::new();
    for id in spec.class_ids() {
        if spec.class(id).flags.branch {
            ends.push(id);
        } else {
            body.push(id);
        }
    }
    assert!(
        !body.is_empty(),
        "spec has no schedulable non-branch classes"
    );

    let mut rng = Pcg32::new(config.seed, 0xD1F0);
    let mut blocks = Vec::new();
    let mut emitted = 0usize;
    let mut next_reg = 0u32;
    while emitted < config.total_ops {
        let body_len = 3 + rng.gen_range(10) as usize;
        let mut block = Block::new();
        let mut recent: Vec<Reg> = Vec::with_capacity(8);
        for _ in 0..body_len {
            let class = body[rng.gen_range(body.len() as u32) as usize];
            let dests = usize::from(!spec.class(class).flags.store);
            block.push(make_op(
                class,
                2,
                dests,
                config,
                &mut rng,
                &mut recent,
                &mut next_reg,
            ));
        }
        if !ends.is_empty() {
            let class = ends[rng.gen_range(ends.len() as u32) as usize];
            block.push(make_op(
                class,
                1,
                0,
                config,
                &mut rng,
                &mut recent,
                &mut next_reg,
            ));
        }
        emitted += block.len();
        blocks.push(block);
    }
    Workload {
        blocks,
        total_ops: emitted,
    }
}

/// A machine-independent default configuration for [`generate_uniform`].
pub fn uniform_config(total_ops: usize) -> WorkloadConfig {
    WorkloadConfig {
        total_ops: total_ops.max(1),
        seed: 0xC1D7A5,
        registers: 16,
        dependence_density: 0.30,
        free_operand_fraction: 0.25,
        mnemonics: false,
        ilp_scale: 1.0,
    }
}

pub(crate) fn make_op(
    class: ClassId,
    srcs: usize,
    dests: usize,
    config: &WorkloadConfig,
    rng: &mut Pcg32,
    recent: &mut Vec<Reg>,
    next_reg: &mut u32,
) -> Op {
    let mut sources = Vec::with_capacity(srcs);
    for _ in 0..srcs {
        let roll = rng.gen_f64();
        let reg = if !recent.is_empty() && roll < config.dependence_density {
            recent[rng.gen_range(recent.len() as u32) as usize]
        } else if roll < config.dependence_density + config.free_operand_fraction {
            // Immediate / memory operand: a fresh register id above the
            // pool that no operation ever writes, hence no dependence.
            Reg(config.registers + rng.gen_range(1 << 16))
        } else {
            Reg(rng.gen_range(config.registers))
        };
        sources.push(reg);
    }
    let mut dest_regs = Vec::with_capacity(dests);
    for _ in 0..dests {
        let reg = Reg(*next_reg % config.registers);
        *next_reg = next_reg.wrapping_add(1);
        dest_regs.push(reg);
        recent.push(reg);
        if recent.len() > 6 {
            recent.remove(0);
        }
    }
    Op::new(class, dest_regs, sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(2_000);
        let a = generate(machine, &spec, &config);
        let b = generate(machine, &spec, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(2_000);
        let a = generate(machine, &spec, &config);
        let b = generate(machine, &spec, &config.with_seed(1));
        assert_ne!(a, b);
    }

    #[test]
    fn every_block_ends_with_a_branch_class() {
        for machine in Machine::all() {
            let spec = machine.spec();
            let config = WorkloadConfig::paper_default(machine).with_total_ops(1_000);
            let workload = generate(machine, &spec, &config);
            for block in &workload.blocks {
                let last = block.ops.last().unwrap();
                assert!(spec.class(last.class).flags.branch);
                // And only the last op is a branch.
                for op in &block.ops[..block.len() - 1] {
                    assert!(!spec.class(op.class).flags.branch);
                }
            }
        }
    }

    #[test]
    fn class_frequencies_track_the_paper_mix() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(40_000);
        let workload = generate(machine, &spec, &config);
        let histogram = workload.class_histogram(&spec);
        let total = workload.total_ops as f64;
        let pct = |name: &str| -> f64 {
            histogram
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c as f64 / total * 100.0)
                .unwrap()
        };
        // Targets from Table 1, tolerance ±3 percentage points (the
        // branch share additionally depends on block-length rounding).
        assert!(
            (pct("ialu_1src") - 40.0).abs() < 3.0,
            "{}",
            pct("ialu_1src")
        );
        assert!(
            (pct("ialu_move") - 10.29).abs() < 2.0,
            "{}",
            pct("ialu_move")
        );
        assert!((pct("load") - 14.37).abs() < 3.0, "{}", pct("load"));
        assert!((pct("branch") - 13.0).abs() < 3.5, "{}", pct("branch"));
        assert!(pct("fp_op") < 2.0);
    }

    #[test]
    fn total_ops_is_at_least_requested() {
        let machine = Machine::K5;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(500);
        let workload = generate(machine, &spec, &config);
        assert!(workload.total_ops >= 500);
        assert_eq!(
            workload.total_ops,
            workload.blocks.iter().map(Block::len).sum::<usize>()
        );
    }

    #[test]
    fn postpass_machines_use_small_register_pools() {
        assert_eq!(WorkloadConfig::paper_default(Machine::K5).registers, 8);
        assert_eq!(WorkloadConfig::paper_default(Machine::Pentium).registers, 8);
        assert_eq!(
            WorkloadConfig::paper_default(Machine::SuperSparc).registers,
            32
        );
    }

    #[test]
    fn loop_bodies_drop_branches_and_carry_a_recurrence() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let workload = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine).with_total_ops(600),
        );
        let loops = as_loop_bodies(&workload);
        assert!(!loops.is_empty());
        for looped in &loops {
            for op in &looped.body.ops {
                assert!(!spec.class(op.class).flags.branch);
            }
            assert_eq!(looped.carried.len(), 1);
            let (from, to, _, distance) = looped.carried[0];
            assert_eq!(to, 0);
            assert_eq!(from, looped.body.len() - 1);
            assert_eq!(distance, 1);
        }
    }

    #[test]
    fn ilp_scale_lengthens_blocks() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let base = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine).with_total_ops(4_000),
        );
        let scaled = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine)
                .with_total_ops(4_000)
                .with_ilp_scale(3.0),
        );
        let mean = |w: &Workload| w.total_ops as f64 / w.blocks.len() as f64;
        assert!(mean(&scaled) > mean(&base) * 2.0);
    }

    #[test]
    fn uniform_generator_works_on_arbitrary_specs() {
        let spec = mdes_machines::Machine::Pa7100.spec();
        let workload = generate_uniform(&spec, &uniform_config(500));
        assert!(workload.total_ops >= 500);
        // Uniform mix touches every non-branch class.
        let histogram = workload.class_histogram(&spec);
        for (name, count) in &histogram {
            let id = spec.class_by_name(name).unwrap();
            if !spec.class(id).flags.branch {
                assert!(*count > 0, "class `{name}` never generated");
            }
        }
    }

    #[test]
    fn mnemonics_come_from_the_machine_vocabulary() {
        let machine = Machine::SuperSparc;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine)
            .with_total_ops(300)
            .with_mnemonics();
        let workload = generate(machine, &spec, &config);
        for block in &workload.blocks {
            for op in &block.ops {
                if spec.class(op.class).name.starts_with("cascade") {
                    continue; // scheduler-internal classes have no opcodes
                }
                assert!(!op.mnemonic.is_empty());
                assert_eq!(spec.opcode_class(&op.mnemonic), Some(op.class));
            }
        }
        // And the default stays mnemonic-free (identical stream shape).
        let plain = generate(
            machine,
            &spec,
            &WorkloadConfig::paper_default(machine).with_total_ops(300),
        );
        assert!(plain
            .blocks
            .iter()
            .all(|b| b.ops.iter().all(|o| o.mnemonic.is_empty())));
    }

    #[test]
    fn operand_counts_match_templates() {
        let machine = Machine::Pentium;
        let spec = machine.spec();
        let config = WorkloadConfig::paper_default(machine).with_total_ops(500);
        let workload = generate(machine, &spec, &config);
        for block in &workload.blocks {
            for op in &block.ops {
                let name = &spec.class(op.class).name;
                let template = crate::mix::body_mix(machine)
                    .iter()
                    .chain(crate::mix::end_mix(machine))
                    .find(|t| t.class == *name)
                    .unwrap();
                assert_eq!(op.srcs.len(), template.srcs);
                assert_eq!(op.dests.len(), template.dests);
            }
        }
    }
}
