//! Synthetic SPEC CINT92-equivalent workloads.
//!
//! The paper evaluates each machine description by scheduling SPEC CINT92
//! assembly (201k–282k static operations per platform) produced by a
//! production ILP compiler.  That input cannot be shipped, so this crate
//! substitutes deterministic synthetic streams that reproduce the two
//! properties every measured quantity depends on:
//!
//! 1. the distribution of scheduling attempts across operation classes
//!    (calibrated per machine to the paper's Tables 1–4);
//! 2. local contention structure — flow-dependence chains through a
//!    register pool (small/architectural for the postpass x86 machines,
//!    large/virtual for the prepass RISC machines) and one (bundled)
//!    branch per block.
//!
//! See DESIGN.md ("Substitutions") for the full argument.
//!
//! # Example
//!
//! ```
//! use mdes_machines::Machine;
//! use mdes_workload::{generate, WorkloadConfig};
//!
//! let machine = Machine::SuperSparc;
//! let spec = machine.spec();
//! let config = WorkloadConfig::paper_default(machine).with_total_ops(1_000);
//! let workload = generate(machine, &spec, &config);
//! assert!(workload.total_ops >= 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defects;
pub mod fleet;
pub mod generate;
pub mod mix;
pub mod regions;
pub mod rng;

pub use defects::{fleet_with_defects, PlantedDefect, SeededDefectMachine};
pub use fleet::{fleet, fleet_machine, FleetMachine};
pub use generate::{
    as_loop_bodies, generate, generate_uniform, uniform_config, Workload, WorkloadConfig,
};
pub use mix::{body_mix, end_mix, OpTemplate};
pub use regions::{generate_compiled_regions, generate_regions, RegionConfig};
pub use rng::Pcg32;
