//! Criterion bench: cost of the MDES transformation pipeline itself and
//! of AND/OR → OR expansion (the offline "MDES customization" phase —
//! cheap enough to run at compiler start-up, which is the deployment
//! model of the two-tier design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdes_core::{CompiledMdes, UsageEncoding};
use mdes_machines::Machine;
use mdes_opt::pipeline::{optimize, PipelineConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for machine in Machine::all() {
        let spec = machine.spec();
        group.bench_with_input(
            BenchmarkId::new("full-optimize", machine.name()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut copy = spec.clone();
                    optimize(&mut copy, &PipelineConfig::full());
                    copy.num_options()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("expand-to-or", machine.name()),
            &spec,
            |b, spec| b.iter(|| mdes_opt::expand_to_or(spec).0.num_options()),
        );
        group.bench_with_input(
            BenchmarkId::new("hmdl-compile", machine.name()),
            &machine.source(),
            |b, source| b.iter(|| mdes_lang::compile(source).unwrap().num_options()),
        );
        group.bench_with_input(
            BenchmarkId::new("lower-bitvector", machine.name()),
            &spec,
            |b, spec| {
                b.iter(|| {
                    CompiledMdes::compile(spec, UsageEncoding::BitVector)
                        .unwrap()
                        .num_options()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
