//! Criterion bench: LMDES image encode/decode throughput — the paper's
//! deployment model loads the customized low-level MDES at every
//! compiler start-up, so the external representation is designed "to
//! minimize the time required to load the MDES into memory" (Section 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdes_bench::experiment::{prepare_spec, Rep, Stage};
use mdes_core::{lmdes, CompiledMdes, UsageEncoding};
use mdes_machines::Machine;

fn bench_lmdes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lmdes");
    for machine in Machine::all() {
        for (label, rep, stage) in [
            ("unopt-or", Rep::OrTree, Stage::Original),
            ("full-andor", Rep::AndOr, Stage::Full),
        ] {
            let spec = prepare_spec(machine, rep, stage);
            let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
            let image = lmdes::write(&compiled);
            group.throughput(Throughput::Bytes(image.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("read-{label}"), machine.name()),
                &image,
                |b, image| b.iter(|| lmdes::read(image).unwrap().num_options()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("write-{label}"), machine.name()),
                &compiled,
                |b, compiled| b.iter(|| lmdes::write(compiled).len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lmdes);
criterion_main!(benches);
