//! Criterion bench: raw constraint-check cost per representation,
//! encoding and transformation stage (the time dimension behind the
//! paper's Tables 5, 10, 12, 13 and 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdes_bench::experiment::{prepare_spec, Rep, Stage};
use mdes_core::{CheckStats, Checker, ClassId, CompiledMdes, RuMap, UsageEncoding};
use mdes_machines::Machine;

/// Issues operations of every class round-robin against a warm RU map,
/// releasing periodically so attempts keep alternating between success
/// and failure (the paper's ~50/50 regime).
fn drive(checker: &Checker<'_>, classes: &[ClassId]) -> u64 {
    let mut ru = RuMap::new();
    let mut stats = CheckStats::new();
    let mut reserved = Vec::new();
    for cycle in 0..64i32 {
        for &class in classes {
            if let Some(choice) = checker.try_reserve(&mut ru, class, cycle, &mut stats) {
                reserved.push(choice);
            }
        }
        if cycle % 8 == 7 {
            for choice in reserved.drain(..) {
                checker.release(&mut ru, &choice);
            }
        }
    }
    stats.resource_checks
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for machine in [Machine::SuperSparc, Machine::K5] {
        for (label, rep, stage, encoding) in [
            (
                "or-unopt-scalar",
                Rep::OrTree,
                Stage::Original,
                UsageEncoding::Scalar,
            ),
            (
                "or-full-bitvec",
                Rep::OrTree,
                Stage::Full,
                UsageEncoding::BitVector,
            ),
            (
                "andor-unopt-scalar",
                Rep::AndOr,
                Stage::Original,
                UsageEncoding::Scalar,
            ),
            (
                "andor-full-bitvec",
                Rep::AndOr,
                Stage::Full,
                UsageEncoding::BitVector,
            ),
        ] {
            let spec = prepare_spec(machine, rep, stage);
            let compiled = CompiledMdes::compile(&spec, encoding).unwrap();
            let classes: Vec<ClassId> = spec.class_ids().collect();
            group.bench_with_input(
                BenchmarkId::new(label, machine.name()),
                &compiled,
                |b, compiled| {
                    let checker = Checker::new(compiled);
                    b.iter(|| drive(&checker, &classes));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
