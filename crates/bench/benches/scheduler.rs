//! Criterion bench: end-to-end list-scheduling throughput per machine and
//! representation — the compile-time impact the paper's introduction
//! motivates ("the efficiency of such checks can significantly impact the
//! compile time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdes_bench::experiment::{default_workload, prepare_spec, Rep, Stage};
use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes_machines::Machine;
use mdes_sched::ListScheduler;
use mdes_workload::generate;

const OPS: usize = 4_000;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    for machine in Machine::all() {
        for (label, rep, stage, encoding) in [
            (
                "or-unopt",
                Rep::OrTree,
                Stage::Original,
                UsageEncoding::Scalar,
            ),
            (
                "or-full",
                Rep::OrTree,
                Stage::Full,
                UsageEncoding::BitVector,
            ),
            (
                "andor-full",
                Rep::AndOr,
                Stage::Full,
                UsageEncoding::BitVector,
            ),
        ] {
            let spec = prepare_spec(machine, rep, stage);
            let workload = generate(machine, &spec, &default_workload(machine, OPS));
            let compiled = CompiledMdes::compile(&spec, encoding).unwrap();
            group.throughput(Throughput::Elements(workload.total_ops as u64));
            group.bench_with_input(
                BenchmarkId::new(label, machine.name()),
                &(compiled, workload),
                |b, (compiled, workload)| {
                    let scheduler = ListScheduler::new(compiled);
                    b.iter(|| {
                        let mut stats = CheckStats::new();
                        for block in &workload.blocks {
                            scheduler.schedule(block, &mut stats);
                        }
                        stats.resource_checks
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
