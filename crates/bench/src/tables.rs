//! Generators for every table of the paper's evaluation.
//!
//! Each function runs the corresponding experiment and renders a
//! plain-text table with the paper's reference values side by side
//! ("paper" columns; "—" where the scanned source is illegible).
//! Absolute agreement is not expected — the workload is a calibrated
//! synthetic stream and the memory model is a reconstruction — but the
//! *shape* (who wins, by what factor, where the anomalies sit) must
//! match; EXPERIMENTS.md records the comparison.

use std::collections::BTreeMap;

use mdes_core::stats::percent_reduced;
use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes_machines::Machine;
use mdes_sched::ListScheduler;
use mdes_workload::generate;

use crate::experiment::{default_workload, measure_only, prepare_spec, run, Rep, Stage};
use crate::paper;
use crate::report::{f2, paper_bytes, paper_ref, pct, TextTable};

/// Workload size for every scheduling table.
#[derive(Copy, Clone, Debug)]
pub struct TableConfig {
    /// Operations per machine stream.
    pub total_ops: usize,
}

impl Default for TableConfig {
    fn default() -> TableConfig {
        TableConfig { total_ops: 40_000 }
    }
}

/// Per-class scheduling attempts, grouped by option count — the engine
/// behind Tables 1–4.
fn attempt_breakdown(
    machine: Machine,
    config: &TableConfig,
) -> BTreeMap<usize, (f64, Vec<String>)> {
    // Use the authored AND/OR spec: option counts are the cross products.
    let spec = machine.spec();
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let scheduler = ListScheduler::new(&compiled);
    let workload = generate(machine, &spec, &default_workload(machine, config.total_ops));

    let mut per_class_attempts = vec![0u64; spec.num_classes()];
    let mut stats = CheckStats::new();
    for block in &workload.blocks {
        let schedule = scheduler.schedule(block, &mut stats);
        for (op, &attempts) in block.ops.iter().zip(&schedule.attempts) {
            per_class_attempts[op.class.index()] += u64::from(attempts);
        }
    }
    let total: u64 = per_class_attempts.iter().sum();

    let mut groups: BTreeMap<usize, (f64, Vec<String>)> = BTreeMap::new();
    for id in spec.class_ids() {
        let count = spec.class_option_count(id);
        let share = per_class_attempts[id.index()] as f64 / total as f64 * 100.0;
        let entry = groups.entry(count).or_insert((0.0, Vec::new()));
        entry.0 += share;
        entry.1.push(spec.class(id).name.clone());
    }
    groups
}

/// Tables 1–4: option breakdown and scheduling characteristics.
pub fn table_breakdown(machine: Machine, config: &TableConfig) -> String {
    let groups = attempt_breakdown(machine, config);
    let reference: &[(usize, f64)] = match machine {
        Machine::SuperSparc => paper::TABLE1,
        Machine::Pa7100 => paper::TABLE2,
        Machine::Pentium => paper::TABLE3,
        Machine::K5 => paper::TABLE4,
    };
    let table_no = match machine {
        Machine::SuperSparc => 1,
        Machine::Pa7100 => 2,
        Machine::Pentium => 3,
        Machine::K5 => 4,
    };

    let mut table = TextTable::new([
        "Options",
        "% attempts (ours)",
        "% attempts (paper)",
        "Classes",
    ]);
    for (&options, (share, classes)) in &groups {
        let paper_share = reference
            .iter()
            .find(|(o, _)| *o == options)
            .map(|(_, p)| *p);
        table.row([
            options.to_string(),
            pct(*share),
            paper_share.map(pct).unwrap_or_else(|| "—".into()),
            classes.join(", "),
        ]);
    }
    format!(
        "Table {table_no}: {} option breakdown and scheduling characteristics\n{}",
        machine.name(),
        table.render()
    )
}

/// Table 5: original scheduling characteristics of all machines.
pub fn table5(config: &TableConfig) -> String {
    let mut table = TextTable::new([
        "MDES",
        "Ops",
        "Att/Op",
        "paper",
        "OR Opt/Att",
        "paper",
        "OR Chk/Att",
        "paper",
        "A/O Opt/Att",
        "paper",
        "A/O Chk/Att",
        "paper",
        "Chk reduced",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let workload = default_workload(machine, config.total_ops);
        let or = run(
            machine,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
            &workload,
        );
        let andor = run(
            machine,
            Rep::AndOr,
            Stage::Original,
            UsageEncoding::Scalar,
            &workload,
        );
        assert_eq!(or.schedule_hash, andor.schedule_hash, "schedules diverged");
        table.row([
            machine.name().to_string(),
            or.stats.operations.to_string(),
            f2(or.stats.attempts_per_op()),
            paper_ref(paper::TABLE5_ATTEMPTS[i]),
            f2(or.stats.options_per_attempt_avg()),
            paper_ref(paper::TABLE5_OR_OPTIONS[i]),
            f2(or.stats.checks_per_attempt()),
            paper_ref(paper::TABLE5_OR_CHECKS[i]),
            f2(andor.stats.options_per_attempt_avg()),
            paper_ref(paper::TABLE5_ANDOR_OPTIONS[i]),
            f2(andor.stats.checks_per_attempt()),
            paper_ref(paper::TABLE5_ANDOR_CHECKS[i]),
            pct(percent_reduced(
                or.stats.checks_per_attempt(),
                andor.stats.checks_per_attempt(),
            )),
        ]);
    }
    format!(
        "Table 5: original scheduling characteristics (OR vs AND/OR)\n{}",
        table.render()
    )
}

/// Renders one size-comparison table over two (rep, stage, encoding)
/// cells.
#[allow(clippy::too_many_arguments)]
fn size_table(
    title: &str,
    before: (Rep, Stage, UsageEncoding),
    after: (Rep, Stage, UsageEncoding),
    paper_before: Option<&[Option<usize>; 4]>,
    paper_after: &[Option<usize>; 4],
    rep_label: &str,
) -> String {
    let mut table = TextTable::new([
        "MDES",
        "Before (B)",
        "paper",
        "After (B)",
        "paper",
        "Reduction",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let b = measure_only(machine, before.0, before.1, before.2).total();
        let a = measure_only(machine, after.0, after.1, after.2).total();
        table.row([
            machine.name().to_string(),
            b.to_string(),
            paper_before.map_or("—".into(), |p| paper_bytes(p[i])),
            a.to_string(),
            paper_bytes(paper_after[i]),
            pct(percent_reduced(b as f64, a as f64)),
        ]);
    }
    format!("{title} [{rep_label}]\n{}", table.render())
}

/// Table 6: original memory requirements of both representations.
pub fn table6() -> String {
    let mut table = TextTable::new([
        "MDES",
        "Trees",
        "OR opts",
        "OR bytes",
        "paper",
        "A/O opts",
        "A/O bytes",
        "paper",
        "Size reduced",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let or = measure_only(machine, Rep::OrTree, Stage::Original, UsageEncoding::Scalar);
        let andor = measure_only(machine, Rep::AndOr, Stage::Original, UsageEncoding::Scalar);
        table.row([
            machine.name().to_string(),
            andor.num_trees.to_string(),
            or.num_options.to_string(),
            or.total().to_string(),
            paper_bytes(paper::TABLE6_OR_BYTES[i]),
            andor.num_options.to_string(),
            andor.total().to_string(),
            paper_bytes(paper::TABLE6_ANDOR_BYTES[i]),
            pct(percent_reduced(or.total() as f64, andor.total() as f64)),
        ]);
    }
    format!(
        "Table 6: original MDES memory requirements\n{}",
        table.render()
    )
}

/// Table 7: memory after eliminating redundant and unused information.
pub fn table7() -> String {
    let or = size_table(
        "Table 7a: size after redundancy elimination",
        (Rep::OrTree, Stage::Original, UsageEncoding::Scalar),
        (Rep::OrTree, Stage::Cleaned, UsageEncoding::Scalar),
        Some(&paper::TABLE6_OR_BYTES),
        &paper::TABLE7_OR_BYTES,
        "OR-tree",
    );
    let andor = size_table(
        "Table 7b: size after redundancy elimination",
        (Rep::AndOr, Stage::Original, UsageEncoding::Scalar),
        (Rep::AndOr, Stage::Cleaned, UsageEncoding::Scalar),
        Some(&paper::TABLE6_ANDOR_BYTES),
        &paper::TABLE7_ANDOR_BYTES,
        "AND/OR-tree",
    );
    format!("{or}\n{andor}")
}

/// Table 8: PA7100 scheduling characteristics after removing the
/// duplicated memory-operation option.
pub fn table8(config: &TableConfig) -> String {
    let machine = Machine::Pa7100;
    let workload = default_workload(machine, config.total_ops);
    let mut table = TextTable::new(["Configuration", "Opt/Att", "Chk/Att"]);
    for (label, stage) in [
        ("original", Stage::Original),
        ("deduplicated", Stage::Cleaned),
    ] {
        let or = run(
            machine,
            Rep::OrTree,
            stage,
            UsageEncoding::Scalar,
            &workload,
        );
        let andor = run(machine, Rep::AndOr, stage, UsageEncoding::Scalar, &workload);
        table.row([
            format!("OR-tree, {label}"),
            f2(or.stats.options_per_attempt_avg()),
            f2(or.stats.checks_per_attempt()),
        ]);
        table.row([
            format!("AND/OR-tree, {label}"),
            f2(andor.stats.options_per_attempt_avg()),
            f2(andor.stats.checks_per_attempt()),
        ]);
    }
    format!(
        "Table 8: PA7100 after removing unnecessary memory-op options\n{}",
        table.render()
    )
}

/// Table 9: memory before/after the bit-vector encoding.
pub fn table9() -> String {
    let or = size_table(
        "Table 9a: size with bit-vector encoding",
        (Rep::OrTree, Stage::Cleaned, UsageEncoding::Scalar),
        (Rep::OrTree, Stage::Cleaned, UsageEncoding::BitVector),
        Some(&paper::TABLE7_OR_BYTES),
        &paper::TABLE9_OR_BYTES,
        "OR-tree",
    );
    let andor = size_table(
        "Table 9b: size with bit-vector encoding",
        (Rep::AndOr, Stage::Cleaned, UsageEncoding::Scalar),
        (Rep::AndOr, Stage::Cleaned, UsageEncoding::BitVector),
        Some(&paper::TABLE7_ANDOR_BYTES),
        &paper::TABLE9_ANDOR_BYTES,
        "AND/OR-tree",
    );
    format!("{or}\n{andor}")
}

/// Renders one checks-comparison table over two experiment cells.
fn checks_table(
    title: &str,
    rep: Rep,
    before: (Stage, UsageEncoding),
    after: (Stage, UsageEncoding),
    paper_after: &[Option<f64>; 4],
    config: &TableConfig,
) -> String {
    let mut table = TextTable::new(["MDES", "Before", "After", "paper", "Reduction"]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let workload = default_workload(machine, config.total_ops);
        let b = run(machine, rep, before.0, before.1, &workload);
        let a = run(machine, rep, after.0, after.1, &workload);
        table.row([
            machine.name().to_string(),
            f2(b.stats.checks_per_attempt()),
            f2(a.stats.checks_per_attempt()),
            paper_ref(paper_after[i]),
            pct(percent_reduced(
                b.stats.checks_per_attempt(),
                a.stats.checks_per_attempt(),
            )),
        ]);
    }
    format!("{title} [{}]\n{}", rep.label(), table.render())
}

/// Table 10: checks before/after the bit-vector encoding.
pub fn table10(config: &TableConfig) -> String {
    let or = checks_table(
        "Table 10a: checks/attempt with bit-vector encoding",
        Rep::OrTree,
        (Stage::Cleaned, UsageEncoding::Scalar),
        (Stage::Cleaned, UsageEncoding::BitVector),
        &paper::TABLE10_OR_CHECKS,
        config,
    );
    let andor = checks_table(
        "Table 10b: checks/attempt with bit-vector encoding",
        Rep::AndOr,
        (Stage::Cleaned, UsageEncoding::Scalar),
        (Stage::Cleaned, UsageEncoding::BitVector),
        &paper::TABLE10_ANDOR_CHECKS,
        config,
    );
    format!("{or}\n{andor}")
}

/// Table 11: memory before/after the usage-time transformation.
pub fn table11() -> String {
    let or = size_table(
        "Table 11a: size after usage-time shifting",
        (Rep::OrTree, Stage::Cleaned, UsageEncoding::BitVector),
        (Rep::OrTree, Stage::Shifted, UsageEncoding::BitVector),
        Some(&paper::TABLE9_OR_BYTES),
        &paper::TABLE11_OR_BYTES,
        "OR-tree",
    );
    let andor = size_table(
        "Table 11b: size after usage-time shifting",
        (Rep::AndOr, Stage::Cleaned, UsageEncoding::BitVector),
        (Rep::AndOr, Stage::Shifted, UsageEncoding::BitVector),
        Some(&paper::TABLE9_ANDOR_BYTES),
        &paper::TABLE11_ANDOR_BYTES,
        "AND/OR-tree",
    );
    format!("{or}\n{andor}")
}

/// Table 12: checks after usage-time shifting + zero-first ordering,
/// including the checks-per-option ratio (ideal 1.0).
pub fn table12(config: &TableConfig) -> String {
    let mut out = String::new();
    for (rep, paper_checks, paper_cpo) in [
        (
            Rep::OrTree,
            &paper::TABLE12_OR_CHECKS,
            &paper::TABLE12_OR_CHECKS_PER_OPTION,
        ),
        (
            Rep::AndOr,
            &paper::TABLE12_ANDOR_CHECKS,
            &paper::TABLE12_ANDOR_CHECKS_PER_OPTION,
        ),
    ] {
        let mut table = TextTable::new([
            "MDES",
            "Before",
            "After",
            "paper",
            "Reduction",
            "Chk/Opt",
            "paper",
        ]);
        for machine in Machine::all() {
            let i = paper::idx(machine);
            let workload = default_workload(machine, config.total_ops);
            let b = run(
                machine,
                rep,
                Stage::Cleaned,
                UsageEncoding::BitVector,
                &workload,
            );
            let a = run(
                machine,
                rep,
                Stage::Shifted,
                UsageEncoding::BitVector,
                &workload,
            );
            table.row([
                machine.name().to_string(),
                f2(b.stats.checks_per_attempt()),
                f2(a.stats.checks_per_attempt()),
                paper_ref(paper_checks[i]),
                pct(percent_reduced(
                    b.stats.checks_per_attempt(),
                    a.stats.checks_per_attempt(),
                )),
                f2(a.stats.checks_per_option()),
                paper_ref(paper_cpo[i]),
            ]);
        }
        out.push_str(&format!(
            "Table 12 ({}): checks after usage-time shift + zero-first ordering\n{}\n",
            rep.label(),
            table.render()
        ));
    }
    out
}

/// Table 13: AND/OR-tree conflict-detection optimizations.
pub fn table13(config: &TableConfig) -> String {
    let mut table = TextTable::new([
        "MDES",
        "Opt/Att before",
        "paper",
        "Opt/Att after",
        "paper",
        "Chk/Att before",
        "paper",
        "Chk/Att after",
        "paper",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let workload = default_workload(machine, config.total_ops);
        let b = run(
            machine,
            Rep::AndOr,
            Stage::Shifted,
            UsageEncoding::BitVector,
            &workload,
        );
        let a = run(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &workload,
        );
        table.row([
            machine.name().to_string(),
            f2(b.stats.options_per_attempt_avg()),
            paper_ref(paper::TABLE13_OPTIONS_BEFORE[i]),
            f2(a.stats.options_per_attempt_avg()),
            paper_ref(paper::TABLE13_OPTIONS_AFTER[i]),
            f2(b.stats.checks_per_attempt()),
            paper_ref(paper::TABLE13_CHECKS_BEFORE[i]),
            f2(a.stats.checks_per_attempt()),
            paper_ref(paper::TABLE13_CHECKS_AFTER[i]),
        ]);
    }
    format!(
        "Table 13: AND/OR-trees optimized for resource-conflict detection\n{}",
        table.render()
    )
}

/// Table 14: aggregate effect of all transformations on size.
pub fn table14() -> String {
    let mut table = TextTable::new([
        "MDES",
        "Unopt OR (B)",
        "paper",
        "Full OR (B)",
        "paper",
        "Red.",
        "Full A/O (B)",
        "paper",
        "Red.",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let unopt = measure_only(machine, Rep::OrTree, Stage::Original, UsageEncoding::Scalar);
        let or = measure_only(machine, Rep::OrTree, Stage::Full, UsageEncoding::BitVector);
        let andor = measure_only(machine, Rep::AndOr, Stage::Full, UsageEncoding::BitVector);
        table.row([
            machine.name().to_string(),
            unopt.total().to_string(),
            paper_bytes(paper::TABLE6_OR_BYTES[i]),
            or.total().to_string(),
            paper_bytes(paper::TABLE14_OR_BYTES[i]),
            pct(percent_reduced(unopt.total() as f64, or.total() as f64)),
            andor.total().to_string(),
            paper_bytes(paper::TABLE14_ANDOR_BYTES[i]),
            pct(percent_reduced(unopt.total() as f64, andor.total() as f64)),
        ]);
    }
    format!(
        "Table 14: aggregate effect of all transformations on MDES size\n{}",
        table.render()
    )
}

/// Table 15: aggregate effect of all transformations on checks/attempt.
pub fn table15(config: &TableConfig) -> String {
    let mut table = TextTable::new([
        "MDES", "Unopt OR", "paper", "Full OR", "paper", "Red.", "Full A/O", "paper", "Red.",
    ]);
    for machine in Machine::all() {
        let i = paper::idx(machine);
        let workload = default_workload(machine, config.total_ops);
        let unopt = run(
            machine,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
            &workload,
        );
        let or = run(
            machine,
            Rep::OrTree,
            Stage::Full,
            UsageEncoding::BitVector,
            &workload,
        );
        let andor = run(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &workload,
        );
        table.row([
            machine.name().to_string(),
            f2(unopt.stats.checks_per_attempt()),
            paper_ref(paper::TABLE15_UNOPT[i]),
            f2(or.stats.checks_per_attempt()),
            paper_ref(paper::TABLE15_OR[i]),
            pct(percent_reduced(
                unopt.stats.checks_per_attempt(),
                or.stats.checks_per_attempt(),
            )),
            f2(andor.stats.checks_per_attempt()),
            paper_ref(paper::TABLE15_ANDOR[i]),
            pct(percent_reduced(
                unopt.stats.checks_per_attempt(),
                andor.stats.checks_per_attempt(),
            )),
        ]);
    }
    format!(
        "Table 15: aggregate effect of all transformations on checks/attempt\n{}",
        table.render()
    )
}

/// Ablation A: the finite-state-automaton baseline of Section 10.
///
/// States are enumerated twice: over the original description (decode
/// usages at −1 widen the automaton's window) and over the fully
/// optimized one (time shifting shrinks the window, which helps the FSA
/// too).  FSA checks per attempt are O(1) by construction; the transition
/// table is the cost, and it has no unschedule operation.
pub fn ablation_fsa() -> String {
    let mut table = TextTable::new([
        "MDES",
        "A/O bytes (full opt)",
        "FSA states (orig)",
        "FSA states (opt)",
        "FSA table bytes (opt)",
    ]);
    const CAP: usize = 50_000;
    let states = |machine: Machine, stage: Stage| -> (String, usize) {
        let spec = prepare_spec(machine, Rep::AndOr, stage);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let mut fsa = mdes_automata::Automaton::new(&compiled);
        let closed = fsa.build_full(CAP);
        let label = if closed {
            fsa.num_states().to_string()
        } else {
            format!(">{CAP}")
        };
        (label, fsa.table_bytes())
    };
    for machine in Machine::all() {
        let spec = prepare_spec(machine, Rep::AndOr, Stage::Full);
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let mdes_bytes = mdes_core::size::measure(&compiled).total();
        let (orig_states, _) = states(machine, Stage::Original);
        let (opt_states, opt_bytes) = states(machine, Stage::Full);
        table.row([
            machine.name().to_string(),
            mdes_bytes.to_string(),
            orig_states,
            opt_states,
            opt_bytes.to_string(),
        ]);
    }
    format!(
        "Ablation A: FSA conflict detection vs optimized AND/OR MDES\n\
         (FSA checks/attempt are O(1) by construction; the table is the cost,\n\
         and FSA states do not support unscheduling)\n{}",
        table.render()
    )
}

/// Ablation C: the cost of inaccurate machine descriptions — the paper's
/// introduction made measurable.
///
/// The SuperSPARC workload is scheduled twice: once with the accurate
/// description and once with the "function unit mix and operation
/// latencies" approximation (`superspark_approx.hmdl`).  Both schedules
/// are then executed by the in-order issue simulator on the *accurate*
/// machine.  The approximation promises shorter schedules but pays
/// "unexpected execution cycles" at run time.
pub fn ablation_accuracy(config: &TableConfig) -> String {
    use mdes_sched::{order_of_schedule, simulate_in_order};

    let machine = Machine::SuperSparc;
    let accurate_spec = machine.spec();
    let approx_spec = mdes_machines::approximate_superspark();
    let accurate = CompiledMdes::compile(&accurate_spec, UsageEncoding::BitVector).unwrap();
    let approx = CompiledMdes::compile(&approx_spec, UsageEncoding::BitVector).unwrap();
    let workload = generate(
        machine,
        &accurate_spec,
        &default_workload(machine, config.total_ops),
    );

    let mut table = TextTable::new([
        "Scheduler MDES",
        "Planned cycles",
        "Simulated cycles",
        "Stall cycles",
        "IPC",
    ]);
    let mut baseline_cycles = 0i64;
    for (label, scheduler_mdes) in [("accurate", &accurate), ("approximate", &approx)] {
        let scheduler = ListScheduler::new(scheduler_mdes);
        let mut stats = CheckStats::new();
        let mut planned = 0i64;
        let mut simulated = 0i64;
        let mut stalls = 0i64;
        for block in &workload.blocks {
            let schedule = scheduler.schedule(block, &mut stats);
            planned += i64::from(schedule.length);
            let order = order_of_schedule(&schedule);
            let result = simulate_in_order(block, &order, &accurate);
            simulated += i64::from(result.cycles);
            stalls += i64::from(result.stall_cycles);
        }
        if label == "accurate" {
            baseline_cycles = simulated;
        }
        table.row([
            label.to_string(),
            planned.to_string(),
            simulated.to_string(),
            stalls.to_string(),
            format!("{:.2}", workload.total_ops as f64 / simulated as f64),
        ]);
        if label == "approximate" {
            let vs_accurate = (simulated - baseline_cycles) as f64 / baseline_cycles as f64 * 100.0;
            let vs_promise = (simulated - planned) as f64 / planned as f64 * 100.0;
            table.row([
                "unexpected cycles vs own promise".to_string(),
                String::new(),
                format!("+{vs_promise:.1}%"),
                String::new(),
                String::new(),
            ]);
            table.row([
                "slowdown vs accurate schedule".to_string(),
                String::new(),
                format!("+{vs_accurate:.1}%"),
                String::new(),
                String::new(),
            ]);
        }
    }
    format!(
        "Ablation C: scheduling with an approximate (function-unit-mix) SuperSPARC\n\
         description, executed on the accurate machine (in-order issue simulation)\n{}",
        table.render()
    )
}

/// Ablation D: tuning the MDES for a backward scheduler (Section 7:
/// "the same machine descriptions can be automatically tuned for other
/// types of schedulers by adjusting the heuristic for picking the
/// resource usage time shift constants and for the sorting of the
/// resulting usage checks").
pub fn ablation_backward(config: &TableConfig) -> String {
    use mdes_opt::pipeline::PipelineConfig;
    use mdes_opt::timeshift::Direction;

    let mut table = TextTable::new([
        "MDES",
        "Fwd-tuned Chk/Att",
        "Bwd-tuned Chk/Att",
        "Improvement",
    ]);
    for machine in Machine::all() {
        let spec = machine.spec();
        let workload = generate(machine, &spec, &default_workload(machine, config.total_ops));

        let run_backward = |direction: Direction| -> f64 {
            let mut tuned = spec.clone();
            mdes_opt::optimize(
                &mut tuned,
                &PipelineConfig {
                    direction,
                    ..PipelineConfig::full()
                },
            );
            let compiled = CompiledMdes::compile(&tuned, UsageEncoding::BitVector).unwrap();
            let scheduler = ListScheduler::new(&compiled);
            let mut stats = CheckStats::new();
            for block in &workload.blocks {
                scheduler.schedule_backward(block, &mut stats);
            }
            stats.checks_per_attempt()
        };
        let forward_tuned = run_backward(Direction::Forward);
        let backward_tuned = run_backward(Direction::Backward);
        table.row([
            machine.name().to_string(),
            f2(forward_tuned),
            f2(backward_tuned),
            pct(percent_reduced(forward_tuned, backward_tuned)),
        ]);
    }
    format!(
        "Ablation D: backward list scheduling with forward- vs backward-tuned\n\
         descriptions (the Section-7 retuning claim)\n{}",
        table.render()
    )
}

/// Ablation E: iterative modulo scheduling (Section 4: "the number of
/// scheduling attempts required per operation can increase significantly
/// with the use of more advanced scheduling techniques such as iterative
/// modulo scheduling … and the benefit of this paper's AND/OR-tree
/// representation and MDES transformations should only increase as more
/// scheduling attempts are required").
pub fn ablation_opsched(config: &TableConfig) -> String {
    use mdes_sched::{LoopBlock, ModuloScheduler};

    let mut table = TextTable::new([
        "MDES",
        "List Att/Op",
        "Modulo Att/Op",
        "Unopt OR Chk/Att",
        "Full A/O Chk/Att",
        "Reduction",
    ]);
    for machine in Machine::all() {
        let authored = machine.spec();
        // A quarter of the usual stream, treated as software-pipelined
        // loop bodies (branch dropped, a simple induction recurrence
        // added).
        let workload = generate(
            machine,
            &authored,
            &default_workload(machine, (config.total_ops / 4).max(400)),
        );
        let loops: Vec<LoopBlock> = mdes_workload::as_loop_bodies(&workload);
        let total_ops: usize = loops.iter().map(|l| l.body.len()).sum();

        let list_stats = {
            let compiled = CompiledMdes::compile(&authored, UsageEncoding::Scalar).unwrap();
            let scheduler = ListScheduler::new(&compiled);
            let mut stats = CheckStats::new();
            for looped in &loops {
                scheduler.schedule(&looped.body, &mut stats);
            }
            stats
        };
        let modulo_with = |spec: &mdes_core::MdesSpec, encoding: UsageEncoding| {
            let compiled = CompiledMdes::compile(spec, encoding).unwrap();
            let scheduler = ModuloScheduler::new(&compiled);
            let mut stats = CheckStats::new();
            for looped in &loops {
                scheduler.schedule(looped, &mut stats);
            }
            stats
        };
        let unopt_or = modulo_with(&mdes_opt::expand_to_or(&authored).0, UsageEncoding::Scalar);
        let full_andor = {
            let mut optimized = authored.clone();
            mdes_opt::optimize(&mut optimized, &mdes_opt::PipelineConfig::full());
            modulo_with(&optimized, UsageEncoding::BitVector)
        };
        table.row([
            machine.name().to_string(),
            f2(list_stats.attempts_per_op()),
            f2(unopt_or.attempts as f64 / total_ops as f64),
            f2(unopt_or.checks_per_attempt()),
            f2(full_andor.checks_per_attempt()),
            pct(percent_reduced(
                unopt_or.checks_per_attempt(),
                full_andor.checks_per_attempt(),
            )),
        ]);
    }
    format!(
        "Ablation E: iterative modulo scheduling — more attempts per op,\n\
         same or larger payoff for the optimized AND/OR representation (Section 4)\n{}",
        table.render()
    )
}

/// Ablation F: ILP-optimization level (Section 4: the benefit "should
/// only increase as more scheduling attempts are required ... with the
/// application of more ILP optimizations to the assembly code").
/// Longer blocks (superblock/hyperblock formation) raise contention and
/// attempts per operation; the AND/OR check reduction grows with them.
pub fn ablation_ilp(config: &TableConfig) -> String {
    let machine = Machine::SuperSparc;
    let mut table = TextTable::new([
        "ILP scale",
        "mean block",
        "Att/Op",
        "Unopt OR Chk/Att",
        "Full A/O Chk/Att",
        "Reduction",
    ]);
    for scale in [1.0f64, 2.0, 4.0] {
        let authored = machine.spec();
        let workload_config = default_workload(machine, config.total_ops / 2).with_ilp_scale(scale);
        let workload = generate(machine, &authored, &workload_config);

        let run_with = |spec: &mdes_core::MdesSpec, encoding: UsageEncoding| {
            let compiled = CompiledMdes::compile(spec, encoding).unwrap();
            let scheduler = ListScheduler::new(&compiled);
            let mut stats = CheckStats::new();
            for block in &workload.blocks {
                scheduler.schedule(block, &mut stats);
            }
            stats
        };
        let unopt = run_with(&mdes_opt::expand_to_or(&authored).0, UsageEncoding::Scalar);
        let full = {
            let mut optimized = authored.clone();
            mdes_opt::optimize(&mut optimized, &mdes_opt::PipelineConfig::full());
            run_with(&optimized, UsageEncoding::BitVector)
        };
        table.row([
            format!("{scale:.0}x"),
            format!(
                "{:.1}",
                workload.total_ops as f64 / workload.blocks.len() as f64
            ),
            f2(unopt.attempts_per_op()),
            f2(unopt.checks_per_attempt()),
            f2(full.checks_per_attempt()),
            pct(percent_reduced(
                unopt.checks_per_attempt(),
                full.checks_per_attempt(),
            )),
        ]);
    }
    format!(
        "Ablation F: SuperSPARC under rising ILP-optimization levels (longer\n\
         blocks, more contention) - the Section-4 scaling prediction\n{}",
        table.render()
    )
}

/// Ablation G: the paper's Section-9 prediction for "the latest
/// generation of microprocessors, such as the Intel Pentium Pro" — a
/// speculative P6-style description, measured like Tables 6 and 15.
pub fn ablation_nextgen(config: &TableConfig) -> String {
    use mdes_workload::{generate_uniform, uniform_config};

    let authored = mdes_machines::pentium_pro();
    let workload = generate_uniform(&authored, &uniform_config(config.total_ops / 2));

    let run_with = |spec: &mdes_core::MdesSpec, encoding: UsageEncoding| {
        let compiled = CompiledMdes::compile(spec, encoding).unwrap();
        let scheduler = ListScheduler::new(&compiled);
        let mut stats = CheckStats::new();
        for block in &workload.blocks {
            scheduler.schedule(block, &mut stats);
        }
        let memory = mdes_core::size::measure(&compiled);
        (stats, memory)
    };

    let (unopt_stats, unopt_mem) =
        run_with(&mdes_opt::expand_to_or(&authored).0, UsageEncoding::Scalar);
    let (andor_stats, andor_mem) = {
        let mut optimized = authored.clone();
        mdes_opt::optimize(&mut optimized, &mdes_opt::PipelineConfig::full());
        run_with(&optimized, UsageEncoding::BitVector)
    };

    let mut table = TextTable::new(["Representation", "Bytes", "Opt/Att", "Chk/Att"]);
    table.row([
        "unoptimized OR".to_string(),
        unopt_mem.total().to_string(),
        f2(unopt_stats.options_per_attempt_avg()),
        f2(unopt_stats.checks_per_attempt()),
    ]);
    table.row([
        "fully optimized AND/OR".to_string(),
        andor_mem.total().to_string(),
        f2(andor_stats.options_per_attempt_avg()),
        f2(andor_stats.checks_per_attempt()),
    ]);
    table.row([
        "reduction".to_string(),
        pct(percent_reduced(
            unopt_mem.total() as f64,
            andor_mem.total() as f64,
        )),
        String::new(),
        pct(percent_reduced(
            unopt_stats.checks_per_attempt(),
            andor_stats.checks_per_attempt(),
        )),
    ]);
    format!(
        "Ablation G: a speculative Pentium Pro (P6) description - the Section-9\n\
         prediction that next-generation machines need AND/OR-trees even more\n{}",
        table.render()
    )
}

/// Ablation B: the conservative Eichenberger–Davidson-style minimizer
/// compared with the paper's usage-time transformation.
pub fn ablation_ed(config: &TableConfig) -> String {
    let mut table = TextTable::new([
        "MDES",
        "Cleaned Chk/Opt",
        "ED-min Chk/Opt",
        "Shifted Chk/Opt",
        "ED bytes",
        "Shifted bytes",
    ]);
    for machine in Machine::all() {
        let workload = default_workload(machine, config.total_ops);
        let cleaned = run(
            machine,
            Rep::OrTree,
            Stage::Cleaned,
            UsageEncoding::BitVector,
            &workload,
        );

        let mut ed_spec = prepare_spec(machine, Rep::OrTree, Stage::Cleaned);
        mdes_opt::minimize_usages(&mut ed_spec);
        let ed_workload = generate(machine, &ed_spec, &workload);
        let ed = crate::experiment::run_on(&ed_spec, &ed_workload, UsageEncoding::BitVector);

        let shifted = run(
            machine,
            Rep::OrTree,
            Stage::Shifted,
            UsageEncoding::BitVector,
            &workload,
        );
        table.row([
            machine.name().to_string(),
            f2(cleaned.stats.checks_per_option()),
            f2(ed.stats.checks_per_option()),
            f2(shifted.stats.checks_per_option()),
            ed.memory.total().to_string(),
            shifted.memory.total().to_string(),
        ]);
    }
    format!(
        "Ablation B: Eichenberger-Davidson-style minimization vs usage-time shifting\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TableConfig {
        TableConfig { total_ops: 1_200 }
    }

    #[test]
    fn breakdown_tables_cover_paper_option_counts() {
        let text = table_breakdown(Machine::SuperSparc, &small());
        for count in ["1", "3", "6", "12", "24", "36", "48", "72"] {
            assert!(
                text.lines().any(|l| l.trim_start().starts_with(count)),
                "missing {count}\n{text}"
            );
        }
    }

    #[test]
    fn table5_reports_all_machines_and_reductions() {
        let text = table5(&small());
        for name in ["PA7100", "Pentium", "SuperSPARC", "K5"] {
            assert!(text.contains(name));
        }
    }

    #[test]
    fn table6_shows_pentium_anomaly_and_k5_collapse() {
        let text = table6();
        // Pentium row must show a negative reduction, K5 a huge one.
        let pentium = text.lines().find(|l| l.contains("Pentium")).unwrap();
        assert!(pentium.contains('-'), "Pentium should grow: {pentium}");
        let k5 = text.lines().find(|l| l.contains("K5")).unwrap();
        assert!(k5.contains("9") && k5.contains('%'));
    }

    #[test]
    fn size_tables_render() {
        for text in [table7(), table9(), table11(), table14()] {
            assert!(text.contains("SuperSPARC"));
            assert!(text.contains('%'));
        }
    }

    #[test]
    fn ablation_accuracy_shows_unexpected_cycles() {
        let text = ablation_accuracy(&small());
        // The accurate schedule's in-order simulation matches its plan.
        let accurate = text
            .lines()
            .find(|l| l.trim_start().starts_with("accurate"))
            .unwrap();
        let cells: Vec<&str> = accurate.split_whitespace().collect();
        assert_eq!(
            cells[1], cells[2],
            "accurate plan must simulate exactly: {accurate}"
        );
        // The approximate schedule pays for its optimism.
        assert!(text.contains("unexpected cycles vs own promise"));
        let promise_line = text.lines().find(|l| l.contains("own promise")).unwrap();
        assert!(promise_line.contains('+'), "{promise_line}");
    }

    #[test]
    fn ablation_backward_renders_all_machines() {
        let text = ablation_backward(&small());
        for name in ["PA7100", "Pentium", "SuperSPARC", "K5"] {
            assert!(text.contains(name));
        }
    }

    #[test]
    fn ablation_opsched_preserves_the_reduction() {
        let text = ablation_opsched(&small());
        let k5 = text.lines().find(|l| l.contains("K5")).unwrap();
        let cells: Vec<&str> = k5.split_whitespace().collect();
        let reduction: f64 = cells.last().unwrap().trim_end_matches('%').parse().unwrap();
        assert!(reduction > 60.0, "{k5}");
    }

    #[test]
    fn ablation_fsa_reports_both_state_counts() {
        let text = ablation_fsa();
        let k5 = text.lines().find(|l| l.contains("K5")).unwrap();
        let cells: Vec<&str> = k5.split_whitespace().collect();
        // The original K5 automaton (wide decode window) needs thousands
        // of states; the optimized description shrinks the window and
        // with it the automaton.
        let orig_states: usize = cells[2].parse().unwrap();
        let opt_states: usize = cells[3].parse().unwrap();
        assert!(orig_states > 1_000, "{k5}");
        assert!(opt_states > 10 && opt_states < orig_states, "{k5}");
    }
}
