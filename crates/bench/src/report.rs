//! Plain-text table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A right-aligned plain-text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with blanks).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with two decimals.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:.1}%")
}

/// Formats a paper reference value, or a dash when the scanned source is
/// illegible.
pub fn paper_ref(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}"),
        None => "—".to_string(),
    }
}

/// Formats a paper reference byte count.
pub fn paper_bytes(value: Option<usize>) -> String {
    match value {
        Some(v) => v.to_string(),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new(["MDES", "Options"]);
        table.row(["PA7100", "25"]);
        table.row(["SuperSPARC", "313"]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("MDES"));
        assert!(lines[1].starts_with('-'));
        // All rows share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.row(["1"]);
        assert!(table.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.0 / 3.0), "0.33");
        assert_eq!(pct(84.52), "84.5%");
        assert_eq!(paper_ref(Some(2.05)), "2.05");
        assert_eq!(paper_ref(None), "—");
        assert_eq!(paper_bytes(Some(312640)), "312640");
    }
}
