//! The experiment runner shared by every table and figure.
//!
//! One experiment = (machine, representation, transformation stage, usage
//! encoding).  The runner prepares the spec exactly as the paper does —
//! the OR-tree baseline is produced by the "MDES preprocessor" expansion
//! of Section 4, then the selected transformations are applied to each
//! representation independently — compiles it, schedules the machine's
//! calibrated synthetic workload, and returns the statistics and memory
//! measurements the tables report.

use std::collections::HashMap;

use mdes_core::size::{measure, MemoryReport};
use mdes_core::spec::{AndOrTree, Constraint, MdesSpec, OrTreeId};
use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes_machines::Machine;
use mdes_opt::expand::expand_to_or;
use mdes_opt::pipeline::{optimize, optimize_with_telemetry, PipelineConfig};
use mdes_sched::ListScheduler;
use mdes_telemetry::Telemetry;
use mdes_workload::{generate, Workload, WorkloadConfig};

/// Which constraint representation to measure.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rep {
    /// Traditional OR-trees (AND/OR constraints expanded to their cross
    /// product, as the paper's preprocessor does).
    OrTree,
    /// The paper's AND/OR-trees, as authored.  Plain OR constraints are
    /// wrapped in a one-child AND level, which is why the Pentium's
    /// AND/OR representation is slightly *larger* (Table 6).
    AndOr,
}

impl Rep {
    /// Both representations in table order.
    pub fn both() -> [Rep; 2] {
        [Rep::OrTree, Rep::AndOr]
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Rep::OrTree => "OR-tree",
            Rep::AndOr => "AND/OR-tree",
        }
    }
}

/// How far through the paper's transformation pipeline to go.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// As authored (Section 4 baselines).
    Original,
    /// After redundancy + dominated-option elimination (Section 5).
    Cleaned,
    /// After usage-time shifting + zero-first check ordering (Section 7).
    Shifted,
    /// After AND/OR conflict-detection ordering + factoring (Section 8).
    Full,
}

impl Stage {
    /// Pipeline configuration for this stage, or `None` for
    /// [`Stage::Original`].
    pub fn pipeline(&self) -> Option<PipelineConfig> {
        match self {
            Stage::Original => None,
            Stage::Cleaned => Some(PipelineConfig::section5()),
            Stage::Shifted => Some(PipelineConfig::through_section7()),
            Stage::Full => Some(PipelineConfig::full()),
        }
    }
}

/// Prepares the spec for one experiment cell.
pub fn prepare_spec(machine: Machine, rep: Rep, stage: Stage) -> MdesSpec {
    let mut spec = machine.spec();
    match rep {
        Rep::OrTree => {
            spec = expand_to_or(&spec).0;
        }
        Rep::AndOr => {
            wrap_or_classes(&mut spec);
        }
    }
    if let Some(config) = stage.pipeline() {
        optimize(&mut spec, &config);
    }
    spec
}

/// Wraps every plain-OR class constraint in a one-child AND/OR tree (the
/// uniform AND/OR low-level form, whose AND-level header accounts for the
/// Pentium's small size increase in Table 6).
fn wrap_or_classes(spec: &mut MdesSpec) {
    let mut wrapped: HashMap<OrTreeId, mdes_core::AndOrTreeId> = HashMap::new();
    for class_id in spec.class_ids().collect::<Vec<_>>() {
        if let Constraint::Or(or) = spec.class(class_id).constraint {
            let andor = *wrapped
                .entry(or)
                .or_insert_with(|| spec.add_and_or_tree(AndOrTree::new(vec![or])));
            spec.class_mut(class_id).constraint = Constraint::AndOr(andor);
        }
    }
}

/// The measurements of one experiment cell.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheduling statistics over the workload.
    pub stats: CheckStats,
    /// Memory footprint of the compiled representation.
    pub memory: MemoryReport,
    /// FNV-1a hash of all issue cycles — identical across cells of the
    /// same machine iff the exact same schedule was produced (the paper's
    /// Section-4 invariant).
    pub schedule_hash: u64,
}

/// Runs one experiment cell.
pub fn run(
    machine: Machine,
    rep: Rep,
    stage: Stage,
    encoding: UsageEncoding,
    workload_config: &WorkloadConfig,
) -> RunResult {
    let spec = prepare_spec(machine, rep, stage);
    let workload = generate(machine, &spec, workload_config);
    run_on(&spec, &workload, encoding)
}

/// Runs the scheduler over a prepared spec and workload.
pub fn run_on(spec: &MdesSpec, workload: &Workload, encoding: UsageEncoding) -> RunResult {
    run_on_jobs(spec, workload, encoding, 1)
}

/// [`run_on`] with the workload's blocks served by `jobs` engine workers
/// sharing one `Arc`'d compiled description.  The engine's determinism
/// contract means the result — stats, memory, and schedule hash — is
/// identical for every worker count, so the tables can be regenerated on
/// any `--jobs` setting without changing a byte.
pub fn run_on_jobs(
    spec: &MdesSpec,
    workload: &Workload,
    encoding: UsageEncoding,
    jobs: usize,
) -> RunResult {
    let compiled = std::sync::Arc::new(
        CompiledMdes::compile(spec, encoding).expect("experiment spec must compile"),
    );
    let outcome = mdes_engine::Engine::new(std::sync::Arc::clone(&compiled))
        .schedule_batch(&workload.blocks, jobs);
    assert!(
        outcome.is_clean(),
        "{} worker panic(s) while regenerating tables",
        outcome.worker_panics()
    );
    let mut hash: u64 = 0xcbf29ce484222325;
    for schedule in outcome.schedules.iter().flatten() {
        for cycle in schedule.cycles() {
            hash ^= cycle as u32 as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    RunResult {
        stats: outcome.stats,
        memory: measure(&compiled),
        schedule_hash: hash,
    }
}

/// [`run`] with the full flow instrumented into `tel`, grouped under a
/// span named for the machine: per-stage pipeline spans
/// (`<machine>/pipeline/redundancy`, …), compile-phase spans, and the
/// workload's scheduler query counters published under
/// `<machine>/sched/list/…` — the same JSON schema the CLI's `--metrics`
/// flag produces.
pub fn run_with_telemetry(
    machine: Machine,
    rep: Rep,
    stage: Stage,
    encoding: UsageEncoding,
    workload_config: &WorkloadConfig,
    tel: &Telemetry,
) -> RunResult {
    let _machine_span = tel.span(machine.name());
    let mut spec = machine.spec();
    match rep {
        Rep::OrTree => {
            spec = expand_to_or(&spec).0;
        }
        Rep::AndOr => {
            wrap_or_classes(&mut spec);
        }
    }
    if let Some(config) = stage.pipeline() {
        optimize_with_telemetry(&mut spec, &config, tel);
    }
    let workload = generate(machine, &spec, workload_config);

    let compiled = CompiledMdes::compile_with_telemetry(&spec, encoding, tel)
        .expect("experiment spec must compile");
    let scheduler = ListScheduler::new(&compiled);
    let mut stats = CheckStats::new();
    let mut hash: u64 = 0xcbf29ce484222325;
    {
        let _sched_span = tel.span("sched/list");
        for block in &workload.blocks {
            let schedule = scheduler.schedule(block, &mut stats);
            for cycle in schedule.cycles() {
                hash ^= cycle as u32 as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
        }
    }
    stats.publish(tel, &format!("{}/sched/list", machine.name()));
    RunResult {
        stats,
        memory: measure(&compiled),
        schedule_hash: hash,
    }
}

/// Memory-only measurement (for the size tables, which need no workload).
pub fn measure_only(
    machine: Machine,
    rep: Rep,
    stage: Stage,
    encoding: UsageEncoding,
) -> MemoryReport {
    let spec = prepare_spec(machine, rep, stage);
    let compiled = CompiledMdes::compile(&spec, encoding).expect("experiment spec must compile");
    measure(&compiled)
}

/// The default workload size used by the shipped experiment binaries.
pub fn default_workload(machine: Machine, total_ops: usize) -> WorkloadConfig {
    WorkloadConfig::paper_default(machine).with_total_ops(total_ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_identical_across_reps_stages_and_encodings() {
        // The paper's core invariant (Section 4): every transformation
        // and both representations produce the exact same schedule.
        let machine = Machine::SuperSparc;
        let config = default_workload(machine, 1_500);
        let mut hashes = Vec::new();
        for rep in Rep::both() {
            for stage in [Stage::Original, Stage::Cleaned, Stage::Shifted, Stage::Full] {
                for encoding in [UsageEncoding::Scalar, UsageEncoding::BitVector] {
                    let result = run(machine, rep, stage, encoding, &config);
                    hashes.push(result.schedule_hash);
                }
            }
        }
        assert!(
            hashes.iter().all(|&h| h == hashes[0]),
            "schedules diverged: {hashes:?}"
        );
    }

    #[test]
    fn and_or_reduces_checks_on_flexible_machines() {
        let machine = Machine::K5;
        let config = default_workload(machine, 1_000);
        let or = run(
            machine,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
            &config,
        );
        let andor = run(
            machine,
            Rep::AndOr,
            Stage::Original,
            UsageEncoding::Scalar,
            &config,
        );
        assert!(
            andor.stats.checks_per_attempt() < or.stats.checks_per_attempt() / 2.0,
            "AND/OR {} vs OR {}",
            andor.stats.checks_per_attempt(),
            or.stats.checks_per_attempt()
        );
        assert_eq!(or.schedule_hash, andor.schedule_hash);
    }

    #[test]
    fn and_or_shrinks_flexible_machines_but_grows_pentium() {
        let k5_or = measure_only(
            Machine::K5,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
        );
        let k5_andor = measure_only(
            Machine::K5,
            Rep::AndOr,
            Stage::Original,
            UsageEncoding::Scalar,
        );
        assert!(
            (k5_andor.total() as f64) < k5_or.total() as f64 / 20.0,
            "K5: AND/OR {} vs OR {}",
            k5_andor.total(),
            k5_or.total()
        );

        let p_or = measure_only(
            Machine::Pentium,
            Rep::OrTree,
            Stage::Original,
            UsageEncoding::Scalar,
        );
        let p_andor = measure_only(
            Machine::Pentium,
            Rep::AndOr,
            Stage::Original,
            UsageEncoding::Scalar,
        );
        assert!(
            p_andor.total() > p_or.total(),
            "Pentium AND/OR must be slightly larger ({} vs {})",
            p_andor.total(),
            p_or.total()
        );
    }

    #[test]
    fn pipeline_stages_monotonically_shrink_or_hold_size() {
        for machine in Machine::all() {
            for rep in Rep::both() {
                let original = measure_only(machine, rep, Stage::Original, UsageEncoding::Scalar);
                let cleaned = measure_only(machine, rep, Stage::Cleaned, UsageEncoding::Scalar);
                assert!(
                    cleaned.total() <= original.total(),
                    "{} {:?}: cleanup grew the MDES",
                    machine.name(),
                    rep
                );
            }
        }
    }

    #[test]
    fn telemetry_run_matches_plain_run() {
        let machine = Machine::Pa7100;
        let config = default_workload(machine, 500);
        let tel = Telemetry::new();
        let instrumented = run_with_telemetry(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &config,
            &tel,
        );
        let plain = run(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &config,
        );
        assert_eq!(instrumented.schedule_hash, plain.schedule_hash);
        let report = tel.report();
        assert!(report.span("PA7100/pipeline/redundancy").is_some());
        assert!(report.span("PA7100/compile/packing").is_some());
        assert_eq!(
            report.counter("PA7100/sched/list/attempts"),
            Some(instrumented.stats.attempts)
        );
    }

    #[test]
    fn time_shift_reduces_checks_per_option_to_near_one() {
        let machine = Machine::SuperSparc;
        let config = default_workload(machine, 1_500);
        let shifted = run(
            machine,
            Rep::OrTree,
            Stage::Shifted,
            UsageEncoding::BitVector,
            &config,
        );
        let ratio = shifted.stats.checks_per_option();
        assert!(
            (1.0..1.3).contains(&ratio),
            "checks/option {ratio} not near 1.0"
        );
    }
}
