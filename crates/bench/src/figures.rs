//! Generators for every figure of the paper.
//!
//! Figures 1 and 3–6 are structural illustrations rendered directly from
//! the actual machine-description data (ASCII reservation tables and
//! trees); Figure 2 is the measured distribution of options checked per
//! scheduling attempt.

use std::fmt::Write as _;

use mdes_core::pretty;
use mdes_core::spec::Constraint;
use mdes_core::{CheckStats, CompiledMdes, UsageEncoding};
use mdes_machines::Machine;
use mdes_sched::ListScheduler;
use mdes_workload::generate;

use crate::experiment::{default_workload, prepare_spec, Rep, Stage};
use crate::paper;

/// Figure 1: the six reservation tables of the SuperSPARC integer load.
pub fn fig1() -> String {
    let spec = prepare_spec(Machine::SuperSparc, Rep::OrTree, Stage::Original);
    let load = spec.class_by_name("load").expect("load class");
    let Constraint::Or(tree) = spec.class(load).constraint else {
        unreachable!("expanded spec is all OR");
    };
    format!(
        "Figure 1: the six reservation tables of the SuperSPARC integer load\n\
         (decoder at cycle -1, memory unit at 0, write port at +1)\n\n{}",
        pretty::or_tree(&spec, tree)
    )
}

/// Figure 2's raw distribution as CSV (`options,count,percent`) for
/// external plotting.
pub fn fig2_csv(total_ops: usize) -> String {
    let hist = fig2_histogram(total_ops);
    let mut out = String::from("options,count,percent\n");
    for (options, count) in hist.iter() {
        let _ = writeln!(
            out,
            "{options},{count},{:.4}",
            hist.fraction(options) * 100.0
        );
    }
    out
}

/// Runs the Figure-2 experiment and returns the histogram.
fn fig2_histogram(total_ops: usize) -> mdes_core::stats::Histogram {
    let machine = Machine::SuperSparc;
    let spec = prepare_spec(machine, Rep::OrTree, Stage::Original);
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
    let scheduler = ListScheduler::new(&compiled);
    let workload = generate(machine, &spec, &default_workload(machine, total_ops));
    let mut stats = CheckStats::new();
    for block in &workload.blocks {
        scheduler.schedule(block, &mut stats);
    }
    stats.options_per_attempt
}

/// Figure 2: distribution of options checked per scheduling attempt for
/// the SuperSPARC (traditional OR-tree representation, as in the paper).
pub fn fig2(total_ops: usize) -> String {
    let machine = Machine::SuperSparc;
    let spec = prepare_spec(machine, Rep::OrTree, Stage::Original);
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::Scalar).unwrap();
    let scheduler = ListScheduler::new(&compiled);
    let workload = generate(machine, &spec, &default_workload(machine, total_ops));
    let mut stats = CheckStats::new();
    for block in &workload.blocks {
        scheduler.schedule(block, &mut stats);
    }

    let hist = &stats.options_per_attempt;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: distribution of options checked per SuperSPARC scheduling attempt"
    );
    let _ = writeln!(
        out,
        "(ours from {} attempts; paper peaks: {:.1}% at 1 option, {:.1}% at 48, {:.1}% in 24..=72)\n",
        hist.total(),
        paper::FIG2_ONE_OPTION,
        paper::FIG2_AT_48,
        paper::FIG2_24_TO_72
    );
    let max_fraction = (1..=72)
        .map(|i| hist.fraction(i))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for options in 1..=72usize {
        let fraction = hist.fraction(options) * 100.0;
        if fraction < 0.05 {
            continue;
        }
        let bar = "#".repeat(((fraction / (max_fraction * 100.0)) * 50.0).round() as usize);
        let _ = writeln!(out, "{options:>3} options | {bar} {fraction:.2}%");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ours: {:.1}% at 1 option, {:.1}% at 48, {:.1}% in 24..=72",
        hist.fraction(1) * 100.0,
        hist.fraction(48) * 100.0,
        hist.fraction_range(24, 72) * 100.0,
    );
    out
}

/// Figure 3: the OR-tree vs AND/OR-tree modeling of the integer load.
pub fn fig3() -> String {
    let andor_spec = Machine::SuperSparc.spec();
    let load = andor_spec.class_by_name("load").unwrap();
    let Constraint::AndOr(andor) = andor_spec.class(load).constraint else {
        unreachable!("SuperSPARC load is AND/OR");
    };

    let or_spec = prepare_spec(Machine::SuperSparc, Rep::OrTree, Stage::Original);
    let load_or = or_spec.class_by_name("load").unwrap();
    let Constraint::Or(or) = or_spec.class(load_or).constraint else {
        unreachable!("expanded spec is all OR");
    };

    format!(
        "Figure 3: two methods of modeling the SuperSPARC integer load\n\n\
         a) traditional OR-tree ({} options):\n{}\n\
         b) proposed AND/OR-tree (1 x 2 x 3 combinations):\n{}",
        or_spec.or_tree(or).options.len(),
        pretty::or_tree(&or_spec, or),
        pretty::and_or_tree(&andor_spec, andor)
    )
}

/// Figure 4: OR-tree sharing across AND/OR-trees after redundancy
/// elimination (the load and the 2-source IALU share decoder and
/// write-port trees).
pub fn fig4() -> String {
    let spec = prepare_spec(Machine::SuperSparc, Rep::AndOr, Stage::Cleaned);
    let shares = spec.or_tree_share_counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: OR-tree sharing across SuperSPARC AND/OR-trees (after cleanup)\n"
    );
    for id in spec.or_tree_ids() {
        let tree = spec.or_tree(id);
        if shares[id.index()] > 1 {
            let _ = writeln!(
                out,
                "OR-tree {:<14} ({} options) shared by {} trees/classes",
                tree.name.as_deref().unwrap_or("(anonymous)"),
                tree.options.len(),
                shares[id.index()]
            );
        }
    }
    out
}

/// Figure 5: the integer-load OR-tree after the usage-time
/// transformation — every usage lands at time zero.
pub fn fig5() -> String {
    let spec = prepare_spec(Machine::SuperSparc, Rep::OrTree, Stage::Shifted);
    let load = spec.class_by_name("load").unwrap();
    let Constraint::Or(tree) = spec.class(load).constraint else {
        unreachable!("expanded spec is all OR");
    };
    format!(
        "Figure 5: SuperSPARC integer-load OR-tree after transforming resource\n\
         usage times (decoder/memory/write-port usages concentrated at time 0,\n\
         making one bit-vector word per option)\n\n{}",
        pretty::or_tree(&spec, tree)
    )
}

/// Figure 6: ordering the sub-OR-trees of an AND/OR-tree for early
/// conflict detection.
pub fn fig6() -> String {
    let describe = |spec: &mdes_core::MdesSpec, label: &str| -> String {
        let load = spec.class_by_name("load").unwrap();
        let Constraint::AndOr(andor) = spec.class(load).constraint else {
            unreachable!("SuperSPARC load is AND/OR");
        };
        let mut out = format!("{label}:\n");
        for &or in &spec.and_or_tree(andor).or_trees {
            let tree = spec.or_tree(or);
            let earliest = tree
                .options
                .iter()
                .filter_map(|&o| spec.option(o).earliest_time())
                .min()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:<16} {} options, earliest usage time {}",
                tree.name.as_deref().unwrap_or("(anonymous)"),
                tree.options.len(),
                earliest
            );
        }
        out
    };
    let before = prepare_spec(Machine::SuperSparc, Rep::AndOr, Stage::Shifted);
    let after = prepare_spec(Machine::SuperSparc, Rep::AndOr, Stage::Full);
    format!(
        "Figure 6: optimizing the OR-tree order of the SuperSPARC load AND/OR-tree\n\n{}\n{}",
        describe(&before, "a) order as specified (after time shift)"),
        describe(&after, "b) after conflict-detection ordering")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_renders_six_options() {
        let text = fig1();
        assert!(text.contains("Option 6:"));
        assert!(!text.contains("Option 7:"));
        assert!(text.contains("M"));
    }

    #[test]
    fn fig2_reports_peaks() {
        let text = fig2(1_500);
        assert!(text.contains("48 options"));
        assert!(text.contains("ours:"));
    }

    #[test]
    fn fig2_csv_is_plottable() {
        let csv = fig2_csv(1_000);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("options,count,percent"));
        let first = lines.next().unwrap();
        let cells: Vec<&str> = first.split(',').collect();
        assert_eq!(cells.len(), 3);
        cells[0].parse::<usize>().unwrap();
        cells[1].parse::<u64>().unwrap();
        cells[2].parse::<f64>().unwrap();
    }

    #[test]
    fn fig3_contrasts_representations() {
        let text = fig3();
        assert!(text.contains("a) traditional OR-tree (6 options)"));
        assert!(text.contains("AND/OR-tree"));
    }

    #[test]
    fn fig4_lists_shared_trees() {
        let text = fig4();
        assert!(text.contains("shared by"));
    }

    #[test]
    fn fig5_concentrates_usages_at_zero() {
        let text = fig5();
        // After shifting, the rendered load grid has only cycle-0 rows.
        assert!(!text.contains("    -1 |"), "{text}");
    }

    #[test]
    fn fig6_shows_reordering() {
        let text = fig6();
        assert!(text.contains("a) order as specified"));
        assert!(text.contains("b) after conflict-detection ordering"));
    }
}
