//! Reference values transcribed from the paper's tables.
//!
//! Values the scanned source renders illegibly are `None`; the tables
//! print them as "—".  Machine order everywhere is the paper's:
//! PA7100, Pentium, SuperSPARC, K5.

use mdes_machines::Machine;

/// Index of a machine in the paper's table order.
pub fn idx(machine: Machine) -> usize {
    match machine {
        Machine::Pa7100 => 0,
        Machine::Pentium => 1,
        Machine::SuperSparc => 2,
        Machine::K5 => 3,
    }
}

/// Table 1: SuperSPARC (options, % of scheduling attempts).
pub const TABLE1: &[(usize, f64)] = &[
    (1, 13.41),
    (3, 0.72),
    (6, 14.37),
    (12, 4.92),
    (24, 9.24),
    (36, 3.00),
    (48, 50.29),
    (72, 4.05),
];

/// Table 2: PA7100.
pub const TABLE2: &[(usize, f64)] = &[(1, 18.81), (2, 81.19)];

/// Table 3: Pentium.
pub const TABLE3: &[(usize, f64)] = &[(1, 45.42), (2, 54.58)];

/// Table 4: K5.
pub const TABLE4: &[(usize, f64)] = &[
    (16, 14.72),
    (24, 0.14),
    (32, 74.72),
    (48, 5.91),
    (64, 2.56),
    (96, 0.19),
    (128, 0.66),
    (192, 0.15),
    (256, 0.37),
    (384, 0.43),
    (768, 0.15),
];

/// Table 5: static operations scheduled per platform.
pub const TABLE5_OPS: [usize; 4] = [201_011, 207_341, 282_219, 203_094];

/// Table 5: average scheduling attempts per operation.
pub const TABLE5_ATTEMPTS: [Option<f64>; 4] = [Some(1.97), Some(1.47), Some(2.05), Some(1.65)];

/// Table 5: OR-tree average options checked per attempt.
pub const TABLE5_OR_OPTIONS: [Option<f64>; 4] = [Some(1.56), Some(1.49), Some(21.48), Some(19.59)];

/// Table 5: OR-tree average checks per attempt.
pub const TABLE5_OR_CHECKS: [Option<f64>; 4] = [Some(2.47), Some(3.99), Some(31.09), Some(35.49)];

/// Table 5: AND/OR-tree average options checked per attempt.
pub const TABLE5_ANDOR_OPTIONS: [Option<f64>; 4] = [Some(1.45), Some(1.49), None, Some(5.20)];

/// Table 5: AND/OR-tree average checks per attempt.
pub const TABLE5_ANDOR_CHECKS: [Option<f64>; 4] = [Some(1.89), Some(3.99), Some(4.82), Some(5.73)];

/// Table 6: original OR-tree representation bytes.
pub const TABLE6_OR_BYTES: [Option<usize>; 4] =
    [Some(2504), Some(14824), Some(17124), Some(312_640)];

/// Table 6: original AND/OR-tree representation bytes.
pub const TABLE6_ANDOR_BYTES: [Option<usize>; 4] = [None, Some(15416), Some(2624), Some(4316)];

/// Table 7: OR-tree bytes after redundancy elimination.
pub const TABLE7_OR_BYTES: [Option<usize>; 4] =
    [Some(1712), Some(10814), Some(14752), Some(266_034)];

/// Table 7: AND/OR-tree bytes after redundancy elimination.
pub const TABLE7_ANDOR_BYTES: [Option<usize>; 4] =
    [Some(1232), Some(11296), Some(1846), Some(3502)];

/// Table 9: OR-tree bytes after bit-vector packing.
pub const TABLE9_OR_BYTES: [Option<usize>; 4] =
    [Some(1404), Some(3224), Some(11152), Some(183_280)];

/// Table 9: AND/OR-tree bytes after bit-vector packing.
pub const TABLE9_ANDOR_BYTES: [Option<usize>; 4] = [Some(1128), Some(3704), Some(1640), Some(3136)];

/// Table 10: OR-tree checks/attempt with bit-vectors.
pub const TABLE10_OR_CHECKS: [Option<f64>; 4] = [Some(2.18), Some(2.31), Some(26.69), Some(34.35)];

/// Table 10: AND/OR-tree checks/attempt with bit-vectors.
pub const TABLE10_ANDOR_CHECKS: [Option<f64>; 4] = [Some(1.76), Some(2.31), Some(4.62), Some(5.80)];

/// Table 11: OR-tree bytes after usage-time shifting.
pub const TABLE11_OR_BYTES: [Option<usize>; 4] =
    [Some(1168), Some(3080), Some(7016), Some(125_488)];

/// Table 11: AND/OR-tree bytes after usage-time shifting.
pub const TABLE11_ANDOR_BYTES: [Option<usize>; 4] =
    [Some(1032), Some(3560), Some(1584), Some(3096)];

/// Table 12: OR-tree checks/attempt after shifting + zero-first ordering.
pub const TABLE12_OR_CHECKS: [Option<f64>; 4] = [Some(1.59), Some(1.57), Some(21.59), Some(19.87)];

/// Table 12: OR-tree checks per option after the transformation.
pub const TABLE12_OR_CHECKS_PER_OPTION: [Option<f64>; 4] =
    [Some(1.12), Some(1.05), Some(1.10), Some(1.41)];

/// Table 12: AND/OR-tree checks/attempt after shifting + ordering.
pub const TABLE12_ANDOR_CHECKS: [Option<f64>; 4] = [Some(1.55), Some(1.57), Some(4.49), Some(5.25)];

/// Table 12: AND/OR-tree checks per option.
pub const TABLE12_ANDOR_CHECKS_PER_OPTION: [Option<f64>; 4] =
    [None, Some(1.05), Some(1.03), Some(1.01)];

/// Table 13: AND/OR options/attempt before conflict-detection ordering.
pub const TABLE13_OPTIONS_BEFORE: [Option<f64>; 4] =
    [Some(1.38), Some(1.49), Some(4.38), Some(5.20)];

/// Table 13: AND/OR options/attempt after.
pub const TABLE13_OPTIONS_AFTER: [Option<f64>; 4] =
    [Some(1.38), Some(1.49), Some(2.97), Some(4.32)];

/// Table 13: AND/OR checks/attempt before.
pub const TABLE13_CHECKS_BEFORE: [Option<f64>; 4] =
    [Some(1.55), Some(1.57), Some(4.49), Some(5.25)];

/// Table 13: AND/OR checks/attempt after.
pub const TABLE13_CHECKS_AFTER: [Option<f64>; 4] = [Some(1.55), Some(1.57), Some(3.08), Some(4.38)];

/// Table 14: fully optimized OR-tree bytes (with bit-vectors).
pub const TABLE14_OR_BYTES: [Option<usize>; 4] =
    [Some(1168), Some(3080), Some(7016), Some(125_488)];

/// Table 14: fully optimized AND/OR-tree bytes.
pub const TABLE14_ANDOR_BYTES: [Option<usize>; 4] =
    [Some(1032), Some(3560), Some(1584), Some(3096)];

/// Table 15: unoptimized OR-tree checks/attempt.
pub const TABLE15_UNOPT: [Option<f64>; 4] = [Some(2.47), Some(3.99), Some(31.09), Some(35.49)];

/// Table 15: fully optimized OR-tree checks/attempt.
pub const TABLE15_OR: [Option<f64>; 4] = [Some(1.59), Some(1.57), Some(21.59), Some(19.87)];

/// Table 15: fully optimized AND/OR-tree checks/attempt.
pub const TABLE15_ANDOR: [Option<f64>; 4] = [Some(1.55), Some(1.57), Some(3.08), Some(4.38)];

/// Figure 2 reference points: fraction of attempts checking exactly one
/// option, and fraction checking 24–72 options.
pub const FIG2_ONE_OPTION: f64 = 38.02;
/// Figure 2: fraction of attempts checking between 24 and 72 options.
pub const FIG2_24_TO_72: f64 = 45.52;
/// Figure 2: peak at 48 options checked.
pub const FIG2_AT_48: f64 = 30.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_percentages_sum_to_one_hundred() {
        for (name, table) in [
            ("t1", TABLE1),
            ("t2", TABLE2),
            ("t3", TABLE3),
            ("t4", TABLE4),
        ] {
            let sum: f64 = table.iter().map(|(_, p)| p).sum();
            assert!((sum - 100.0).abs() < 0.2, "{name} sums to {sum}");
        }
    }

    #[test]
    fn machine_index_matches_paper_order() {
        assert_eq!(idx(Machine::Pa7100), 0);
        assert_eq!(idx(Machine::K5), 3);
    }
}
