//! Regenerates the paper's Tables 1–15 plus two ablations.
//!
//! Usage:
//!
//! ```text
//! paper_tables [all|t1|t2|...|t15|ablation-fsa|ablation-ed] [--ops N]
//! ```
//!
//! `--ops` sets the synthetic-workload size per machine (default 40000;
//! the paper schedules 201k–282k static operations per platform).

use mdes_bench::tables::{self, TableConfig};
use mdes_machines::Machine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selection: Vec<String> = Vec::new();
    let mut config = TableConfig::default();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => {
                let value = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ops requires a positive integer"));
                config.total_ops = value;
            }
            "--help" | "-h" => {
                println!(
                    "usage: paper_tables [all|t1..t15|ablation-fsa|ablation-ed|ablation-accuracy] [--ops N]"
                );
                return;
            }
            other => selection.push(other.to_string()),
        }
    }
    if selection.is_empty() {
        selection.push("all".to_string());
    }

    for name in &selection {
        match name.as_str() {
            "all" => {
                for table in [
                    "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11", "t12",
                    "t13", "t14", "t15", "ablation-fsa", "ablation-ed", "ablation-accuracy",
                    "ablation-backward", "ablation-opsched", "ablation-ilp", "ablation-nextgen",
                ] {
                    emit(table, &config);
                }
            }
            other => emit(other, &config),
        }
    }
}

fn emit(name: &str, config: &TableConfig) {
    let text = match name {
        "t1" => tables::table_breakdown(Machine::SuperSparc, config),
        "t2" => tables::table_breakdown(Machine::Pa7100, config),
        "t3" => tables::table_breakdown(Machine::Pentium, config),
        "t4" => tables::table_breakdown(Machine::K5, config),
        "t5" => tables::table5(config),
        "t6" => tables::table6(),
        "t7" => tables::table7(),
        "t8" => tables::table8(config),
        "t9" => tables::table9(),
        "t10" => tables::table10(config),
        "t11" => tables::table11(),
        "t12" => tables::table12(config),
        "t13" => tables::table13(config),
        "t14" => tables::table14(),
        "t15" => tables::table15(config),
        "ablation-fsa" => tables::ablation_fsa(),
        "ablation-ed" => tables::ablation_ed(config),
        "ablation-accuracy" => tables::ablation_accuracy(config),
        "ablation-backward" => tables::ablation_backward(config),
        "ablation-opsched" => tables::ablation_opsched(config),
        "ablation-ilp" => tables::ablation_ilp(config),
        "ablation-nextgen" => tables::ablation_nextgen(config),
        other => die(&format!("unknown table `{other}` (try --help)")),
    };
    println!("{text}");
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
