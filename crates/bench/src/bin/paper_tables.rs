//! Regenerates the paper's Tables 1–15 plus two ablations.
//!
//! Usage:
//!
//! ```text
//! paper_tables [all|t1|t2|...|t15|ablation-fsa|ablation-ed] [--ops N]
//!              [--metrics <path>]
//! ```
//!
//! `--ops` sets the synthetic-workload size per machine (default 40000;
//! the paper schedules 201k–282k static operations per platform).
//!
//! `--metrics` additionally runs the full instrumented pipeline on every
//! machine and writes the per-stage telemetry breakdown (the same JSON
//! schema as `mdes --metrics`) alongside the table text.

use mdes_bench::experiment::{self, Rep, Stage};
use mdes_bench::tables::{self, TableConfig};
use mdes_core::UsageEncoding;
use mdes_machines::Machine;
use mdes_telemetry::Telemetry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selection: Vec<String> = Vec::new();
    let mut config = TableConfig::default();
    let mut metrics_path: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => {
                let value = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ops requires a positive integer"));
                config.total_ops = value;
            }
            "--metrics" => {
                let path = iter
                    .next()
                    .unwrap_or_else(|| die("--metrics requires a path"));
                metrics_path = Some(path.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: paper_tables [all|t1..t15|ablation-fsa|ablation-ed|ablation-accuracy] [--ops N] [--metrics <path>]"
                );
                return;
            }
            other => selection.push(other.to_string()),
        }
    }
    if selection.is_empty() {
        selection.push("all".to_string());
    }

    for name in &selection {
        match name.as_str() {
            "all" => {
                for table in [
                    "t1",
                    "t2",
                    "t3",
                    "t4",
                    "t5",
                    "t6",
                    "t7",
                    "t8",
                    "t9",
                    "t10",
                    "t11",
                    "t12",
                    "t13",
                    "t14",
                    "t15",
                    "ablation-fsa",
                    "ablation-ed",
                    "ablation-accuracy",
                    "ablation-backward",
                    "ablation-opsched",
                    "ablation-ilp",
                    "ablation-nextgen",
                ] {
                    emit(table, &config);
                }
            }
            other => emit(other, &config),
        }
    }

    if let Some(path) = metrics_path {
        write_metrics(&path, &config);
    }
}

/// Runs the full instrumented pipeline (AND/OR representation, all
/// transformations, bit-vector encoding) on every machine and writes one
/// combined telemetry report.
fn write_metrics(path: &str, config: &TableConfig) {
    let tel = Telemetry::new();
    for machine in Machine::all() {
        let workload = experiment::default_workload(machine, config.total_ops);
        experiment::run_with_telemetry(
            machine,
            Rep::AndOr,
            Stage::Full,
            UsageEncoding::BitVector,
            &workload,
            &tel,
        );
    }
    let json = tel.report().to_json();
    if let Err(e) = std::fs::write(path, json) {
        die(&format!("cannot write metrics to `{path}`: {e}"));
    }
    eprintln!("wrote per-stage telemetry to {path}");
}

fn emit(name: &str, config: &TableConfig) {
    let text = match name {
        "t1" => tables::table_breakdown(Machine::SuperSparc, config),
        "t2" => tables::table_breakdown(Machine::Pa7100, config),
        "t3" => tables::table_breakdown(Machine::Pentium, config),
        "t4" => tables::table_breakdown(Machine::K5, config),
        "t5" => tables::table5(config),
        "t6" => tables::table6(),
        "t7" => tables::table7(),
        "t8" => tables::table8(config),
        "t9" => tables::table9(),
        "t10" => tables::table10(config),
        "t11" => tables::table11(),
        "t12" => tables::table12(config),
        "t13" => tables::table13(config),
        "t14" => tables::table14(),
        "t15" => tables::table15(config),
        "ablation-fsa" => tables::ablation_fsa(),
        "ablation-ed" => tables::ablation_ed(config),
        "ablation-accuracy" => tables::ablation_accuracy(config),
        "ablation-backward" => tables::ablation_backward(config),
        "ablation-opsched" => tables::ablation_opsched(config),
        "ablation-ilp" => tables::ablation_ilp(config),
        "ablation-nextgen" => tables::ablation_nextgen(config),
        other => die(&format!("unknown table `{other}` (try --help)")),
    };
    println!("{text}");
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
