//! Regenerates the paper's Figures 1–6.
//!
//! Usage:
//!
//! ```text
//! paper_figures [all|fig1|fig2|fig3|fig4|fig5|fig6] [--ops N]
//! ```

use mdes_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selection: Vec<String> = Vec::new();
    let mut total_ops = 40_000usize;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--ops" => {
                total_ops = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --ops requires a positive integer");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("usage: paper_figures [all|fig1..fig6|fig2-csv] [--ops N]");
                return;
            }
            other => selection.push(other.to_string()),
        }
    }
    if selection.is_empty() {
        selection.push("all".to_string());
    }

    for name in &selection {
        match name.as_str() {
            "all" => {
                for figure in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"] {
                    emit(figure, total_ops);
                }
            }
            other => emit(other, total_ops),
        }
    }
}

fn emit(name: &str, total_ops: usize) {
    let text = match name {
        "fig1" => figures::fig1(),
        "fig2" => figures::fig2(total_ops),
        "fig2-csv" => figures::fig2_csv(total_ops),
        "fig3" => figures::fig3(),
        "fig4" => figures::fig4(),
        "fig5" => figures::fig5(),
        "fig6" => figures::fig6(),
        other => {
            eprintln!("error: unknown figure `{other}` (try --help)");
            std::process::exit(2);
        }
    };
    println!("{text}");
}
