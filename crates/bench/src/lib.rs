//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! * [`experiment`] — the (machine × representation × stage × encoding)
//!   runner shared by all experiments;
//! * [`tables`] — Tables 1–15 plus two ablations;
//! * [`figures`] — Figures 1–6;
//! * [`paper`] — reference values transcribed from the paper;
//! * [`report`] — plain-text table rendering.
//!
//! Binaries: `paper_tables [all|t1..t15|ablation-fsa|ablation-ed]
//! [--ops N]` and `paper_figures [all|fig1..fig6]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod paper;
pub mod report;
pub mod tables;
