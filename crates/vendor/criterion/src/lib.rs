//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset of its API this workspace
//! uses. The build environment has no network access, so the real crate
//! cannot be fetched.
//!
//! Statistical rigour is intentionally minimal: each benchmark runs a
//! short warm-up, then a fixed number of timed iterations, and the mean
//! per-iteration wall clock is printed. That is enough to keep the bench
//! targets compiling, runnable, and useful for coarse comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_one(&id.into(), samples, &mut f);
    }
}

/// Identifier combining a function name and a parameter label.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Units processed per iteration; recorded for display parity with real
/// criterion but not used in rate calculations here.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().full);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

/// Timing loop handle given to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the most recent `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass, then the timed passes.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        last_mean: None,
    };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => eprintln!("bench {label:<56} {mean:>12.2?}/iter ({samples} samples)"),
        None => eprintln!("bench {label:<56} (no iter call)"),
    }
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
