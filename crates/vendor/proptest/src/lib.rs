//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset of its API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this in-tree replacement keeps the property-based tests
//! runnable. Differences from real proptest:
//!
//! - no shrinking: a failing case reports the generated inputs verbatim;
//! - generation is a deterministic splitmix64 stream seeded per test
//!   from the test name, so failures reproduce across runs;
//! - regex string strategies support only the `.{lo,hi}` shape used by
//!   this repo's tests (plus plain literals).
//!
//! The API intentionally mirrors proptest's module layout (`strategy`,
//! `collection`, `sample`, `test_runner`, `prelude`) so swapping the
//! real crate back in is a one-line Cargo.toml change.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Error raised by `prop_assert!`-family macros inside a test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator: cheap, seedable, and good
    /// enough for test-input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Derives a per-test seed from the test's name so every test
        /// walks an independent, stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift; bias is irrelevant at test-input scale.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    pub use Config as ProptestConfig;
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values. Unlike real proptest there is no
    /// value tree / shrinking: `generate` yields a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let value = self.inner.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    /// Object-safe boxed strategy, used by `prop_oneof!` to erase the
    /// heterogeneous arm types.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    pub trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Weighted choice between boxed arms; built by `prop_oneof!`.
    pub struct WeightedUnion<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> WeightedUnion<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            WeightedUnion { arms }
        }
    }

    impl<V> Strategy for WeightedUnion<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    // Integer range strategies: `lo..hi` and `lo..=hi` for the primitive
    // integer types, generated uniformly via a u64 offset from `lo`.
    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    // Tuples of strategies yield tuples of values.
    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// A `Vec` of strategies yields one value per element, in order.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String strategies from a regex-ish pattern. Supports the `.{lo,hi}`
    /// shape (arbitrary printable-plus-exotic chars of bounded length);
    /// any other pattern is treated as a literal.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                // A mix of ASCII, multi-byte and control characters so the
                // robustness tests see genuinely hostile input.
                const POOL: &[char] = &[
                    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '{', '}', '(', ')', '[',
                    ']', ';', ':', ',', '@', '#', '$', '%', '^', '&', '*', '-', '+', '=', '<', '>',
                    '/', '\\', '"', '\'', '`', '~', '_', '|', '!', '?', '.', 'é', 'λ', '中',
                    '\u{0}', '\u{7f}', '\u{2028}', '😀',
                ];
                (0..len)
                    .map(|_| POOL[rng.below(POOL.len() as u64) as usize])
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    /// Parses `.{lo,hi}` into `(lo, hi)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`], mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count bound for collection strategies, converted from the
    /// range forms real proptest accepts.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for a `BTreeSet` of `size` distinct elements. Gives up on
    /// reaching the requested size after a bounded number of duplicate
    /// draws (mirrors real proptest's local-rejection behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut misses = 0;
            while set.len() < want && misses < 100 {
                if !set.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    /// Strategy choosing uniformly from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Mirror of proptest's `prop` facade module.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each embedded `fn` as a `#[test]`, generating fresh inputs for
/// `config.cases` iterations. No shrinking: failures print the exact
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (@fns ($config:expr) $(,)?) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut case_desc = String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    case_desc.push_str(&format!(
                        "\n  {} = {:?}", stringify!($pat), value
                    ));
                    let $pat = value;
                )+
                let outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body; Ok(()) })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1, config.cases, err, case_desc
                    );
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left, right, format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Weighted union of strategies: `prop_oneof![3 => a, 1 => b]` or the
/// unweighted `prop_oneof![a, b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
