//! Human-readable rendering of harness reports and gate outcomes.

use crate::{CompareOutcome, DeltaKind, Report};

/// Renders a report as an aligned table.
pub fn render_table(report: &Report) -> String {
    let name_width = report
        .benches
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>10}\n",
        "bench", "iters", "ops/iter", "median", "ns/op"
    ));
    out.push_str(&format!(
        "{}  {}  {}  {}  {}\n",
        "-".repeat(name_width),
        "-".repeat(8),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(10)
    ));
    for s in &report.benches {
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>10.2}\n",
            s.name,
            s.iters,
            s.ops,
            format_ns(s.median_ns),
            s.ns_per_op()
        ));
    }
    out.push_str(&format!(
        "\nseed {:#x} · checker speedup (pointer-chased ÷ hinted): {:.2}x\n",
        report.seed, report.checker_speedup
    ));
    out.push_str(&format!(
        "batch scaling (engine w1 ÷ w4): {:.2}x\n",
        report.batch_scaling
    ));
    out.push_str(&format!(
        "hinted optimality gap (hinted ÷ oracle cycles): {:.3}\n",
        report.oracle_gap_hinted
    ));
    out.push_str(&format!(
        "serve latency (closed-loop pipelined, k5): p50 {:.0}us · p99 {:.0}us\n",
        report.serve_p50_us, report.serve_p99_us
    ));
    out
}

/// Renders a gate outcome as a delta table (printed on pass *and* fail
/// so CI logs always show the trend).
pub fn render_deltas(outcome: &CompareOutcome) -> String {
    let name_width = outcome
        .deltas
        .iter()
        .map(|d| d.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    // min-of-K per work unit on both sides — see `Sample::min_ns_per_op`.
    out.push_str(&format!(
        "{:<name_width$}  {:>12}  {:>12}  {:>8}  status\n",
        "bench", "base min/op", "now min/op", "delta"
    ));
    for d in &outcome.deltas {
        let status = match d.kind {
            DeltaKind::Ok => "ok",
            DeltaKind::Regressed => "REGRESSED",
            DeltaKind::CountDrift => "COUNT DRIFT",
            DeltaKind::Missing => "MISSING",
            DeltaKind::New => "new",
            DeltaKind::BelowFloor => "BELOW FLOOR",
            DeltaKind::AboveCeiling => "ABOVE CEILING",
        };
        out.push_str(&format!(
            "{:<name_width$}  {:>12.2}  {:>12.2}  {:>+7.1}%  {status}\n",
            d.name,
            d.baseline_ns_per_op,
            d.current_ns_per_op,
            d.ratio * 100.0,
        ));
    }
    out.push_str(&format!(
        "\ntolerance: +{:.0}% per work unit (fastest repetition); op counts must match exactly\n",
        outcome.max_regression * 100.0
    ));
    out
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compare, Sample};

    #[test]
    fn table_lists_every_bench_and_the_speedup() {
        let report = Report {
            schema: 4,
            seed: 7,
            benches: vec![Sample {
                name: "rumap/word_ops".into(),
                iters: 10,
                reps: 5,
                ops: 100,
                median_ns: 12_345,
                min_ns: 12_000,
            }],
            checker_speedup: 1.75,
            batch_scaling: 3.12,
            oracle_gap_hinted: 1.042,
            serve_p50_us: 850.0,
            serve_p99_us: 2412.0,
        };
        let table = render_table(&report);
        assert!(table.contains("rumap/word_ops"));
        assert!(table.contains("12.35us"));
        assert!(table.contains("1.75x"));
        assert!(table.contains("3.12x"));
        assert!(table.contains("1.042"));
        assert!(table.contains("p50 850us"));
        assert!(table.contains("p99 2412us"));
    }

    #[test]
    fn delta_table_marks_failures() {
        let mk = |ns: u128| Report {
            schema: 4,
            seed: 7,
            benches: vec![Sample {
                name: "a".into(),
                iters: 1,
                reps: 1,
                ops: 1,
                median_ns: ns,
                min_ns: ns,
            }],
            checker_speedup: 0.0,
            batch_scaling: 0.0,
            oracle_gap_hinted: 0.0,
            serve_p50_us: 0.0,
            serve_p99_us: 0.0,
        };
        let outcome = compare(&mk(2000), &mk(1000), 0.25, 0.0, 0.0);
        let rendered = render_deltas(&outcome);
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("+100.0%"));
    }
}
