//! Hand-rolled JSON emit/parse for [`Report`] — the container image has
//! no crates.io access, so the machine-readable report format is kept
//! small enough to do by hand: objects, arrays, strings without exotic
//! escapes, integers and floats.

use crate::{Report, Sample};

/// Serializes a report (stable key order, one bench per line — the
/// committed `BENCH_8.json` should diff cleanly).
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", report.schema));
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!(
        "  \"checker_speedup\": {:.3},\n",
        report.checker_speedup
    ));
    out.push_str(&format!(
        "  \"batch_scaling\": {:.3},\n",
        report.batch_scaling
    ));
    out.push_str(&format!(
        "  \"oracle_gap_hinted\": {:.3},\n",
        report.oracle_gap_hinted
    ));
    out.push_str(&format!(
        "  \"serve_p50_us\": {:.3},\n",
        report.serve_p50_us
    ));
    out.push_str(&format!(
        "  \"serve_p99_us\": {:.3},\n",
        report.serve_p99_us
    ));
    out.push_str("  \"benches\": [\n");
    for (i, s) in report.benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"reps\": {}, \"ops\": {}, \"median_ns\": {}, \"min_ns\": {}}}{}\n",
            s.name,
            s.iters,
            s.reps,
            s.ops,
            s.median_ns,
            s.min_ns,
            if i + 1 < report.benches.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

impl Report {
    /// [`to_json`] as a method.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Parses a report emitted by [`to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = Parser::new(text).parse()?;
        let top = value.as_object("top level")?;
        let schema = get(top, "schema")?.as_u64("schema")? as u32;
        // Schema 4 added `serve_p50_us`/`serve_p99_us` and the
        // `serve/load/*` family (schema 3 added `oracle_gap_hinted` and
        // the `oracle/bnb/*` family; schema 2 added `batch_scaling` and
        // the w8/w16 engine benches); older baselines predate those
        // gates and must be regenerated, not silently compared against.
        if schema != 4 {
            return Err(format!("unsupported report schema {schema}"));
        }
        let seed = get(top, "seed")?.as_u64("seed")?;
        let checker_speedup = get(top, "checker_speedup")?.as_f64("checker_speedup")?;
        let batch_scaling = get(top, "batch_scaling")?.as_f64("batch_scaling")?;
        let oracle_gap_hinted = get(top, "oracle_gap_hinted")?.as_f64("oracle_gap_hinted")?;
        let serve_p50_us = get(top, "serve_p50_us")?.as_f64("serve_p50_us")?;
        let serve_p99_us = get(top, "serve_p99_us")?.as_f64("serve_p99_us")?;
        let mut benches = Vec::new();
        for (i, entry) in get(top, "benches")?.as_array("benches")?.iter().enumerate() {
            let obj = entry.as_object(&format!("benches[{i}]"))?;
            benches.push(Sample {
                name: get(obj, "name")?.as_str("name")?.to_string(),
                iters: get(obj, "iters")?.as_u64("iters")?,
                reps: get(obj, "reps")?.as_u64("reps")?,
                ops: get(obj, "ops")?.as_u64("ops")?,
                median_ns: get(obj, "median_ns")?.as_u64("median_ns")? as u128,
                min_ns: get(obj, "min_ns")?.as_u64("min_ns")? as u128,
            });
        }
        Ok(Report {
            schema,
            seed,
            benches,
            checker_speedup,
            batch_scaling,
            oracle_gap_hinted,
            serve_p50_us,
            serve_p99_us,
        })
    }
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

/// A parsed JSON value (only the shapes the report format uses).
enum Value {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Obj(entries) => Ok(entries),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            _ => Err(format!("{what}: expected a number")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(format!("{what}: expected a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? != byte {
            return Err(format!("expected {:?} at byte {}", byte as char, self.pos));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.keyword("true", Value::Bool),
            b'f' => self.keyword("false", Value::Bool),
            b'n' => self.keyword("null", Value::Null),
            _ => self.number(),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = *self.bytes.get(self.pos + 1).ok_or("unterminated escape")?;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => {
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    });
                    self.pos += 2;
                }
                Some(&byte) => {
                    // Bench names are ASCII; pass other UTF-8 through
                    // byte-by-byte via the str slice.
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let _ = byte;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, ops: u64, median: u128) -> Sample {
        Sample {
            name: name.to_string(),
            iters: 100,
            reps: 5,
            ops,
            median_ns: median,
            min_ns: median - 10,
        }
    }

    fn report() -> Report {
        Report {
            schema: 4,
            seed: 42,
            benches: vec![
                sample("rumap/word_ops", 8192, 1_000_000),
                sample("checker/arena/wide", 2048, 50_000),
            ],
            checker_speedup: 2.5,
            batch_scaling: 3.2,
            oracle_gap_hinted: 1.04,
            serve_p50_us: 850.0,
            serve_p99_us: 2400.0,
        }
    }

    #[test]
    fn json_round_trips() {
        let original = report();
        let decoded = Report::from_json(&original.to_json()).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn emission_is_byte_stable() {
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        for old in ["\"schema\": 3", "\"schema\": 9"] {
            let text = report().to_json().replace("\"schema\": 4", old);
            assert!(Report::from_json(&text).unwrap_err().contains("schema"));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Report::from_json("{\"schema\": ").is_err());
        assert!(Report::from_json("[]").is_err());
        assert!(Report::from_json("{} extra").is_err());
    }
}
