//! The bench suite: what gets measured and how much work each bench
//! does per iteration.
//!
//! Per-iteration work is a pure function of the config seed, so the
//! `ops` column of every sample is byte-stable run to run — that is
//! what the CI gate compares exactly, while timings get a noise
//! tolerance.

use std::sync::Arc;

use mdes_core::{
    CheckStats, Checker, ClassId, CompiledMdes, Constraint, Latency, MdesSpec, OpFlags,
    OptionHints, OrTree, ResourceId, ResourceUsage, RuMap, TableOption, UsageEncoding,
};
use mdes_engine::Engine;
use mdes_machines::Machine;
use mdes_oracle::{differential_gap, GapReport, OracleScheduler};
use mdes_sched::ListScheduler;
use mdes_workload::{generate_regions, Pcg32, RegionConfig};

use crate::reference::PointerChasedChecker;
use crate::{measure, BenchConfig, Sample};

/// The baseline side of the derived `checker_speedup` figure.
pub(crate) const POINTER_CHASED_BENCH: &str = "checker/pointer_chased/wide";
/// The optimized side (flat check arena + hint-first ordering).
pub(crate) const HINTED_BENCH: &str = "checker/hinted/wide";
/// The serial side of the derived `batch_scaling` figure.
pub(crate) const BATCH_W1_BENCH: &str = "engine/batch/w1";
/// The parallel side of the derived `batch_scaling` figure.
pub(crate) const BATCH_W4_BENCH: &str = "engine/batch/w4";

/// Machines the per-machine benches cover: every bundled description —
/// the four `Machine` variants plus the two HMDL-only machines — so the
/// checker replay and scheduling benches see the full range of MDES
/// shapes (rigid early machines through flexible late ones).  Names are
/// the bench-name suffixes; filters (`--bench checker/scalar/k5`) keep
/// single-machine runs cheap.
fn bench_machines() -> Vec<(String, MdesSpec)> {
    let mut machines: Vec<(String, MdesSpec)> = Machine::all()
        .into_iter()
        .map(|machine| (machine.name().to_lowercase(), machine.spec()))
        .collect();
    machines.push(("pentiumpro".to_string(), mdes_machines::pentium_pro()));
    machines.push((
        "superspark_approx".to_string(),
        mdes_machines::approximate_superspark(),
    ));
    machines
}

pub(crate) fn run(config: &BenchConfig, out: &mut Vec<Sample>) {
    rumap_word_ops(config, out);
    checker_replay(config, out);
    wide_tree_checkers(config, out);
    automaton_pack(config, out);
    analyze_lint(config, out);
    list_scheduling(config, out);
    engine_batches(config, out);
    serve_roundtrip(config, out);
}

/// The `analyze/lint/<machine>` family: the full static diagnostics
/// engine (`mdes_analyze::analyze_spec` — dominance difference sets,
/// unsatisfiability search, dead-item sweep, missed-transformation
/// lints) over every bundled description.  Work unit: one analyzed item
/// plus one emitted diagnostic — both pure functions of the spec, so
/// the count is byte-stable and any change to an analysis's coverage
/// shows up as count drift.  This is the cost a `guard` pipeline run or
/// a `serve` hot reload pays before any scheduling happens.
fn analyze_lint(config: &BenchConfig, out: &mut Vec<Sample>) {
    for (machine_name, spec) in bench_machines() {
        let name = format!("analyze/lint/{machine_name}");
        if !config.matches(&name) {
            continue;
        }
        out.push(measure(&name, config.iters(20), config.reps, || {
            let analysis = mdes_analyze::analyze_spec(&spec);
            assert!(
                !analysis.has_fatal(),
                "bundled {machine_name} must stay fatal-free"
            );
            (analysis.items_analyzed + analysis.diagnostics.len()) as u64
        }));
    }
}

/// The `oracle/bnb/<machine>` family: the exact branch-and-bound
/// scheduler running the full differential (oracle vs. unhinted and
/// hinted list scheduling, with replay verification) over oracle-sized
/// seeded regions on every bundled machine.  Work unit: one oracle
/// schedule cycle plus one search node — both pure functions of the
/// seed, so the count is byte-stable and any change to the search's
/// pruning or the production schedulers' output shows up as count
/// drift.  Returns the aggregate *hinted* optimality gap across the
/// measured machines (the figure the gate's ceiling applies to), or 0
/// when the family was filtered out of the run.
///
/// # Panics
///
/// Panics on any differential violation — an invalid oracle schedule or
/// a production schedule beating the oracle is a correctness bug, not a
/// performance result.
pub(crate) fn oracle_differential(config: &BenchConfig, out: &mut Vec<Sample>) -> f64 {
    // Per-region node budget for the bench oracle.  The conformance
    // tests search with the full default budget; a *bench* must stay in
    // the tens of milliseconds, and a budget-bailed region simply keeps
    // its list-scheduler incumbent (still a sound upper bound), which
    // can only pull the measured gap toward 1.
    const ORACLE_BENCH_NODE_LIMIT: u64 = 200_000;
    let mut total = GapReport::default();
    let mut measured = false;
    for (machine_name, spec) in bench_machines() {
        let name = format!("oracle/bnb/{machine_name}");
        if !config.matches(&name) {
            continue;
        }
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let blocks =
            generate_regions(&spec, &RegionConfig::small(10).with_seed(config.seed)).blocks;
        let oracle = OracleScheduler::new(&compiled).with_node_limit(ORACLE_BENCH_NODE_LIMIT);
        out.push(measure(&name, config.iters(2), config.reps, || {
            let mut stats = CheckStats::new();
            let report = differential_gap(&compiled, &blocks, &oracle, &mut stats);
            assert_eq!(
                report.violations, 0,
                "oracle differential violations on {machine_name}: {:?}",
                report.violation_details
            );
            report.oracle_cycles + report.nodes
        }));
        let mut stats = CheckStats::new();
        total.merge(&differential_gap(&compiled, &blocks, &oracle, &mut stats));
        measured = true;
    }
    if measured {
        total.hinted_gap()
    } else {
        0.0
    }
}

/// `RuMap::is_free` / `reserve` / `release`: the word operations every
/// other bench bottoms out in.
fn rumap_word_ops(config: &BenchConfig, out: &mut Vec<Sample>) {
    let name = "rumap/word_ops";
    if !config.matches(name) {
        return;
    }
    let mut rng = Pcg32::new(config.seed, 0x10);
    let probes: Vec<(i32, u64)> = (0..4096)
        .map(|_| {
            let cycle = rng.gen_range(256) as i32;
            let mask = (u64::from(rng.next_u32()) << 32 | u64::from(rng.next_u32())) | 1;
            (cycle, mask)
        })
        .collect();
    out.push(measure(name, config.iters(200), config.reps, || {
        let mut ru = RuMap::new();
        let mut ops = 0u64;
        for &(cycle, mask) in &probes {
            ops += 1;
            if ru.is_free(cycle, mask) {
                ru.reserve(cycle, mask);
                ops += 1;
            }
        }
        for &(cycle, mask) in &probes {
            if !ru.is_free(cycle, mask) {
                ru.release(cycle, mask);
                ops += 1;
            }
        }
        ops
    }));
}

/// The per-option check loop of the production checker under both
/// usage encodings, replaying a seeded probe stream against bundled
/// machines.  Work unit: one resource check.
fn checker_replay(config: &BenchConfig, out: &mut Vec<Sample>) {
    for (machine_name, spec) in bench_machines() {
        for (label, encoding) in [
            ("scalar", UsageEncoding::Scalar),
            ("bitvector", UsageEncoding::BitVector),
        ] {
            let name = format!("checker/{label}/{machine_name}");
            if !config.matches(&name) {
                continue;
            }
            let compiled = CompiledMdes::compile(&spec, encoding).unwrap();
            let checker = Checker::new(&compiled);
            let probes = probe_stream(config.seed, compiled.classes().len(), 2048);
            out.push(measure(&name, config.iters(50), config.reps, || {
                let mut ru = RuMap::new();
                let mut stats = CheckStats::new();
                for &(class, time) in &probes {
                    checker.try_reserve(&mut ru, class, time, &mut stats);
                }
                stats.resource_checks
            }));
        }
    }
}

/// A seeded `(class, issue-time)` stream shared by the checker benches.
fn probe_stream(seed: u64, classes: usize, len: usize) -> Vec<(ClassId, i32)> {
    let mut rng = Pcg32::new(seed, 0x20);
    (0..len)
        .map(|_| {
            let class = ClassId::from_index(rng.gen_range(classes as u32) as usize);
            let time = rng.gen_range(32) as i32;
            (class, time)
        })
        .collect()
}

/// Sixteen interchangeable issue slots behind one OR-tree, with the
/// fifteen highest-priority slots kept busy: the access pattern where
/// both the flat check arena and hint-first ordering show up.  Three
/// checkers run the identical attempt stream; the derived
/// `checker_speedup` divides the first sample's median time by the
/// last's.
fn wide_tree_checkers(config: &BenchConfig, out: &mut Vec<Sample>) {
    const SLOTS: usize = 16;
    const ATTEMPTS: i32 = 1024;
    let arena_name = "checker/arena/wide";
    let wanted = [POINTER_CHASED_BENCH, arena_name, HINTED_BENCH];
    if !wanted.iter().any(|n| config.matches(n)) {
        return;
    }

    let mut spec = MdesSpec::new();
    spec.resources_mut().add_indexed("Slot", SLOTS).unwrap();
    let opts: Vec<_> = (0..SLOTS)
        .map(|r| {
            spec.add_option(TableOption::new(vec![ResourceUsage::new(
                ResourceId::from_index(r),
                0,
            )]))
        })
        .collect();
    let tree = spec.add_or_tree(OrTree::new(opts));
    spec.add_class("op", Constraint::Or(tree), Latency::new(1), OpFlags::none())
        .unwrap();
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let class = compiled.class_by_name("op").unwrap();
    // All slots but the last busy at every cycle: the priority scan
    // re-fails SLOTS-1 options per attempt, the hint lands on the free
    // slot directly.
    let busy: u64 = (1 << (SLOTS - 1)) - 1;

    if config.matches(POINTER_CHASED_BENCH) {
        let checker = PointerChasedChecker::new(&compiled);
        out.push(measure(
            POINTER_CHASED_BENCH,
            config.iters(100),
            config.reps,
            || {
                let mut ru = RuMap::new();
                let mut stats = CheckStats::new();
                for t in 0..ATTEMPTS {
                    ru.reserve(t, busy);
                    checker.try_reserve(&mut ru, class, t, &mut stats);
                }
                stats.resource_checks
            },
        ));
    }
    if config.matches(arena_name) {
        let checker = Checker::new(&compiled);
        out.push(measure(arena_name, config.iters(100), config.reps, || {
            let mut ru = RuMap::new();
            let mut stats = CheckStats::new();
            for t in 0..ATTEMPTS {
                ru.reserve(t, busy);
                checker.try_reserve(&mut ru, class, t, &mut stats);
            }
            stats.resource_checks
        }));
    }
    if config.matches(HINTED_BENCH) {
        let checker = Checker::new(&compiled);
        out.push(measure(
            HINTED_BENCH,
            config.iters(100),
            config.reps,
            || {
                let mut ru = RuMap::new();
                let mut stats = CheckStats::new();
                let mut hints = OptionHints::new(&compiled);
                for t in 0..ATTEMPTS {
                    ru.reserve(t, busy);
                    checker.try_reserve_hinted(&mut ru, class, t, &mut stats, &mut hints);
                }
                stats.resource_checks
            },
        ));
    }
}

/// The automaton checker walking a seeded class stream (greedy in-order
/// packing).  Work unit: one issued operation.
fn automaton_pack(config: &BenchConfig, out: &mut Vec<Sample>) {
    let name = "automaton/pack/pa7100";
    if !config.matches(name) {
        return;
    }
    let spec = Machine::Pa7100.spec();
    let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    let mut automaton = mdes_automata::Automaton::new(&compiled);
    let mut rng = Pcg32::new(config.seed, 0x30);
    let classes: Vec<ClassId> = (0..512)
        .map(|_| ClassId::from_index(rng.gen_range(compiled.classes().len() as u32) as usize))
        .collect();
    out.push(measure(name, config.iters(50), config.reps, || {
        automaton.pack_in_order(&classes);
        classes.len() as u64
    }));
}

/// Full list scheduling of `mdes-workload` region streams, unhinted and
/// hinted.  Work unit: one resource check, so the hinted sample also
/// documents how many checks the hint saves on a real machine.
fn list_scheduling(config: &BenchConfig, out: &mut Vec<Sample>) {
    for (machine_name, spec) in bench_machines() {
        let plain_name = format!("sched/list/{machine_name}");
        let hinted_name = format!("sched/list_hinted/{machine_name}");
        if !config.matches(&plain_name) && !config.matches(&hinted_name) {
            continue;
        }
        let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
        let blocks = generate_regions(&spec, &RegionConfig::new(32).with_seed(config.seed)).blocks;
        for (name, hints) in [(&plain_name, false), (&hinted_name, true)] {
            if !config.matches(name) {
                continue;
            }
            let scheduler = ListScheduler::new(&compiled).with_hints(hints);
            out.push(measure(name, config.iters(10), config.reps, || {
                let mut stats = CheckStats::new();
                for block in &blocks {
                    scheduler.schedule(block, &mut stats);
                }
                stats.resource_checks
            }));
        }
    }
}

/// `Engine::schedule_batch` throughput at 1/2/4/8/16 workers over one
/// shared compiled description.  Work unit: one resource check
/// (worker-count invariant by the engine's determinism contract;
/// wall-clock is where worker scaling shows, on machines that have the
/// cores for it).  The derived `batch_scaling` figure divides the w1
/// sample's fastest repetition by the w4 sample's.
fn engine_batches(config: &BenchConfig, out: &mut Vec<Sample>) {
    const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
    let names: Vec<String> = WORKER_COUNTS
        .iter()
        .map(|jobs| format!("engine/batch/w{jobs}"))
        .collect();
    if !names.iter().any(|n| config.matches(n)) {
        return;
    }
    let spec = Machine::Pa7100.spec();
    let compiled = Arc::new(CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap());
    let blocks = generate_regions(&spec, &RegionConfig::new(128).with_seed(config.seed)).blocks;
    let engine = Engine::new(compiled);
    for (name, jobs) in names.iter().zip(WORKER_COUNTS) {
        if !config.matches(name) {
            continue;
        }
        out.push(measure(name, config.iters(3), config.reps, || {
            engine.schedule_batch(&blocks, jobs).stats.resource_checks
        }));
    }
}

/// The `serve/load/<machine>` family plus the report's serve-latency
/// figures: the full closed-loop v2 client (pipelined connections,
/// every reply re-verified against a locally recomputed expectation)
/// against a live daemon, one bench per bundled machine.  Work unit:
/// one verified answer — deterministic (the run is clean or the bench
/// panics), so count drift catches a request silently going missing.
///
/// Returns `(serve_p50_us, serve_p99_us)` — the fastest-repetition
/// percentiles of the K5 run, the figures the CI gate compares against
/// the committed baseline — or `(0, 0)` when the K5 bench was filtered
/// out of the run.
pub(crate) fn serve_load(config: &BenchConfig, out: &mut Vec<Sample>) -> (f64, f64) {
    use std::cell::Cell;

    const REQUESTS: usize = 96;
    let mut p50 = 0.0;
    let mut p99 = 0.0;
    for machine in Machine::all() {
        let name = format!("serve/load/{}", machine.name().to_lowercase());
        if !config.matches(&name) {
            continue;
        }
        let path = std::env::temp_dir().join(format!(
            "mdes-perf-load-{}-{}.sock",
            machine.name().to_lowercase(),
            std::process::id()
        ));
        let store = Arc::new(mdes_serve::ImageStore::new(
            mdes_serve::compile_machine(machine),
            machine.name(),
            config.seed,
        ));
        let handle = mdes_serve::serve(
            mdes_serve::BindAddr::Unix(path.clone()),
            store,
            mdes_serve::ServeConfig {
                workers: 2,
                ..mdes_serve::ServeConfig::default()
            },
        )
        .expect("daemon binds");
        let options = mdes_serve::LoadOptions {
            addr: mdes_serve::BindAddr::Unix(path),
            connections: 2,
            requests: REQUESTS,
            params: mdes_serve::WorkParams {
                regions: 4,
                mean_ops: 8,
                seed: config.seed,
                jobs: 1,
            },
            pipeline: 4,
            machines: Vec::new(),
            deadline_ms: None,
            reloads: Vec::new(),
            known_sources: vec![mdes_core::lmdes::write(&mdes_serve::compile_machine(
                machine,
            ))],
            verify_responses: true,
            shutdown_when_done: false,
            max_retries: 16,
        };
        // Fastest repetition's percentiles, for the same noise-robustness
        // reason the gate compares min-of-K timings.
        let best = Cell::new((u64::MAX, u64::MAX));
        out.push(measure(&name, config.iters(1), config.reps, || {
            let report = mdes_serve::run_load(&options).expect("load run");
            assert!(
                report.is_clean() && report.unverified == 0,
                "serve/load/{} run not clean: {:?}",
                machine.name(),
                report.errors
            );
            let (p50, p99) = best.get();
            best.set((p50.min(report.p50_us), p99.min(report.p99_us)));
            report.answered
        }));
        handle.shutdown();
        handle.join();
        if machine == Machine::K5 {
            let (best_p50, best_p99) = best.get();
            p50 = best_p50 as f64;
            p99 = best_p99 as f64;
        }
    }
    (p50, p99)
}

/// One client connection round-tripping `schedule` requests through a
/// live daemon over a Unix socket: frame parse + admission queue +
/// engine + reply render per request.  Work unit: one answered request,
/// so the timing is the full serve path, not just the engine.
fn serve_roundtrip(config: &BenchConfig, out: &mut Vec<Sample>) {
    use std::io::{BufRead, BufReader, Write};

    const REQUESTS: u64 = 64;
    let name = "serve/roundtrip";
    if !config.matches(name) {
        return;
    }
    let path = std::env::temp_dir().join(format!("mdes-perf-serve-{}.sock", std::process::id()));
    let store = Arc::new(mdes_serve::ImageStore::new(
        mdes_serve::compile_machine(Machine::K5),
        Machine::K5.name(),
        config.seed,
    ));
    let handle = mdes_serve::serve(
        mdes_serve::BindAddr::Unix(path.clone()),
        store,
        mdes_serve::ServeConfig::default(),
    )
    .expect("daemon binds");
    let stream = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream);
    out.push(measure(name, config.iters(5), config.reps, || {
        let mut line = String::new();
        for i in 0..REQUESTS {
            let request = format!(
                "{{\"id\": {i}, \"verb\": \"schedule\", \"regions\": 4, \"mean_ops\": 8, \
                 \"seed\": {}}}\n",
                config.seed.wrapping_add(i)
            );
            reader
                .get_mut()
                .write_all(request.as_bytes())
                .expect("write");
            line.clear();
            reader.read_line(&mut line).expect("read");
            let reply = mdes_serve::proto::parse_reply(line.trim_end()).expect("reply");
            assert!(reply.ok, "daemon error: {line}");
        }
        REQUESTS
    }));
    drop(reader);
    handle.shutdown();
    handle.join();
}
