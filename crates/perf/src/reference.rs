//! A pointer-chased reference checker, kept as the honest baseline for
//! the check-arena A/B microbench.
//!
//! Before the arena flattening, `CompiledMdes` stored one separately
//! allocated `Vec<CompiledCheck>` per option, so the checker's inner
//! loop dereferenced a fresh heap block for every option it probed.
//! This module reconstructs exactly that layout from a compiled
//! description and runs the same priority-scan algorithm over it —
//! including the same [`CheckStats`] accounting — so
//! `checker/pointer_chased/*` vs `checker/arena/*` measures nothing but
//! the data-layout change (and `checker/hinted/*` adds the ordering
//! change on top).

use mdes_core::compile::CompiledCheck;
use mdes_core::{CheckStats, Choice, ClassId, CompiledMdes, RuMap};

/// The pre-arena checker: per-option check lists in separate heap
/// allocations, walked in strict priority order.
#[derive(Clone, Debug)]
pub struct PointerChasedChecker<'a> {
    mdes: &'a CompiledMdes,
    /// One separately allocated check list per option — deliberately
    /// `Vec<Vec<_>>`, the layout this crate's benches exist to compare
    /// against.
    options: Vec<Vec<CompiledCheck>>,
}

impl<'a> PointerChasedChecker<'a> {
    /// Rebuilds the pointer-chased layout from `mdes`.
    pub fn new(mdes: &'a CompiledMdes) -> PointerChasedChecker<'a> {
        let options = (0..mdes.num_options())
            .map(|idx| mdes.option_checks(idx).iter().collect())
            .collect();
        PointerChasedChecker { mdes, options }
    }

    fn try_or_tree(
        &self,
        ru: &RuMap,
        tree_idx: u32,
        time: i32,
        stats: &mut CheckStats,
    ) -> Option<u32> {
        let tree = &self.mdes.or_trees()[tree_idx as usize];
        'options: for &opt_idx in &tree.options {
            stats.count_option();
            for check in &self.options[opt_idx as usize] {
                stats.count_check();
                if !ru.is_free(time + check.time, check.mask) {
                    continue 'options;
                }
            }
            return Some(opt_idx);
        }
        None
    }

    fn apply_option(&self, ru: &mut RuMap, opt_idx: u32, time: i32, set: bool) {
        for check in &self.options[opt_idx as usize] {
            if set {
                ru.reserve(time + check.time, check.mask);
            } else {
                ru.release(time + check.time, check.mask);
            }
        }
    }

    /// Mirrors `Checker::try_reserve` over the pointer-chased layout.
    pub fn try_reserve(
        &self,
        ru: &mut RuMap,
        class: ClassId,
        time: i32,
        stats: &mut CheckStats,
    ) -> Option<Choice> {
        stats.begin_attempt();
        let compiled = self.mdes.class(class);
        let mut selected: Vec<u32> = Vec::with_capacity(compiled.or_trees.len());
        for &tree_idx in &compiled.or_trees {
            match self.try_or_tree(ru, tree_idx, time, stats) {
                Some(opt_idx) => {
                    self.apply_option(ru, opt_idx, time, true);
                    selected.push(opt_idx);
                }
                None => {
                    for &opt_idx in &selected {
                        self.apply_option(ru, opt_idx, time, false);
                    }
                    stats.end_attempt(false);
                    return None;
                }
            }
        }
        stats.end_attempt(true);
        Some(Choice {
            class,
            time,
            selected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::{Checker, UsageEncoding};
    use mdes_machines::Machine;
    use mdes_workload::Pcg32;

    #[test]
    fn pointer_chased_agrees_with_the_arena_checker() {
        for machine in [Machine::Pa7100, Machine::K5] {
            let spec = machine.spec();
            let compiled = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
            let arena = Checker::new(&compiled);
            let reference = PointerChasedChecker::new(&compiled);
            let classes = compiled.classes().len();

            let mut rng = Pcg32::new(9, 9);
            let mut ru_a = RuMap::new();
            let mut ru_r = RuMap::new();
            let mut stats_a = CheckStats::new();
            let mut stats_r = CheckStats::new();
            for _ in 0..2000 {
                let class = ClassId::from_index(rng.gen_range(classes as u32) as usize);
                let time = rng.gen_range(16) as i32;
                let a = arena.try_reserve(&mut ru_a, class, time, &mut stats_a);
                let r = reference.try_reserve(&mut ru_r, class, time, &mut stats_r);
                assert_eq!(a, r, "{}", machine.name());
            }
            // Same algorithm, same layout-independent accounting.
            assert_eq!(stats_a, stats_r, "{}", machine.name());
        }
    }
}
