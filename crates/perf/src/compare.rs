//! The regression gate: current run vs committed baseline.
//!
//! Two different comparisons, because the two halves of a sample have
//! different natures:
//!
//! * **work counts** (`ops`) are seed-deterministic — any drift means
//!   the measured code path changed shape without the baseline being
//!   regenerated, and is always a failure;
//! * **timings** are wall-clock on a shared machine — only a slowdown
//!   beyond the configured tolerance (25% by default) fails, compared
//!   on ns-per-work-unit so runs at different `--scale` remain
//!   comparable.  Both sides use the *fastest* repetition
//!   ([`crate::Sample::min_ns_per_op`]): interference on a shared
//!   runner (CPU-quota throttling, noisy neighbors) only ever adds
//!   time, so the minimum over K repetitions estimates true speed where
//!   the median can absorb a whole throttle window.
//!
//! A bench present in the baseline but missing from the run fails (a
//! silently dropped bench is how perf coverage rots); a new bench not
//! yet in the baseline is reported but passes.
//!
//! On top of the per-bench comparison, the gate enforces a **floor** on
//! the report's derived `batch_scaling` figure (the engine's measured
//! parallel speedup at 4 workers): unlike a timing, a speedup ratio is
//! compared against an absolute bound, not against the baseline, so a
//! run whose w4 batch does not beat the floor fails even if the
//! baseline was just as bad.  The floor is hardware-aware — see
//! [`crate::batch_scaling_floor_for`].
//!
//! Symmetrically the gate enforces a **ceiling** on the derived
//! `oracle_gap_hinted` figure (hinted list-scheduler cycles ÷ exact
//! branch-and-bound oracle cycles on the seeded small regions): the
//! hinted scheduler may not drift more than
//! [`crate::ORACLE_GAP_CEILING`] above provably-optimal length, no
//! matter what the baseline measured.
//!
//! Finally the gate compares the derived serve-latency percentiles
//! (`serve_p50_us`/`serve_p99_us`, the daemon's closed-loop request
//! latency from the `serve/load/*` family) against the *baseline's*
//! figures under the same timing tolerance — latencies are wall-clock
//! like any timing, so they get the relative gate, not an absolute
//! bound.  Skipped when either side reads 0 (family filtered out, or a
//! pre-serve baseline).

use crate::Report;

/// How one bench moved against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Bench name.
    pub name: String,
    /// Baseline ns per work unit (fastest repetition).
    pub baseline_ns_per_op: f64,
    /// Current ns per work unit, fastest repetition (0 when missing
    /// from the run).
    pub current_ns_per_op: f64,
    /// `current / baseline - 1`: positive is slower.
    pub ratio: f64,
    /// Classification under the configured tolerance.
    pub kind: DeltaKind,
}

/// Gate classification of one bench.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Within tolerance (or faster).
    Ok,
    /// Slower than the tolerance allows.
    Regressed,
    /// Deterministic op count differs from the baseline.
    CountDrift,
    /// In the baseline but not in this run.
    Missing,
    /// In this run but not in the baseline yet.
    New,
    /// A derived gauge (e.g. `batch_scaling`) is below its required
    /// floor.  For gauge deltas the `*_ns_per_op` fields carry the floor
    /// and the measured value instead of timings.
    BelowFloor,
    /// A derived gauge (e.g. `oracle_gap_hinted`) is above its allowed
    /// ceiling.  As with [`DeltaKind::BelowFloor`], the `*_ns_per_op`
    /// fields carry the ceiling and the measured value.
    AboveCeiling,
}

/// The gate's verdict over a whole report.
#[derive(Clone, Debug)]
pub struct CompareOutcome {
    /// Per-bench deltas, baseline order then new benches.
    pub deltas: Vec<Delta>,
    /// Allowed slowdown, e.g. `0.25`.
    pub max_regression: f64,
}

impl CompareOutcome {
    /// True when no bench regressed, drifted, or went missing.
    pub fn passed(&self) -> bool {
        self.deltas
            .iter()
            .all(|d| matches!(d.kind, DeltaKind::Ok | DeltaKind::New))
    }

    /// The benches that make [`CompareOutcome::passed`] false.
    pub fn failures(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| !matches!(d.kind, DeltaKind::Ok | DeltaKind::New))
    }
}

/// Compares `current` against `baseline` with `max_regression` timing
/// tolerance (0.25 = fail beyond 25% slower per work unit) and fails
/// the run when its `batch_scaling` figure is below
/// `batch_scaling_floor` (pass [`crate::batch_scaling_floor`] for the
/// current host's bound) or its `oracle_gap_hinted` figure is above
/// `oracle_gap_ceiling` (pass [`crate::ORACLE_GAP_CEILING`]).  Each
/// gauge check is skipped when its benches were filtered out of the run
/// (the figure reads 0).  The serve-latency percentiles are compared
/// against the baseline's under `max_regression`, skipped when either
/// side reads 0.
pub fn compare(
    current: &Report,
    baseline: &Report,
    max_regression: f64,
    batch_scaling_floor: f64,
    oracle_gap_ceiling: f64,
) -> CompareOutcome {
    let mut deltas = Vec::new();
    for base in &baseline.benches {
        let delta = match current.bench(&base.name) {
            None => Delta {
                name: base.name.clone(),
                baseline_ns_per_op: base.min_ns_per_op(),
                current_ns_per_op: 0.0,
                ratio: 0.0,
                kind: DeltaKind::Missing,
            },
            Some(now) => {
                let baseline_ns = base.min_ns_per_op();
                let current_ns = now.min_ns_per_op();
                let ratio = if baseline_ns > 0.0 {
                    current_ns / baseline_ns - 1.0
                } else {
                    0.0
                };
                let kind = if now.ops != base.ops {
                    DeltaKind::CountDrift
                } else if ratio > max_regression {
                    DeltaKind::Regressed
                } else {
                    DeltaKind::Ok
                };
                Delta {
                    name: base.name.clone(),
                    baseline_ns_per_op: baseline_ns,
                    current_ns_per_op: current_ns,
                    ratio,
                    kind,
                }
            }
        };
        deltas.push(delta);
    }
    for now in &current.benches {
        if baseline.bench(&now.name).is_none() {
            deltas.push(Delta {
                name: now.name.clone(),
                baseline_ns_per_op: 0.0,
                current_ns_per_op: now.min_ns_per_op(),
                ratio: 0.0,
                kind: DeltaKind::New,
            });
        }
    }
    if current.batch_scaling > 0.0 && batch_scaling_floor > 0.0 {
        deltas.push(Delta {
            name: "batch_scaling (floor)".to_string(),
            baseline_ns_per_op: batch_scaling_floor,
            current_ns_per_op: current.batch_scaling,
            ratio: current.batch_scaling / batch_scaling_floor - 1.0,
            kind: if current.batch_scaling < batch_scaling_floor {
                DeltaKind::BelowFloor
            } else {
                DeltaKind::Ok
            },
        });
    }
    if current.oracle_gap_hinted > 0.0 && oracle_gap_ceiling > 0.0 {
        deltas.push(Delta {
            name: "oracle_gap_hinted (ceiling)".to_string(),
            baseline_ns_per_op: oracle_gap_ceiling,
            current_ns_per_op: current.oracle_gap_hinted,
            ratio: current.oracle_gap_hinted / oracle_gap_ceiling - 1.0,
            kind: if current.oracle_gap_hinted > oracle_gap_ceiling {
                DeltaKind::AboveCeiling
            } else {
                DeltaKind::Ok
            },
        });
    }
    for (name, now_us, base_us) in [
        (
            "serve_p50_us (latency)",
            current.serve_p50_us,
            baseline.serve_p50_us,
        ),
        (
            "serve_p99_us (latency)",
            current.serve_p99_us,
            baseline.serve_p99_us,
        ),
    ] {
        if now_us <= 0.0 || base_us <= 0.0 {
            continue;
        }
        let ratio = now_us / base_us - 1.0;
        deltas.push(Delta {
            name: name.to_string(),
            baseline_ns_per_op: base_us,
            current_ns_per_op: now_us,
            ratio,
            kind: if ratio > max_regression {
                DeltaKind::Regressed
            } else {
                DeltaKind::Ok
            },
        });
    }
    CompareOutcome {
        deltas,
        max_regression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    fn report(benches: &[(&str, u64, u128)]) -> Report {
        Report {
            schema: 4,
            seed: 1,
            benches: benches
                .iter()
                .map(|&(name, ops, median_ns)| Sample {
                    name: name.to_string(),
                    iters: 10,
                    reps: 3,
                    ops,
                    median_ns,
                    min_ns: median_ns,
                })
                .collect(),
            checker_speedup: 0.0,
            batch_scaling: 0.0,
            oracle_gap_hinted: 0.0,
            serve_p50_us: 0.0,
            serve_p99_us: 0.0,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("a", 100, 1000), ("b", 5, 700)]);
        let outcome = compare(&r, &r, 0.25, 0.0, 0.0);
        assert!(outcome.passed());
        assert!(outcome.deltas.iter().all(|d| d.kind == DeltaKind::Ok));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_within_passes() {
        let base = report(&[("a", 100, 1000)]);
        let slower_ok = report(&[("a", 100, 1200)]);
        let slower_bad = report(&[("a", 100, 1300)]);
        assert!(compare(&slower_ok, &base, 0.25, 0.0, 0.0).passed());
        let outcome = compare(&slower_bad, &base, 0.25, 0.0, 0.0);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::Regressed
        );
    }

    #[test]
    fn speedups_always_pass() {
        let base = report(&[("a", 100, 1000)]);
        let faster = report(&[("a", 100, 10)]);
        assert!(compare(&faster, &base, 0.0, 0.0, 0.0).passed());
    }

    #[test]
    fn op_count_drift_fails_even_when_faster() {
        let base = report(&[("a", 100, 1000)]);
        let drifted = report(&[("a", 99, 10)]);
        let outcome = compare(&drifted, &base, 0.25, 0.0, 0.0);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::CountDrift
        );
    }

    #[test]
    fn missing_bench_fails_new_bench_passes() {
        let base = report(&[("a", 100, 1000)]);
        let renamed = report(&[("b", 100, 1000)]);
        let outcome = compare(&renamed, &base, 0.25, 0.0, 0.0);
        assert!(!outcome.passed());
        let kinds: Vec<DeltaKind> = outcome.deltas.iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DeltaKind::Missing, DeltaKind::New]);
    }

    #[test]
    fn batch_scaling_below_floor_fails_above_passes() {
        let base = report(&[("a", 100, 1000)]);
        let mut now = report(&[("a", 100, 1000)]);
        now.batch_scaling = 0.7;
        let outcome = compare(&now, &base, 0.25, 0.9, 0.0);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::BelowFloor
        );
        now.batch_scaling = 3.4;
        assert!(compare(&now, &base, 0.25, 3.0, 0.0).passed());
    }

    #[test]
    fn oracle_gap_above_ceiling_fails_below_passes() {
        let base = report(&[("a", 100, 1000)]);
        let mut now = report(&[("a", 100, 1000)]);
        now.oracle_gap_hinted = 1.3;
        let outcome = compare(&now, &base, 0.25, 0.0, crate::ORACLE_GAP_CEILING);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::AboveCeiling
        );
        now.oracle_gap_hinted = 1.05;
        assert!(compare(&now, &base, 0.25, 0.0, crate::ORACLE_GAP_CEILING).passed());
    }

    #[test]
    fn ceiling_is_skipped_when_oracle_benches_were_filtered_out() {
        // oracle_gap_hinted stays 0 when the oracle family did not run;
        // a filtered run must not trip the ceiling.
        let base = report(&[("a", 100, 1000)]);
        let now = report(&[("a", 100, 1000)]);
        assert!(compare(&now, &base, 0.25, 0.0, crate::ORACLE_GAP_CEILING).passed());
    }

    #[test]
    fn floor_is_skipped_when_engine_benches_were_filtered_out() {
        // batch_scaling stays 0 when the engine benches did not run; a
        // filtered run must not trip the floor.
        let base = report(&[("a", 100, 1000)]);
        let now = report(&[("a", 100, 1000)]);
        assert!(compare(&now, &base, 0.25, 3.0, 0.0).passed());
    }

    #[test]
    fn floor_for_cpus_is_hardware_aware() {
        assert_eq!(crate::batch_scaling_floor_for(1), 0.85);
        assert_eq!(crate::batch_scaling_floor_for(2), 0.85);
        assert_eq!(crate::batch_scaling_floor_for(4), 3.0);
        assert_eq!(crate::batch_scaling_floor_for(64), 3.0);
    }

    #[test]
    fn serve_latency_regression_fails_within_tolerance_passes() {
        let mut base = report(&[("a", 100, 1000)]);
        base.serve_p50_us = 800.0;
        base.serve_p99_us = 2000.0;
        let mut now = base.clone();
        now.serve_p99_us = 2400.0; // +20%: inside a 25% tolerance
        assert!(compare(&now, &base, 0.25, 0.0, 0.0).passed());
        now.serve_p99_us = 2600.0; // +30%: out
        let outcome = compare(&now, &base, 0.25, 0.0, 0.0);
        assert!(!outcome.passed());
        let failure = outcome.failures().next().unwrap();
        assert_eq!(failure.kind, DeltaKind::Regressed);
        assert_eq!(failure.name, "serve_p99_us (latency)");
    }

    #[test]
    fn serve_latency_is_skipped_when_either_side_reads_zero() {
        // A filtered run (current 0) or a pre-serve baseline (baseline
        // 0) must not trip the latency gate.
        let mut base = report(&[("a", 100, 1000)]);
        let mut now = report(&[("a", 100, 1000)]);
        now.serve_p50_us = 900.0;
        now.serve_p99_us = 9000.0;
        assert!(compare(&now, &base, 0.25, 0.0, 0.0).passed());
        base.serve_p50_us = 100.0;
        base.serve_p99_us = 100.0;
        now.serve_p50_us = 0.0;
        now.serve_p99_us = 0.0;
        assert!(compare(&now, &base, 0.25, 0.0, 0.0).passed());
    }

    #[test]
    fn scale_invariance_through_ns_per_op() {
        // Same per-op speed at 10x the iterations: no regression.
        let base = report(&[("a", 100, 1000)]);
        let mut scaled = report(&[("a", 100, 10_000)]);
        scaled.benches[0].iters = 100;
        assert!(compare(&scaled, &base, 0.01, 0.0, 0.0).passed());
    }
}
