//! The regression gate: current run vs committed baseline.
//!
//! Two different comparisons, because the two halves of a sample have
//! different natures:
//!
//! * **work counts** (`ops`) are seed-deterministic — any drift means
//!   the measured code path changed shape without the baseline being
//!   regenerated, and is always a failure;
//! * **timings** are wall-clock on a shared machine — only a slowdown
//!   beyond the configured tolerance (25% by default) fails, compared
//!   on ns-per-work-unit so runs at different `--scale` remain
//!   comparable.  Both sides use the *fastest* repetition
//!   ([`crate::Sample::min_ns_per_op`]): interference on a shared
//!   runner (CPU-quota throttling, noisy neighbors) only ever adds
//!   time, so the minimum over K repetitions estimates true speed where
//!   the median can absorb a whole throttle window.
//!
//! A bench present in the baseline but missing from the run fails (a
//! silently dropped bench is how perf coverage rots); a new bench not
//! yet in the baseline is reported but passes.

use crate::Report;

/// How one bench moved against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Bench name.
    pub name: String,
    /// Baseline ns per work unit (fastest repetition).
    pub baseline_ns_per_op: f64,
    /// Current ns per work unit, fastest repetition (0 when missing
    /// from the run).
    pub current_ns_per_op: f64,
    /// `current / baseline - 1`: positive is slower.
    pub ratio: f64,
    /// Classification under the configured tolerance.
    pub kind: DeltaKind,
}

/// Gate classification of one bench.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Within tolerance (or faster).
    Ok,
    /// Slower than the tolerance allows.
    Regressed,
    /// Deterministic op count differs from the baseline.
    CountDrift,
    /// In the baseline but not in this run.
    Missing,
    /// In this run but not in the baseline yet.
    New,
}

/// The gate's verdict over a whole report.
#[derive(Clone, Debug)]
pub struct CompareOutcome {
    /// Per-bench deltas, baseline order then new benches.
    pub deltas: Vec<Delta>,
    /// Allowed slowdown, e.g. `0.25`.
    pub max_regression: f64,
}

impl CompareOutcome {
    /// True when no bench regressed, drifted, or went missing.
    pub fn passed(&self) -> bool {
        self.deltas
            .iter()
            .all(|d| matches!(d.kind, DeltaKind::Ok | DeltaKind::New))
    }

    /// The benches that make [`CompareOutcome::passed`] false.
    pub fn failures(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| !matches!(d.kind, DeltaKind::Ok | DeltaKind::New))
    }
}

/// Compares `current` against `baseline` with `max_regression` timing
/// tolerance (0.25 = fail beyond 25% slower per work unit).
pub fn compare(current: &Report, baseline: &Report, max_regression: f64) -> CompareOutcome {
    let mut deltas = Vec::new();
    for base in &baseline.benches {
        let delta = match current.bench(&base.name) {
            None => Delta {
                name: base.name.clone(),
                baseline_ns_per_op: base.min_ns_per_op(),
                current_ns_per_op: 0.0,
                ratio: 0.0,
                kind: DeltaKind::Missing,
            },
            Some(now) => {
                let baseline_ns = base.min_ns_per_op();
                let current_ns = now.min_ns_per_op();
                let ratio = if baseline_ns > 0.0 {
                    current_ns / baseline_ns - 1.0
                } else {
                    0.0
                };
                let kind = if now.ops != base.ops {
                    DeltaKind::CountDrift
                } else if ratio > max_regression {
                    DeltaKind::Regressed
                } else {
                    DeltaKind::Ok
                };
                Delta {
                    name: base.name.clone(),
                    baseline_ns_per_op: baseline_ns,
                    current_ns_per_op: current_ns,
                    ratio,
                    kind,
                }
            }
        };
        deltas.push(delta);
    }
    for now in &current.benches {
        if baseline.bench(&now.name).is_none() {
            deltas.push(Delta {
                name: now.name.clone(),
                baseline_ns_per_op: 0.0,
                current_ns_per_op: now.min_ns_per_op(),
                ratio: 0.0,
                kind: DeltaKind::New,
            });
        }
    }
    CompareOutcome {
        deltas,
        max_regression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    fn report(benches: &[(&str, u64, u128)]) -> Report {
        Report {
            schema: 1,
            seed: 1,
            benches: benches
                .iter()
                .map(|&(name, ops, median_ns)| Sample {
                    name: name.to_string(),
                    iters: 10,
                    reps: 3,
                    ops,
                    median_ns,
                    min_ns: median_ns,
                })
                .collect(),
            checker_speedup: 0.0,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("a", 100, 1000), ("b", 5, 700)]);
        let outcome = compare(&r, &r, 0.25);
        assert!(outcome.passed());
        assert!(outcome.deltas.iter().all(|d| d.kind == DeltaKind::Ok));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_within_passes() {
        let base = report(&[("a", 100, 1000)]);
        let slower_ok = report(&[("a", 100, 1200)]);
        let slower_bad = report(&[("a", 100, 1300)]);
        assert!(compare(&slower_ok, &base, 0.25).passed());
        let outcome = compare(&slower_bad, &base, 0.25);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::Regressed
        );
    }

    #[test]
    fn speedups_always_pass() {
        let base = report(&[("a", 100, 1000)]);
        let faster = report(&[("a", 100, 10)]);
        assert!(compare(&faster, &base, 0.0).passed());
    }

    #[test]
    fn op_count_drift_fails_even_when_faster() {
        let base = report(&[("a", 100, 1000)]);
        let drifted = report(&[("a", 99, 10)]);
        let outcome = compare(&drifted, &base, 0.25);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.failures().next().unwrap().kind,
            DeltaKind::CountDrift
        );
    }

    #[test]
    fn missing_bench_fails_new_bench_passes() {
        let base = report(&[("a", 100, 1000)]);
        let renamed = report(&[("b", 100, 1000)]);
        let outcome = compare(&renamed, &base, 0.25);
        assert!(!outcome.passed());
        let kinds: Vec<DeltaKind> = outcome.deltas.iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DeltaKind::Missing, DeltaKind::New]);
    }

    #[test]
    fn scale_invariance_through_ns_per_op() {
        // Same per-op speed at 10x the iterations: no regression.
        let base = report(&[("a", 100, 1000)]);
        let mut scaled = report(&[("a", 100, 10_000)]);
        scaled.benches[0].iters = 100;
        assert!(compare(&scaled, &base, 0.01).passed());
    }
}
