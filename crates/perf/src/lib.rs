//! Seed-deterministic benchmark harness for the MDES query hot paths.
//!
//! The paper's transformations exist to make the scheduler's inner
//! check/reserve loop cheap (Sections 6–7), so this crate measures that
//! loop directly and makes the measurement reproducible enough to gate a
//! CI pipeline on:
//!
//! * every workload is generated from a fixed seed ([`mdes_workload::Pcg32`]
//!   streams), so the *work done* by a bench — resource checks issued,
//!   operations scheduled — is a deterministic integer that must match
//!   the committed baseline exactly;
//! * timings use the monotonic clock ([`std::time::Instant`]), fixed
//!   iteration counts, and median-of-K reporting; the regression gate
//!   compares the *fastest* repetition per bench (noise on a shared CI
//!   box is additive, so min-of-K is the robust speed estimator) with a
//!   tolerance on top (25% by default).
//!
//! [`run_all`] executes the suite and returns a [`Report`];
//! [`report::render_table`] prints it for humans, [`Report::to_json`] /
//! [`Report::from_json`] round-trip the machine-readable form committed
//! as `BENCH_8.json`, and [`compare::compare`] implements the regression
//! gate used by `mdesc perf --baseline` — including the hardware-aware
//! [`batch_scaling_floor`] on the engine's parallel speedup, the
//! [`ORACLE_GAP_CEILING`] on the hinted scheduler's measured optimality
//! gap against the exact branch-and-bound oracle, and the serve-latency
//! percentiles ([`Report::serve_p50_us`] / [`Report::serve_p99_us`])
//! from the closed-loop `serve/load` family, compared against the
//! baseline like any timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod json;
pub mod reference;
pub mod report;
mod suite;

use std::time::Instant;

pub use compare::{compare, CompareOutcome, Delta, DeltaKind};
pub use reference::PointerChasedChecker;

/// Parameters of one harness run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Base seed for every generated workload.
    pub seed: u64,
    /// Multiplier on iteration counts (>= such that every bench still
    /// runs at least one iteration).  Scaling changes how long the
    /// timing loops run but not the per-iteration work, so reports taken
    /// at different scales remain comparable.
    pub scale: f64,
    /// If set, only benches whose name contains this substring run.
    pub filter: Option<String>,
    /// Timing repetitions per bench (the K in median-of-K).
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            seed: 0xC0FFEE,
            scale: 1.0,
            filter: None,
            reps: 5,
        }
    }
}

impl BenchConfig {
    /// A config with everything default but the seed.
    pub fn with_seed(mut self, seed: u64) -> BenchConfig {
        self.seed = seed;
        self
    }

    fn iters(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }
}

/// One bench's measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Bench name, slash-namespaced (`checker/hinted/wide`).
    pub name: String,
    /// Timed iterations per repetition.
    pub iters: u64,
    /// Repetitions (median-of-K).
    pub reps: u64,
    /// Deterministic work units per iteration — the byte-stable part of
    /// the report.  What a unit is depends on the bench (resource
    /// checks, scheduled operations, RU-map word ops); what matters is
    /// that the same seed must always reproduce the same count.
    pub ops: u64,
    /// Median over repetitions of the total nanoseconds for `iters`
    /// iterations.
    pub median_ns: u128,
    /// Fastest repetition, same units.
    pub min_ns: u128,
}

impl Sample {
    /// Median nanoseconds per work unit — the headline figure of the
    /// human-readable table (invariant under `--scale` and rep count).
    pub fn ns_per_op(&self) -> f64 {
        let units = (self.iters as f64) * (self.ops as f64);
        if units == 0.0 {
            return 0.0;
        }
        self.median_ns as f64 / units
    }

    /// Fastest-repetition nanoseconds per work unit — the quantity the
    /// regression gate compares.  Timing noise on a shared runner is
    /// strictly additive (CPU-quota throttling, neighbor interference
    /// can only make a repetition slower, never faster), so the minimum
    /// over K repetitions is the most robust estimator of how fast the
    /// code actually is.
    pub fn min_ns_per_op(&self) -> f64 {
        let units = (self.iters as f64) * (self.ops as f64);
        if units == 0.0 {
            return 0.0;
        }
        self.min_ns as f64 / units
    }
}

/// A full harness run: configuration echo, per-bench samples, derived
/// figures.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Report format version.
    pub schema: u32,
    /// Seed the workloads were generated from.
    pub seed: u64,
    /// Per-bench measurements, in suite order.
    pub benches: Vec<Sample>,
    /// Pointer-chased ÷ hinted fastest-repetition time on the
    /// wide-OR-tree checker microbench (identical attempt streams): the
    /// measured combined effect of the flat check arena and hint-first
    /// ordering.  0 when either side was filtered out of the run.
    pub checker_speedup: f64,
    /// `engine/batch/w1` ÷ `engine/batch/w4` fastest-repetition time:
    /// the measured parallel speedup of `Engine::schedule_batch` at 4
    /// workers on the seeded workload (same deterministic work on both
    /// sides, so total time is directly comparable).  Values above 1
    /// mean adding workers helps; the gate floor is hardware-aware
    /// ([`batch_scaling_floor`]).  0 when either side was filtered out
    /// of the run.
    pub batch_scaling: f64,
    /// Aggregate hinted optimality gap from the `oracle/bnb/*` family:
    /// total hinted list-scheduler cycles ÷ total provably-minimal
    /// oracle cycles over the seeded small-region streams on every
    /// bundled machine.  1.0 would mean the hinted scheduler is exactly
    /// optimal on this workload; the gate rejects values above
    /// [`ORACLE_GAP_CEILING`].  Unlike a timing this is a *quality*
    /// figure — deterministic for a given seed — so it is compared
    /// against an absolute ceiling, not against the baseline.  0 when
    /// the oracle family was filtered out of the run.
    pub oracle_gap_hinted: f64,
    /// p50 request latency (microseconds) of the `serve/load/k5`
    /// closed-loop run, fastest repetition: the end-to-end serve path —
    /// frame parse, shard routing, admission, engine, reply render —
    /// under pipelined load with every answer verified.  Compared
    /// against the baseline with the run's timing tolerance, so a serve
    /// latency regression fails CI like any other bench.  0 when the
    /// serve/load family was filtered out of the run.
    pub serve_p50_us: f64,
    /// p99 request latency of the same run — the tail the daemon's
    /// backpressure and deadline machinery exist to protect.  Gated
    /// like [`Report::serve_p50_us`].
    pub serve_p99_us: f64,
}

/// Ceiling on [`Report::oracle_gap_hinted`] enforced by the gate: the
/// hinted list scheduler may emit at most 15% more cycles than the exact
/// oracle over the seeded small regions on the bundled machines.  The
/// measured gap on those streams sits around 1.01–1.05 (list scheduling
/// with greedy option choice is near-optimal on short regions), so the
/// ceiling has real slack while still catching a scheduling-quality
/// regression long before it would show in wall-clock benches.
pub const ORACLE_GAP_CEILING: f64 = 1.15;

/// The `batch_scaling` gate floor for a host with `cpus` usable CPUs.
///
/// On a host with at least 4 CPUs, 4 engine workers must deliver a real
/// parallel speedup: the floor is 3.0 (75% scaling efficiency).  On
/// smaller hosts — CI containers pinned to one or two cores — a
/// wall-clock speedup from extra threads is physically impossible, so
/// the floor degrades to a *no-harm* bound of 0.85: the 4-worker batch
/// may cost at most ~18% more wall-clock than the serial one.  That
/// bound is what catches the failure mode this figure exists for
/// (parallelism as a net loss: w4 *markedly slower* than w1 from queue
/// overhead and per-job allocation), on any hardware.  It is
/// deliberately loose: on a 1-CPU box the measured ratio sits around
/// 0.90–0.96 with a few points of scheduler-noise spread, and a floor
/// inside that spread would flake.
pub fn batch_scaling_floor_for(cpus: usize) -> f64 {
    if cpus >= 4 {
        3.0
    } else {
        0.85
    }
}

/// [`batch_scaling_floor_for`] evaluated on the current host
/// ([`std::thread::available_parallelism`]; 1 when that is unknowable).
pub fn batch_scaling_floor() -> f64 {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    batch_scaling_floor_for(cpus)
}

impl Report {
    /// Looks a bench up by exact name.
    pub fn bench(&self, name: &str) -> Option<&Sample> {
        self.benches.iter().find(|s| s.name == name)
    }

    /// Publishes the report into a telemetry registry: one
    /// `perf/<bench>/ns_per_op` and `perf/<bench>/ops` gauge pair per
    /// bench, plus `perf/checker_speedup` and `perf/batch_scaling`.
    pub fn publish(&self, tel: &mdes_telemetry::Telemetry) {
        for sample in &self.benches {
            tel.gauge_set(
                &format!("perf/{}/ns_per_op", sample.name),
                sample.ns_per_op(),
            );
            tel.gauge_set(&format!("perf/{}/ops", sample.name), sample.ops as f64);
        }
        tel.gauge_set("perf/checker_speedup", self.checker_speedup);
        tel.gauge_set("perf/batch_scaling", self.batch_scaling);
        tel.gauge_set("perf/oracle_gap_hinted", self.oracle_gap_hinted);
        tel.gauge_set("perf/serve_p50_us", self.serve_p50_us);
        tel.gauge_set("perf/serve_p99_us", self.serve_p99_us);
    }
}

/// The timing kernel: runs `work` (which must return its deterministic
/// work-unit count) `iters` times per repetition, `reps` repetitions,
/// and keeps the median and minimum repetition.
///
/// # Panics
///
/// Panics if `work` is not deterministic (returns different counts on
/// different invocations) — that would silently unmoor the baseline
/// comparison, so it is a harness bug worth failing loudly on.
pub fn measure<F: FnMut() -> u64>(name: &str, iters: u64, reps: usize, mut work: F) -> Sample {
    let reps = reps.max(1);
    let mut totals: Vec<u128> = Vec::with_capacity(reps);
    let mut ops: Option<u64> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let mut last = 0u64;
        for _ in 0..iters {
            last = work();
        }
        totals.push(start.elapsed().as_nanos());
        match ops {
            None => ops = Some(last),
            Some(expected) => assert_eq!(
                expected, last,
                "bench {name} is not deterministic: {expected} vs {last} work units"
            ),
        }
    }
    totals.sort_unstable();
    Sample {
        name: name.to_string(),
        iters,
        reps: reps as u64,
        ops: ops.unwrap_or(0),
        median_ns: totals[totals.len() / 2],
        min_ns: totals[0],
    }
}

/// Runs the whole suite under `config`.
pub fn run_all(config: &BenchConfig) -> Report {
    let mut benches = Vec::new();
    suite::run(config, &mut benches);
    // The oracle family doubles as the source of the derived quality
    // figure: the aggregate hinted gap over every measured machine.
    let oracle_gap_hinted = suite::oracle_differential(config, &mut benches);
    // The serve/load family likewise yields the gated end-to-end serve
    // latency percentiles (from the K5 run's fastest repetition).
    let (serve_p50_us, serve_p99_us) = suite::serve_load(config, &mut benches);

    // Both sides of the A/B run the identical attempt stream at the same
    // iteration count, so total time is directly comparable (the
    // per-work-unit figures are not: doing fewer checks is the point of
    // the optimization).  Fastest repetition on each side, for the same
    // noise-robustness reason the gate uses min-of-K.
    let pointer = benches
        .iter()
        .find(|s| s.name == suite::POINTER_CHASED_BENCH)
        .map(|s| s.min_ns);
    let hinted = benches
        .iter()
        .find(|s| s.name == suite::HINTED_BENCH)
        .map(|s| s.min_ns);
    let checker_speedup = match (pointer, hinted) {
        (Some(p), Some(h)) if h > 0 => p as f64 / h as f64,
        _ => 0.0,
    };

    // Same reasoning for the engine scaling figure: w1 and w4 schedule
    // the identical seeded batch (the op counts are asserted equal by
    // the engine's determinism contract), so fastest-repetition total
    // time divides directly into a parallel speedup.
    let w1 = benches
        .iter()
        .find(|s| s.name == suite::BATCH_W1_BENCH)
        .map(|s| s.min_ns);
    let w4 = benches
        .iter()
        .find(|s| s.name == suite::BATCH_W4_BENCH)
        .map(|s| s.min_ns);
    let batch_scaling = match (w1, w4) {
        (Some(serial), Some(wide)) if wide > 0 => serial as f64 / wide as f64,
        _ => 0.0,
    };

    Report {
        schema: 4,
        seed: config.seed,
        benches,
        checker_speedup,
        batch_scaling,
        oracle_gap_hinted,
        serve_p50_us,
        serve_p99_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_iteration_count_and_ops() {
        let sample = measure("t", 3, 5, || 7);
        assert_eq!(sample.iters, 3);
        assert_eq!(sample.reps, 5);
        assert_eq!(sample.ops, 7);
        assert!(sample.median_ns >= sample.min_ns);
    }

    #[test]
    #[should_panic(expected = "not deterministic")]
    fn measure_rejects_nondeterministic_work() {
        let mut n = 0u64;
        measure("t", 1, 2, || {
            n += 1;
            n
        });
    }

    #[test]
    fn scaled_iteration_counts_never_reach_zero() {
        let config = BenchConfig {
            scale: 0.001,
            ..BenchConfig::default()
        };
        assert_eq!(config.iters(100), 1);
    }

    #[test]
    fn filter_selects_by_substring() {
        let config = BenchConfig {
            filter: Some("checker".into()),
            ..BenchConfig::default()
        };
        assert!(config.matches("checker/hinted/wide"));
        assert!(!config.matches("rumap/word_ops"));
    }

    #[test]
    fn same_seed_reproduces_identical_op_counts() {
        let config = BenchConfig {
            scale: 0.05,
            reps: 1,
            ..BenchConfig::default()
        };
        let a = run_all(&config);
        let b = run_all(&config);
        let counts = |r: &Report| {
            r.benches
                .iter()
                .map(|s| (s.name.clone(), s.ops))
                .collect::<Vec<_>>()
        };
        assert_eq!(counts(&a), counts(&b));
        assert!(!a.benches.is_empty());
    }
}
