//! Fault injection: deliberate, deterministic corruption of stage output.
//!
//! These hooks exist to *prove the guard works*.  Each [`FaultKind`]
//! models a realistic way an optimization stage could silently break a
//! description — the classes of bug the paper's PA7100 anecdote warns
//! about — and the guard's test suite injects each one to show the
//! differential oracle detects it and the rollback recovers from it.
//!
//! Faults are applied to the spec *after* a stage runs and *before* the
//! guard checks it, exactly where a buggy transformation would leave its
//! damage.

use mdes_core::spec::{Constraint, MdesSpec, OptionId, OrTreeId};
use mdes_opt::pipeline::StageId;
use std::collections::BTreeSet;
use std::fmt;

/// A class of stage-output corruption.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Delete a resource usage from an option (an over-eager redundancy
    /// eliminator): operations stop claiming a resource they need, so
    /// conflicting pairs schedule together.
    DropUsage,
    /// Reverse the priority order of an OR-tree's options (a broken
    /// sort): a different option wins under contention, changing which
    /// resources later operations see as busy.
    ReorderPriority,
    /// Shift one usage's time in one option only (a timeshift applied
    /// non-uniformly): the relative offsets that define conflicts change.
    ShiftTime,
    /// Remove the last option of an OR-tree whose options are *not*
    /// duplicates (the PA7100 bug: two "identical-looking" options merged
    /// when they were semantically distinct): the fallback path is gone.
    OverPack,
    /// Empty an option's usage list entirely, leaving the spec
    /// *structurally* invalid: this class is caught by the validator
    /// layer (guard mode `validate` suffices), not the oracle.
    ClearUsages,
}

impl FaultKind {
    /// Every corruption class, for exhaustive test loops.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::DropUsage,
            FaultKind::ReorderPriority,
            FaultKind::ShiftTime,
            FaultKind::OverPack,
            FaultKind::ClearUsages,
        ]
    }

    /// Short diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropUsage => "drop-usage",
            FaultKind::ReorderPriority => "reorder-priority",
            FaultKind::ShiftTime => "shift-time",
            FaultKind::OverPack => "over-pack",
            FaultKind::ClearUsages => "clear-usages",
        }
    }

    /// Parses a [`FaultKind::name`] back into the kind (for CLI flags).
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::all().into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault: corrupt the output of `stage` with `kind`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The stage whose output is corrupted.
    pub stage: StageId,
    /// The corruption class.
    pub kind: FaultKind,
}

/// OR-trees reachable from some class constraint, in id order.
///
/// Faults must land on *reachable* structure: corrupting a tree no class
/// refers to (e.g. one orphaned by factoring) is semantically invisible,
/// so the oracle would — correctly — not flag it.
fn reachable_or_trees(spec: &MdesSpec) -> Vec<OrTreeId> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for class in spec.class_ids() {
        match spec.class(class).constraint {
            Constraint::Or(tree) => {
                seen.insert(tree.index());
            }
            Constraint::AndOr(tree) => {
                for &or in &spec.and_or_tree(tree).or_trees {
                    seen.insert(or.index());
                }
            }
        }
    }
    seen.into_iter().map(OrTreeId::from_index).collect()
}

/// Options reachable through reachable OR-trees, in first-reference order
/// (deduplicated).
fn reachable_options(spec: &MdesSpec) -> Vec<OptionId> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut out = Vec::new();
    for tree in reachable_or_trees(spec) {
        for &opt in &spec.or_tree(tree).options {
            if seen.insert(opt.index()) {
                out.push(opt);
            }
        }
    }
    out
}

/// True if the tree's first and last options are semantically distinct —
/// reversing or truncating a tree of duplicates would (correctly) pass
/// the oracle.
fn ends_distinct(spec: &MdesSpec, id: OrTreeId) -> bool {
    let options = &spec.or_tree(id).options;
    options.len() >= 2
        && spec.option(options[0]).canonical_usages()
            != spec.option(options[options.len() - 1]).canonical_usages()
}

/// Applies `kind` to `spec` at the first applicable *reachable* site (in
/// id order), so an injection is reproducible.  Returns a description of
/// what was corrupted, or `None` if the spec has no applicable site.
pub fn apply_fault(spec: &mut MdesSpec, kind: FaultKind) -> Option<String> {
    match kind {
        FaultKind::DropUsage => {
            let id = *reachable_options(spec)
                .iter()
                .find(|&&id| spec.option(id).usages.len() >= 2)?;
            let dropped = spec.option_mut(id).usages.pop()?;
            Some(format!(
                "dropped usage r{}@{} from option {}",
                dropped.resource.index(),
                dropped.time,
                id.index()
            ))
        }
        FaultKind::ReorderPriority => {
            let id = reachable_or_trees(spec)
                .into_iter()
                .find(|&id| ends_distinct(spec, id))?;
            spec.or_tree_mut(id).options.reverse();
            Some(format!(
                "reversed option priorities of or-tree {}",
                id.index()
            ))
        }
        FaultKind::ShiftTime => {
            // Shifting the only usage of a resource nobody else touches is
            // exactly the *legal* per-resource time shift, so target a
            // usage whose resource occurs elsewhere too: shifting one
            // occurrence but not the others breaks relative offsets.
            let options = reachable_options(spec);
            let mut occurrences = std::collections::BTreeMap::new();
            for &opt in &options {
                for usage in &spec.option(opt).usages {
                    *occurrences.entry(usage.resource.index()).or_insert(0usize) += 1;
                }
            }
            let (id, slot) = options.iter().find_map(|&opt| {
                spec.option(opt)
                    .usages
                    .iter()
                    .position(|u| occurrences.get(&u.resource.index()).copied().unwrap_or(0) >= 2)
                    .map(|slot| (opt, slot))
            })?;
            let usage = &mut spec.option_mut(id).usages[slot];
            usage.time = usage.time.saturating_add(1);
            let shifted = spec.option(id).usages[slot];
            Some(format!(
                "shifted usage r{}@{} of option {} (one occurrence only)",
                shifted.resource.index(),
                shifted.time,
                id.index()
            ))
        }
        FaultKind::OverPack => {
            let id = reachable_or_trees(spec)
                .into_iter()
                .find(|&id| ends_distinct(spec, id))?;
            let removed = spec.or_tree_mut(id).options.pop()?;
            Some(format!(
                "over-packed or-tree {}: removed distinct option {}",
                id.index(),
                removed.index()
            ))
        }
        FaultKind::ClearUsages => {
            let id = *reachable_options(spec)
                .iter()
                .find(|&&id| !spec.option(id).usages.is_empty())?;
            spec.option_mut(id).usages.clear();
            Some(format!("cleared every usage of option {}", id.index()))
        }
    }
}
