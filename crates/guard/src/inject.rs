//! Fault injection: deliberate, deterministic corruption of stage output.
//!
//! These hooks exist to *prove the guard works*.  Each [`FaultKind`]
//! models a realistic way an optimization stage could silently break a
//! description — the classes of bug the paper's PA7100 anecdote warns
//! about — and the guard's test suite injects each one to show the
//! differential oracle detects it and the rollback recovers from it.
//!
//! Faults are applied to the spec *after* a stage runs and *before* the
//! guard checks it, exactly where a buggy transformation would leave its
//! damage.

use mdes_core::spec::{Constraint, MdesSpec, OptionId, OrTreeId};
use mdes_opt::pipeline::StageId;
use std::collections::BTreeSet;
use std::fmt;

/// Number of fixed header bytes in an LMDES image (magic + encoding +
/// resource count + check-time bounds) — the region [`ImageFault::
/// TruncateHeader`] cuts inside.
const LMDES_HEADER_LEN: usize = 19;

/// A class of stage-output corruption.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Delete a resource usage from an option (an over-eager redundancy
    /// eliminator): operations stop claiming a resource they need, so
    /// conflicting pairs schedule together.
    DropUsage,
    /// Reverse the priority order of an OR-tree's options (a broken
    /// sort): a different option wins under contention, changing which
    /// resources later operations see as busy.
    ReorderPriority,
    /// Shift one usage's time in one option only (a timeshift applied
    /// non-uniformly): the relative offsets that define conflicts change.
    ShiftTime,
    /// Remove the last option of an OR-tree whose options are *not*
    /// duplicates (the PA7100 bug: two "identical-looking" options merged
    /// when they were semantically distinct): the fallback path is gone.
    OverPack,
    /// Empty an option's usage list entirely, leaving the spec
    /// *structurally* invalid: this class is caught by the validator
    /// layer (guard mode `validate` suffices), not the oracle.
    ClearUsages,
}

impl FaultKind {
    /// Every corruption class, for exhaustive test loops.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::DropUsage,
            FaultKind::ReorderPriority,
            FaultKind::ShiftTime,
            FaultKind::OverPack,
            FaultKind::ClearUsages,
        ]
    }

    /// Short diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropUsage => "drop-usage",
            FaultKind::ReorderPriority => "reorder-priority",
            FaultKind::ShiftTime => "shift-time",
            FaultKind::OverPack => "over-pack",
            FaultKind::ClearUsages => "clear-usages",
        }
    }

    /// Parses a [`FaultKind::name`] back into the kind (for CLI flags).
    pub fn parse(name: &str) -> Option<FaultKind> {
        FaultKind::all().into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault: corrupt the output of `stage` with `kind`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The stage whose output is corrupted.
    pub stage: StageId,
    /// The corruption class.
    pub kind: FaultKind,
}

/// OR-trees reachable from some class constraint, in id order.
///
/// Faults must land on *reachable* structure: corrupting a tree no class
/// refers to (e.g. one orphaned by factoring) is semantically invisible,
/// so the oracle would — correctly — not flag it.
fn reachable_or_trees(spec: &MdesSpec) -> Vec<OrTreeId> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for class in spec.class_ids() {
        match spec.class(class).constraint {
            Constraint::Or(tree) => {
                seen.insert(tree.index());
            }
            Constraint::AndOr(tree) => {
                for &or in &spec.and_or_tree(tree).or_trees {
                    seen.insert(or.index());
                }
            }
        }
    }
    seen.into_iter().map(OrTreeId::from_index).collect()
}

/// Options reachable through reachable OR-trees, in first-reference order
/// (deduplicated).
fn reachable_options(spec: &MdesSpec) -> Vec<OptionId> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut out = Vec::new();
    for tree in reachable_or_trees(spec) {
        for &opt in &spec.or_tree(tree).options {
            if seen.insert(opt.index()) {
                out.push(opt);
            }
        }
    }
    out
}

/// True if the tree's first and last options are semantically distinct —
/// reversing or truncating a tree of duplicates would (correctly) pass
/// the oracle.
fn ends_distinct(spec: &MdesSpec, id: OrTreeId) -> bool {
    let options = &spec.or_tree(id).options;
    options.len() >= 2
        && spec.option(options[0]).canonical_usages()
            != spec.option(options[options.len() - 1]).canonical_usages()
}

/// Applies `kind` to `spec` at the first applicable *reachable* site (in
/// id order), so an injection is reproducible.  Returns a description of
/// what was corrupted, or `None` if the spec has no applicable site.
pub fn apply_fault(spec: &mut MdesSpec, kind: FaultKind) -> Option<String> {
    match kind {
        FaultKind::DropUsage => {
            let id = *reachable_options(spec)
                .iter()
                .find(|&&id| spec.option(id).usages.len() >= 2)?;
            let dropped = spec.option_mut(id).usages.pop()?;
            Some(format!(
                "dropped usage r{}@{} from option {}",
                dropped.resource.index(),
                dropped.time,
                id.index()
            ))
        }
        FaultKind::ReorderPriority => {
            let id = reachable_or_trees(spec)
                .into_iter()
                .find(|&id| ends_distinct(spec, id))?;
            spec.or_tree_mut(id).options.reverse();
            Some(format!(
                "reversed option priorities of or-tree {}",
                id.index()
            ))
        }
        FaultKind::ShiftTime => {
            // Shifting the only usage of a resource nobody else touches is
            // exactly the *legal* per-resource time shift, so target a
            // usage whose resource occurs elsewhere too: shifting one
            // occurrence but not the others breaks relative offsets.
            let options = reachable_options(spec);
            let mut occurrences = std::collections::BTreeMap::new();
            for &opt in &options {
                for usage in &spec.option(opt).usages {
                    *occurrences.entry(usage.resource.index()).or_insert(0usize) += 1;
                }
            }
            let (id, slot) = options.iter().find_map(|&opt| {
                spec.option(opt)
                    .usages
                    .iter()
                    .position(|u| occurrences.get(&u.resource.index()).copied().unwrap_or(0) >= 2)
                    .map(|slot| (opt, slot))
            })?;
            let usage = &mut spec.option_mut(id).usages[slot];
            usage.time = usage.time.saturating_add(1);
            let shifted = spec.option(id).usages[slot];
            Some(format!(
                "shifted usage r{}@{} of option {} (one occurrence only)",
                shifted.resource.index(),
                shifted.time,
                id.index()
            ))
        }
        FaultKind::OverPack => {
            let id = reachable_or_trees(spec)
                .into_iter()
                .find(|&id| ends_distinct(spec, id))?;
            let removed = spec.or_tree_mut(id).options.pop()?;
            Some(format!(
                "over-packed or-tree {}: removed distinct option {}",
                id.index(),
                removed.index()
            ))
        }
        FaultKind::ClearUsages => {
            let id = *reachable_options(spec)
                .iter()
                .find(|&&id| !spec.option(id).usages.is_empty())?;
            spec.option_mut(id).usages.clear();
            Some(format!("cleared every usage of option {}", id.index()))
        }
    }
}

/// A class of *binary image* corruption — damage to the serialized LMDES
/// bytes rather than to the in-memory spec.  These model what a serving
/// daemon sees when a reload source is bad: partial writes, disk/link bit
/// rot, tampered length fields, concatenation accidents.
///
/// Every kind in [`ImageFault::fatal`] is guaranteed to make
/// `mdes_core::lmdes::read` fail on any well-formed input image.
/// [`ImageFault::BitFlip`] may instead produce an image that still
/// decodes — possibly even to an equivalent description — which is
/// exactly the case the deeper [`crate::image::vet_image`] /
/// differential-oracle layers exist for.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ImageFault {
    /// Cut the image inside its fixed header (a write interrupted almost
    /// immediately).
    TruncateHeader,
    /// Cut the image at a seeded offset past the header (a partial
    /// write or truncated transfer).
    TruncateBody,
    /// Corrupt one byte of the magic/version prefix (wrong file, wrong
    /// format version).
    SmashMagic,
    /// Splice an absurd element count into the first count field (a
    /// tampered or bit-rotted length — the classic over-allocation DoS).
    HugeCount,
    /// Flip one seeded bit anywhere in the image.
    BitFlip,
    /// Append seeded garbage past the valid structure (concatenation or
    /// buffer-reuse accident).
    GarbageTail,
}

impl ImageFault {
    /// Every image corruption class, for exhaustive test loops.
    pub fn all() -> [ImageFault; 6] {
        [
            ImageFault::TruncateHeader,
            ImageFault::TruncateBody,
            ImageFault::SmashMagic,
            ImageFault::HugeCount,
            ImageFault::BitFlip,
            ImageFault::GarbageTail,
        ]
    }

    /// The subset guaranteed to be rejected by the decoder on any valid
    /// input image — what rollback tests inject when they need a reload
    /// that *must* fail.
    pub fn fatal() -> [ImageFault; 5] {
        [
            ImageFault::TruncateHeader,
            ImageFault::TruncateBody,
            ImageFault::SmashMagic,
            ImageFault::HugeCount,
            ImageFault::GarbageTail,
        ]
    }

    /// Short diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            ImageFault::TruncateHeader => "truncate-header",
            ImageFault::TruncateBody => "truncate-body",
            ImageFault::SmashMagic => "smash-magic",
            ImageFault::HugeCount => "huge-count",
            ImageFault::BitFlip => "bit-flip",
            ImageFault::GarbageTail => "garbage-tail",
        }
    }

    /// Parses an [`ImageFault::name`] back into the kind (for CLI flags).
    pub fn parse(name: &str) -> Option<ImageFault> {
        ImageFault::all().into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for ImageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of the splitmix64 stream — enough entropy for picking
/// corruption sites without pulling in a workload-grade RNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `fault` to a serialized LMDES image at a `seed`-chosen site.
/// Deterministic: equal `(image, fault, seed)` produce equal corruption.
/// The input is never mutated; an empty input comes back empty (there is
/// nothing to corrupt).
pub fn corrupt_image(image: &[u8], fault: ImageFault, seed: u64) -> Vec<u8> {
    let mut out = image.to_vec();
    if out.is_empty() {
        return out;
    }
    let mut state = seed ^ 0x4C_4D44_4553_u64; // "LMDES"
    let draw = splitmix(&mut state);
    match fault {
        ImageFault::TruncateHeader => {
            let cut = draw as usize % out.len().min(LMDES_HEADER_LEN);
            out.truncate(cut);
        }
        ImageFault::TruncateBody => {
            if out.len() <= LMDES_HEADER_LEN + 1 {
                // Too small to have a body; cutting the header still
                // yields a guaranteed-invalid image.
                out.truncate(draw as usize % out.len());
            } else {
                let span = out.len() - LMDES_HEADER_LEN - 1;
                out.truncate(LMDES_HEADER_LEN + draw as usize % span);
            }
        }
        ImageFault::SmashMagic => {
            let at = draw as usize % out.len().min(6); // the 6 magic bytes
            out[at] ^= 0x5A;
        }
        ImageFault::HugeCount => {
            // Offset 19 is the option-count field on a well-formed image;
            // on anything shorter, clobbering the tail is just as fatal.
            let at = LMDES_HEADER_LEN.min(out.len().saturating_sub(4));
            let end = (at + 4).min(out.len());
            out[at..end].copy_from_slice(&u32::MAX.to_le_bytes()[..end - at]);
        }
        ImageFault::BitFlip => {
            let bit = draw as usize % (out.len() * 8);
            out[bit / 8] ^= 1 << (bit % 8);
        }
        ImageFault::GarbageTail => {
            let extra = 1 + draw as usize % 32;
            for _ in 0..extra {
                out.push(splitmix(&mut state) as u8);
            }
        }
    }
    out
}
