//! Stage guard for the MDES optimization pipeline.
//!
//! The paper's transformations (Sections 5–8) are argued to be
//! semantics-preserving: "the exact same schedule is produced in each
//! case" (Section 4).  This crate makes the argument executable.  A
//! guarded run wraps every stage of [`mdes_opt::pipeline`] with:
//!
//! 1. a **structural validator** — the candidate spec must satisfy every
//!    [`MdesSpec`](mdes_core::spec::MdesSpec) invariant;
//! 2. a **differential query oracle** — deterministic seeded probe
//!    sequences and replay blocks run against the pre- and post-stage
//!    descriptions through the checker and the list scheduler, and every
//!    observable outcome must match.
//!
//! When a stage's output is rejected, the guard **rolls the stage back**
//! (the spec snapshot taken before the stage is restored), records a
//! structured [`GuardIncident`] — stage name, seed, and a minimized
//! failing probe — into the telemetry stream, and continues with the
//! remaining stages: graceful degradation instead of a corrupted
//! description.
//!
//! Because the oracle only *reads* the spec, a guarded run whose stages
//! all pass produces byte-identical output to an unguarded run.
//!
//! [`GuardConfig::inject`] carries fault-injection hooks used by the test
//! suite to corrupt stage output on purpose and prove each corruption
//! class ([`FaultKind`]) is detected and recovered from end to end.
//!
//! ```
//! use mdes_guard::{optimize_guarded, GuardConfig, GuardMode};
//! use mdes_opt::pipeline::PipelineConfig;
//!
//! let mut spec = mdes_lang::compile("
//!     resource Dec[2];
//!     or_tree AnyDec = first_of(
//!         { Dec[0] @ -1 },
//!         { Dec[0] @ -1 },   // copy-paste duplicate
//!         { Dec[1] @ -1 });
//!     class alu { constraint = AnyDec; }
//! ").unwrap();
//!
//! let guard = GuardConfig::oracle(42);
//! let report = optimize_guarded(&mut spec, &PipelineConfig::full(), &guard,
//!                               &mdes_telemetry::Telemetry::disabled());
//! assert!(report.incidents.is_empty());
//! assert_eq!(spec.num_options(), 2); // the duplicate still got merged
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod inject;
pub mod oracle;

use mdes_core::probe::ProbeConfig;
use mdes_core::spec::MdesSpec;
use mdes_opt::pipeline::{
    optimize_with_telemetry, run_stage, stage_plan, PipelineConfig, PipelineReport, StageId,
};
use mdes_sched::replay::ReplayConfig;
use mdes_telemetry::Telemetry;
use std::fmt;
use std::str::FromStr;

pub use image::{vet_image, ImageVetting, MAX_CHECK_TIME, MAX_LATENCY};
pub use inject::{apply_fault, corrupt_image, Fault, FaultKind, ImageFault};
pub use oracle::{differential_check, IncidentKind, OracleFailure};

/// How much checking a guarded run performs per stage.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum GuardMode {
    /// No per-stage checks: identical to the plain pipeline.
    #[default]
    Off,
    /// Structural validation only (cheap).
    Validate,
    /// Structural validation plus the differential query oracle.
    Oracle,
}

impl GuardMode {
    /// Diagnostic / CLI name (`off`, `validate`, `oracle`).
    pub fn name(self) -> &'static str {
        match self {
            GuardMode::Off => "off",
            GuardMode::Validate => "validate",
            GuardMode::Oracle => "oracle",
        }
    }
}

impl fmt::Display for GuardMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for GuardMode {
    type Err = String;

    fn from_str(s: &str) -> Result<GuardMode, String> {
        match s {
            "off" => Ok(GuardMode::Off),
            "validate" => Ok(GuardMode::Validate),
            "oracle" => Ok(GuardMode::Oracle),
            other => Err(format!(
                "unknown guard mode `{other}` (expected off, validate or oracle)"
            )),
        }
    }
}

/// Configuration of a guarded pipeline run.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardConfig {
    /// Checking level.
    pub mode: GuardMode,
    /// Master seed for probe sequences and replay blocks.  An incident
    /// records this seed; re-running with it reproduces the divergence.
    pub seed: u64,
    /// Number of probe sequences per stage boundary.
    pub sequences: u32,
    /// Operations per probe sequence.
    pub ops_per_sequence: u32,
    /// Probe issue times are drawn from `0..window`.
    pub window: i32,
    /// Replay blocks per stage boundary.
    pub replay_blocks: u32,
    /// Operations per replay block.
    pub ops_per_block: u32,
    /// Fault-injection hooks: corrupt the named stages' output before the
    /// guard checks them.  Test-only; empty in production runs.
    pub inject: Vec<Fault>,
    /// Run the [`mdes_analyze`] static pass on the input spec before any
    /// stage.  A fatal diagnostic (unsatisfiable class, latency-window
    /// overflow) refuses the pipeline the same way invalid input does —
    /// there is no point differentially probing a description that can
    /// never schedule.  Ignored under [`GuardMode::Off`].
    pub analyze: bool,
}

impl Default for GuardConfig {
    fn default() -> GuardConfig {
        GuardConfig {
            mode: GuardMode::Off,
            seed: 0x4d44_4553, // "MDES"
            sequences: 48,
            ops_per_sequence: 32,
            window: 4,
            replay_blocks: 8,
            ops_per_block: 16,
            inject: Vec::new(),
            analyze: true,
        }
    }
}

impl GuardConfig {
    /// Validation-only guard with the default seed.
    pub fn validate_only() -> GuardConfig {
        GuardConfig {
            mode: GuardMode::Validate,
            ..GuardConfig::default()
        }
    }

    /// Full oracle guard with the given seed.
    pub fn oracle(seed: u64) -> GuardConfig {
        GuardConfig {
            mode: GuardMode::Oracle,
            seed,
            ..GuardConfig::default()
        }
    }

    /// Adds a fault-injection hook (builder style, for tests).
    pub fn with_fault(mut self, stage: StageId, kind: FaultKind) -> GuardConfig {
        self.inject.push(Fault { stage, kind });
        self
    }

    /// The probe-engine view of this configuration.
    pub fn probe_config(&self) -> ProbeConfig {
        ProbeConfig {
            seed: self.seed,
            sequences: self.sequences,
            ops_per_sequence: self.ops_per_sequence,
            window: self.window,
        }
    }

    /// The schedule-replay view of this configuration.
    pub fn replay_config(&self) -> ReplayConfig {
        ReplayConfig {
            seed: self.seed,
            blocks: self.replay_blocks,
            ops_per_block: self.ops_per_block,
            dep_percent: 35,
        }
    }
}

/// One rejected (and rolled-back) stage.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardIncident {
    /// Name of the stage whose output was rejected (or `"input"` when the
    /// initial spec itself failed validation).
    pub stage: String,
    /// The seed that generated the failing probes; replaying with it
    /// reproduces the divergence.
    pub seed: u64,
    /// Which check rejected the stage.
    pub kind: IncidentKind,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Minimized failing probe script, when a checker probe caught it.
    pub probe: Option<String>,
}

impl fmt::Display for GuardIncident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] stage `{}` (seed {}): {}",
            self.kind, self.stage, self.seed, self.detail
        )?;
        if let Some(probe) = &self.probe {
            write!(f, "; probe: {probe}")?;
        }
        Ok(())
    }
}

/// The result of a guarded pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GuardedReport {
    /// Per-stage transformation reports (for stages that were kept).
    pub pipeline: PipelineReport,
    /// Every rejected stage, in pipeline order.
    pub incidents: Vec<GuardIncident>,
    /// Stages executed.
    pub stages_run: usize,
    /// Stages rejected and rolled back.
    pub stages_rolled_back: usize,
    /// Descriptions of injected faults that found an applicable site.
    pub injected: Vec<String>,
}

impl GuardedReport {
    /// True when every stage's output was accepted.
    pub fn clean(&self) -> bool {
        self.incidents.is_empty()
    }

    /// True if any incident is a structural-validation failure.
    pub fn has_validation_incident(&self) -> bool {
        self.incidents
            .iter()
            .any(|i| i.kind == IncidentKind::Validation)
    }

    /// True if any incident is a behavioural-oracle mismatch.
    pub fn has_oracle_incident(&self) -> bool {
        self.incidents.iter().any(|i| {
            matches!(
                i.kind,
                IncidentKind::OracleProbe | IncidentKind::OracleSchedule
            )
        })
    }
}

/// Records `incident` into `tel` as counters plus a structured
/// `guard/incident` event.
fn record_incident(tel: &Telemetry, incident: &GuardIncident) {
    tel.counter_add("guard/incidents", 1);
    tel.counter_add(&format!("guard/incidents/{}", incident.stage), 1);
    let seed = incident.seed.to_string();
    let mut fields: Vec<(&str, &str)> = vec![
        ("stage", incident.stage.as_str()),
        ("seed", seed.as_str()),
        ("kind", incident.kind.name()),
        ("detail", incident.detail.as_str()),
    ];
    if let Some(probe) = &incident.probe {
        fields.push(("probe", probe.as_str()));
    }
    tel.event("guard/incident", &fields);
}

/// Checks one stage's output against its pre-stage snapshot.
fn check_stage(pre: &MdesSpec, post: &MdesSpec, guard: &GuardConfig) -> Option<OracleFailure> {
    if let Err(err) = post.validate() {
        return Some(OracleFailure {
            kind: IncidentKind::Validation,
            detail: format!("structural validation failed: {err}"),
            probe: None,
        });
    }
    match guard.mode {
        GuardMode::Off | GuardMode::Validate => None,
        GuardMode::Oracle => differential_check(pre, post, guard),
    }
}

/// Runs the configured pipeline on `spec` under the guard.
///
/// With [`GuardMode::Off`] and no injected faults this is exactly
/// [`mdes_opt::pipeline::optimize_with_telemetry`].  Otherwise each stage
/// runs against a snapshot boundary: its output is validated (and, in
/// [`GuardMode::Oracle`], differentially probed) before being accepted;
/// rejected stages are rolled back and recorded, and the run continues.
pub fn optimize_guarded(
    spec: &mut MdesSpec,
    pipeline: &PipelineConfig,
    guard: &GuardConfig,
    tel: &Telemetry,
) -> GuardedReport {
    if guard.mode == GuardMode::Off && guard.inject.is_empty() {
        return GuardedReport {
            pipeline: optimize_with_telemetry(spec, pipeline, tel),
            ..GuardedReport::default()
        };
    }

    let mut report = GuardedReport::default();
    let _guard_span = tel.span("guard");

    // An invalid *input* is not a stage bug: record it and refuse to run
    // the pipeline on it at all (there is nothing to roll back to).
    if guard.mode != GuardMode::Off {
        if let Err(err) = spec.validate() {
            let incident = GuardIncident {
                stage: "input".to_string(),
                seed: guard.seed,
                kind: IncidentKind::Validation,
                detail: format!("input spec failed validation: {err}"),
                probe: None,
            };
            record_incident(tel, &incident);
            report.incidents.push(incident);
            return report;
        }
    }

    // Static analysis sits between validation and the oracle: a spec
    // with a fatal diagnostic is structurally fine but provably unable
    // to do its job, so refuse to optimize it (nothing to roll back to).
    if guard.mode != GuardMode::Off && guard.analyze {
        let analysis = mdes_analyze::analyze_spec_with_telemetry(spec, tel);
        if let Some(diag) = analysis.first_fatal() {
            let incident = GuardIncident {
                stage: "analyze".to_string(),
                seed: guard.seed,
                kind: IncidentKind::Analysis,
                detail: format!("static analysis found {}: {}", diag.code, diag.message),
                probe: None,
            };
            record_incident(tel, &incident);
            report.incidents.push(incident);
            return report;
        }
    }

    let _pipeline_span = tel.span("pipeline");
    for stage in stage_plan(pipeline) {
        let snapshot = spec.clone();
        run_stage(spec, stage, pipeline, &mut report.pipeline, tel);
        report.stages_run += 1;
        tel.counter_add("guard/stages", 1);

        for fault in guard.inject.iter().filter(|f| f.stage == stage) {
            if let Some(what) = apply_fault(spec, fault.kind) {
                report.injected.push(format!("{}: {what}", stage.name()));
            }
        }

        if guard.mode == GuardMode::Off {
            continue;
        }
        if let Some(failure) = check_stage(&snapshot, spec, guard) {
            *spec = snapshot;
            report.stages_rolled_back += 1;
            tel.counter_add("guard/rollbacks", 1);
            let incident = GuardIncident {
                stage: stage.name().to_string(),
                seed: guard.seed,
                kind: failure.kind,
                detail: failure.detail,
                probe: failure.probe,
            };
            record_incident(tel, &incident);
            report.incidents.push(incident);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdes_core::spec::{Constraint, Latency, OpFlags, OrTree, TableOption};
    use mdes_core::usage::ResourceUsage;
    use mdes_core::ResourceId;

    fn u(r: usize, t: i32) -> ResourceUsage {
        ResourceUsage::new(ResourceId::from_index(r), t)
    }

    /// Two decoders feeding a shared bus: duplicates to merge, distinct
    /// priorities, and enough contention for probes to observe anything.
    fn contended_spec() -> MdesSpec {
        let mut spec = MdesSpec::new();
        spec.resources_mut().add_indexed("Dec", 2).unwrap();
        spec.resources_mut().add("Bus").unwrap();
        let d0 = spec.add_option(TableOption::new(vec![u(0, 0), u(2, 1)]));
        let d0_dup = spec.add_option(TableOption::new(vec![u(0, 0), u(2, 1)]));
        let d1 = spec.add_option(TableOption::new(vec![u(1, 0), u(2, 1)]));
        let dec = spec.add_or_tree(OrTree::named("Dec", vec![d0, d0_dup, d1]));
        spec.add_class("op", Constraint::Or(dec), Latency::new(1), OpFlags::none())
            .unwrap();
        spec
    }

    #[test]
    fn clean_run_has_no_incidents_and_matches_unguarded() {
        let mut guarded = contended_spec();
        let mut plain = contended_spec();
        let report = optimize_guarded(
            &mut guarded,
            &PipelineConfig::full(),
            &GuardConfig::oracle(7),
            &Telemetry::disabled(),
        );
        mdes_opt::pipeline::optimize(&mut plain, &PipelineConfig::full());
        assert!(report.clean());
        assert_eq!(guarded, plain);
        assert!(report.stages_run > 0);
        assert_eq!(report.stages_rolled_back, 0);
    }

    #[test]
    fn invalid_input_is_reported_not_optimized() {
        let mut spec = MdesSpec::new(); // no classes: invalid
        let report = optimize_guarded(
            &mut spec,
            &PipelineConfig::full(),
            &GuardConfig::validate_only(),
            &Telemetry::disabled(),
        );
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].stage, "input");
        assert_eq!(report.stages_run, 0);
    }

    #[test]
    fn fatally_diagnosed_input_is_refused_before_any_stage() {
        // Two AND branches pinned to the same (resource, cycle) cell:
        // structurally valid, statically unschedulable (MD001).
        let mut spec = MdesSpec::new();
        spec.resources_mut().add("ALU").unwrap();
        let a = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let b = spec.add_option(TableOption::new(vec![u(0, 0)]));
        let ta = spec.add_or_tree(OrTree::new(vec![a]));
        let tb = spec.add_or_tree(OrTree::new(vec![b]));
        let and = spec.add_and_or_tree(mdes_core::spec::AndOrTree::new(vec![ta, tb]));
        spec.add_class(
            "stuck",
            Constraint::AndOr(and),
            Latency::new(1),
            OpFlags::none(),
        )
        .unwrap();
        spec.validate().unwrap();

        let report = optimize_guarded(
            &mut spec,
            &PipelineConfig::full(),
            &GuardConfig::validate_only(),
            &Telemetry::disabled(),
        );
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].stage, "analyze");
        assert_eq!(report.incidents[0].kind, IncidentKind::Analysis);
        assert!(report.incidents[0].detail.contains("MD001"));
        assert_eq!(report.stages_run, 0);

        // Opting out of the analyze stage restores the old behaviour: the
        // pipeline runs (the oracle itself cannot observe the defect —
        // the class fails to schedule identically before and after).
        let mut opted_out = spec.clone();
        let report = optimize_guarded(
            &mut opted_out,
            &PipelineConfig::full(),
            &GuardConfig {
                analyze: false,
                ..GuardConfig::validate_only()
            },
            &Telemetry::disabled(),
        );
        assert!(report.clean());
        assert!(report.stages_run > 0);
    }

    #[test]
    fn guard_mode_parses_and_displays() {
        for mode in [GuardMode::Off, GuardMode::Validate, GuardMode::Oracle] {
            assert_eq!(mode.name().parse::<GuardMode>().unwrap(), mode);
        }
        assert!("sometimes".parse::<GuardMode>().is_err());
    }

    #[test]
    fn incident_display_includes_probe() {
        let incident = GuardIncident {
            stage: "factor".to_string(),
            seed: 9,
            kind: IncidentKind::OracleProbe,
            detail: "diverged".to_string(),
            probe: Some("reserve c0@0; reserve c0@0".to_string()),
        };
        let text = incident.to_string();
        assert!(text.contains("factor"));
        assert!(text.contains("seed 9"));
        assert!(text.contains("probe: reserve"));
    }
}
