//! Image-level vetting for hot reload.
//!
//! [`crate::optimize_guarded`] protects a description while it is being
//! *optimized*; this module protects the moment a serving daemon is asked
//! to *promote* one.  A reloaded LMDES image has already passed
//! [`mdes_core::lmdes::read`], so every index is in range — but decoding
//! says nothing about whether the description is safe to schedule
//! against.  [`vet_image`] closes that gap with three layers, each
//! catching a failure class the previous one cannot:
//!
//! 1. **Serving-policy bounds** — pure structural checks the decoder
//!    deliberately leaves to policy: resource masks inside the declared
//!    pool, check times inside the declared `[min, max]` window and under
//!    [`MAX_CHECK_TIME`] (an unbounded time makes the RU map's window
//!    allocation proportional to it — an over-allocation attack),
//!    latencies under [`MAX_LATENCY`], and no class whose every option
//!    list is empty (an unsatisfiable class makes a list scheduler spin
//!    forever: the reservation fails at every cycle, so the op never
//!    places and the daemon hangs).
//! 2. **Probe smoke** — deterministic seeded reserve/query/release
//!    sequences replayed through the checker under `catch_unwind`, so a
//!    description that panics the checker is rejected instead of killing
//!    the worker that first touches it.
//! 3. **Schedule smoke** — a small seeded region stream generated *from
//!    the compiled image itself* ([`mdes_workload::
//!    generate_compiled_regions`]), list-scheduled, and re-verified
//!    against the dependence graph.  This exercises the full serving path
//!    (dep graph, scheduler, verifier) end to end before any client
//!    request does.
//!
//! A description that passes all three is promoted; any failure returns a
//! diagnostic and the caller keeps serving the old image.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mdes_core::probe::{self, ProbeConfig};
use mdes_core::CompiledMdes;
use mdes_sched::{CheckStats, DepGraph, ListScheduler};
use mdes_workload::{generate_compiled_regions, RegionConfig};

// The serving-policy bounds are owned by the static analyzer (its MD008
// window-overflow diagnostic enforces the same contract over specs);
// re-exported here so existing `mdes_guard::MAX_CHECK_TIME` users keep
// compiling and the two layers can never disagree on the limit.
pub use mdes_analyze::{MAX_CHECK_TIME, MAX_LATENCY};

/// What [`vet_image`] exercised on the accepted description.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ImageVetting {
    /// Probe sequences replayed through the checker.
    pub probe_sequences: usize,
    /// Regions scheduled and re-verified against the dependence graph.
    pub scheduled_blocks: usize,
}

/// Vets a decoded description for serving.  Deterministic in `(mdes,
/// seed)`.  On `Err`, the returned string says which layer rejected it
/// and why; the caller must keep its previous description.
pub fn vet_image(mdes: &CompiledMdes, seed: u64) -> Result<ImageVetting, String> {
    structural_check(mdes)?;
    let probe_sequences = probe_smoke(mdes, seed)?;
    let scheduled_blocks = schedule_smoke(mdes, seed)?;
    Ok(ImageVetting {
        probe_sequences,
        scheduled_blocks,
    })
}

/// Layer 1: serving-policy bounds over the decoded structure.
fn structural_check(mdes: &CompiledMdes) -> Result<(), String> {
    if mdes.classes().is_empty() {
        return Err("image has no operation classes".into());
    }
    if mdes.classes().iter().all(|class| class.flags.branch) {
        return Err("image has no schedulable non-branch class".into());
    }

    let (min, max) = (mdes.min_check_time(), mdes.max_check_time());
    if min > max {
        return Err(format!("check-time window is inverted ({min} > {max})"));
    }
    if min < -MAX_CHECK_TIME || max > MAX_CHECK_TIME {
        return Err(format!(
            "check-time window [{min}, {max}] exceeds the serving bound ±{MAX_CHECK_TIME}"
        ));
    }

    let resources = mdes.num_resources();
    for idx in 0..mdes.num_options() {
        for check in mdes.option_checks(idx) {
            if check.time < min || check.time > max {
                return Err(format!(
                    "option {idx} probes time {} outside the declared window [{min}, {max}]",
                    check.time
                ));
            }
            if resources < 64 && check.mask >> resources != 0 {
                return Err(format!(
                    "option {idx} probes resources outside the declared pool of {resources}"
                ));
            }
        }
    }

    for (index, class) in mdes.classes().iter().enumerate() {
        let satisfiable = class
            .or_trees
            .iter()
            .all(|&tree| !mdes.or_trees()[tree as usize].options.is_empty());
        if class.or_trees.is_empty() || !satisfiable {
            return Err(format!(
                "class {index} (`{}`) is unsatisfiable: an empty option list can never reserve",
                class.name
            ));
        }
        let latency = class.latency;
        for (field, value) in [
            ("dest", latency.dest),
            ("src", latency.src),
            ("mem", latency.mem),
        ] {
            if value.abs() > MAX_LATENCY {
                return Err(format!(
                    "class {index} (`{}`) {field} latency {value} exceeds the serving bound \
                     ±{MAX_LATENCY}",
                    class.name
                ));
            }
        }
    }

    for &(p, c, latency) in mdes.bypasses() {
        if latency.abs() > MAX_LATENCY {
            return Err(format!(
                "bypass {p}->{c} latency {latency} exceeds the serving bound ±{MAX_LATENCY}"
            ));
        }
    }
    Ok(())
}

/// Layer 2: replay seeded probe sequences, converting a checker panic
/// into a rejection.
fn probe_smoke(mdes: &CompiledMdes, seed: u64) -> Result<usize, String> {
    let config = ProbeConfig {
        seed,
        sequences: 12,
        ops_per_sequence: 24,
        window: 4,
    };
    let sequences = probe::generate_sequences(&config, mdes.classes().len());
    let count = sequences.len();
    catch_unwind(AssertUnwindSafe(|| {
        for ops in &sequences {
            probe::run_sequence(mdes, ops);
        }
    }))
    .map_err(|_| "probe smoke panicked inside the checker; description rejected".to_string())?;
    Ok(count)
}

/// Layer 3: schedule a small seeded region stream end to end and verify
/// every schedule against its dependence graph.
fn schedule_smoke(mdes: &CompiledMdes, seed: u64) -> Result<usize, String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<usize, String> {
        let config = RegionConfig::new(8)
            .with_seed(seed ^ 0x5EED_1A6E)
            .with_mean_ops(6);
        let workload = generate_compiled_regions(mdes, &config);
        let scheduler = ListScheduler::new(mdes);
        let mut stats = CheckStats::new();
        for (index, block) in workload.blocks.iter().enumerate() {
            let graph = DepGraph::build(block, mdes);
            let schedule = scheduler.schedule_with_graph(block, &graph, &mut stats);
            schedule
                .verify(&graph, mdes)
                .map_err(|why| format!("schedule smoke: region {index} failed to verify: {why}"))?;
        }
        Ok(workload.blocks.len())
    }));
    outcome.map_err(|_| {
        "schedule smoke panicked inside the scheduler; description rejected".to_string()
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{corrupt_image, ImageFault};
    use mdes_core::compile::{
        CompiledCheck, CompiledClass, CompiledOption, CompiledOrTree, ConstraintKind,
    };
    use mdes_core::lmdes;
    use mdes_core::spec::{Latency, OpFlags};
    use mdes_core::UsageEncoding;
    use mdes_machines::Machine;

    fn compiled(machine: Machine) -> CompiledMdes {
        CompiledMdes::compile(&machine.spec(), UsageEncoding::BitVector).unwrap()
    }

    #[test]
    fn every_bundled_machine_image_is_accepted() {
        for machine in Machine::all() {
            let mdes = compiled(machine);
            let roundtripped = lmdes::read(&lmdes::write(&mdes)).unwrap();
            let vetting =
                vet_image(&roundtripped, 7).unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
            assert!(vetting.probe_sequences > 0);
            assert!(vetting.scheduled_blocks > 0);
        }
    }

    #[test]
    fn vetting_is_deterministic() {
        let mdes = compiled(Machine::K5);
        assert_eq!(vet_image(&mdes, 3), vet_image(&mdes, 3));
    }

    /// Builds a decodable single-class description by hand so individual
    /// policy violations can be planted.
    fn tiny(check_time: i32, latency: i32, tree_options: Vec<u32>) -> CompiledMdes {
        CompiledMdes::from_parts(
            UsageEncoding::BitVector,
            2,
            vec![CompiledOption {
                checks: vec![CompiledCheck {
                    time: check_time,
                    mask: 0b01,
                }],
            }],
            vec![CompiledOrTree {
                options: tree_options,
            }],
            vec![CompiledClass {
                name: "alu".into(),
                kind: ConstraintKind::Or,
                or_trees: vec![0],
                and_or_index: 0,
                latency: Latency::new(latency),
                flags: OpFlags::none(),
            }],
            Vec::new(),
            check_time.min(0),
            check_time.max(0),
        )
        .unwrap()
    }

    #[test]
    fn unbounded_check_times_are_rejected() {
        let why = vet_image(&tiny(1_000_000, 1, vec![0]), 0).unwrap_err();
        assert!(why.contains("serving bound"), "{why}");
    }

    #[test]
    fn unbounded_latencies_are_rejected() {
        let why = vet_image(&tiny(0, 1_000_000, vec![0]), 0).unwrap_err();
        assert!(why.contains("latency"), "{why}");
    }

    #[test]
    fn unsatisfiable_classes_are_rejected() {
        // An AndOr class referencing an empty tree decodes fine but can
        // never reserve — the scheduler would spin on it forever.
        let mdes = CompiledMdes::from_parts(
            UsageEncoding::BitVector,
            2,
            vec![CompiledOption {
                checks: vec![CompiledCheck { time: 0, mask: 1 }],
            }],
            vec![CompiledOrTree { options: vec![] }],
            vec![CompiledClass {
                name: "alu".into(),
                kind: ConstraintKind::AndOr,
                or_trees: vec![0],
                and_or_index: 0,
                latency: Latency::new(1),
                flags: OpFlags::none(),
            }],
            Vec::new(),
            0,
            0,
        )
        .unwrap();
        let why = vet_image(&mdes, 0).unwrap_err();
        assert!(why.contains("unsatisfiable"), "{why}");
    }

    #[test]
    fn masks_outside_the_resource_pool_are_rejected() {
        let mdes = CompiledMdes::from_parts(
            UsageEncoding::BitVector,
            2,
            vec![CompiledOption {
                checks: vec![CompiledCheck {
                    time: 0,
                    mask: 0b100, // resource 2 of a 2-resource pool
                }],
            }],
            vec![CompiledOrTree { options: vec![0] }],
            vec![CompiledClass {
                name: "alu".into(),
                kind: ConstraintKind::Or,
                or_trees: vec![0],
                and_or_index: 0,
                latency: Latency::new(1),
                flags: OpFlags::none(),
            }],
            Vec::new(),
            0,
            0,
        )
        .unwrap();
        let why = vet_image(&mdes, 0).unwrap_err();
        assert!(why.contains("outside the declared pool"), "{why}");
    }

    #[test]
    fn fatal_image_faults_never_survive_decode() {
        // Every guaranteed-fatal corruption class, applied to every
        // bundled machine image at several seeds, must be rejected by the
        // decoder — and must never panic it.
        for machine in Machine::all() {
            let image = lmdes::write(&compiled(machine));
            for fault in ImageFault::fatal() {
                for seed in 0..8 {
                    let corrupted = corrupt_image(&image, fault, seed);
                    assert!(
                        lmdes::read(&corrupted).is_err(),
                        "{} survived {fault} seed {seed}",
                        machine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bit_flips_are_rejected_or_decode_to_a_vettable_image() {
        // A single bit flip may not be decoder-detectable; whatever
        // decodes must either fail the vet or be structurally servable.
        for machine in Machine::all() {
            let image = lmdes::write(&compiled(machine));
            for seed in 0..64 {
                let corrupted = corrupt_image(&image, ImageFault::BitFlip, seed);
                if let Ok(mdes) = lmdes::read(&corrupted) {
                    // Either verdict is acceptable; the call must simply
                    // never panic or hang.
                    let _ = vet_image(&mdes, seed);
                }
            }
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let image = lmdes::write(&compiled(Machine::Pentium));
        for fault in ImageFault::all() {
            assert_eq!(
                corrupt_image(&image, fault, 42),
                corrupt_image(&image, fault, 42)
            );
        }
    }
}
