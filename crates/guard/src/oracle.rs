//! The differential query oracle for one stage boundary.
//!
//! Given the spec as it stood *before* a stage and the candidate spec the
//! stage produced, the oracle decides whether the two are observably
//! equivalent:
//!
//! 1. **structural validation** — the candidate must satisfy every
//!    [`MdesSpec`] invariant (the existing [`MdesError`] taxonomy);
//! 2. **checker probes** — seeded reserve/release/conflict-query
//!    sequences replay against both compiled forms and their outcome
//!    traces must match ([`mdes_core::probe`]);
//! 3. **schedule replay** — seeded basic blocks are list-scheduled
//!    against both forms and must produce identical issue cycles
//!    ([`mdes_sched::replay`]).
//!
//! Any disagreement yields an [`OracleFailure`] describing what diverged,
//! including a minimized failing probe when the checker level caught it.

use mdes_core::compile::{CompiledMdes, UsageEncoding};
use mdes_core::probe::{self, ProbeOp};
use mdes_core::spec::MdesSpec;
use mdes_sched::replay;

use crate::GuardConfig;

/// Which guard check rejected a stage's output.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IncidentKind {
    /// Structural validation failed ([`MdesSpec::validate`] or
    /// compilation of the candidate spec).
    Validation,
    /// Static analysis found a fatal diagnostic — the input description
    /// is provably broken (e.g. an [unsatisfiable class](mdes_analyze))
    /// before any stage runs.
    Analysis,
    /// A checker-level probe sequence diverged.
    OracleProbe,
    /// A replayed basic block scheduled differently.
    OracleSchedule,
}

impl IncidentKind {
    /// Short diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::Validation => "validation",
            IncidentKind::Analysis => "analysis",
            IncidentKind::OracleProbe => "oracle-probe",
            IncidentKind::OracleSchedule => "oracle-schedule",
        }
    }
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected stage output: what diverged and the evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleFailure {
    /// Which check failed.
    pub kind: IncidentKind,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// The minimized failing probe sequence, when a checker probe caught
    /// it (rendered via [`probe::render_sequence`]).
    pub probe: Option<String>,
}

/// Runs checks 2 and 3 (the behavioural oracle) on an already
/// structurally-valid candidate.  `None` means observably equivalent.
pub fn differential_check(
    pre: &MdesSpec,
    post: &MdesSpec,
    config: &GuardConfig,
) -> Option<OracleFailure> {
    if pre.num_classes() != post.num_classes() {
        return Some(OracleFailure {
            kind: IncidentKind::Validation,
            detail: format!(
                "stage changed the class count: {} -> {}",
                pre.num_classes(),
                post.num_classes()
            ),
            probe: None,
        });
    }
    let compiled_pre = match CompiledMdes::compile(pre, UsageEncoding::BitVector) {
        Ok(c) => c,
        Err(err) => {
            return Some(OracleFailure {
                kind: IncidentKind::Validation,
                detail: format!("pre-stage spec failed to compile: {err}"),
                probe: None,
            })
        }
    };
    let compiled_post = match CompiledMdes::compile(post, UsageEncoding::BitVector) {
        Ok(c) => c,
        Err(err) => {
            return Some(OracleFailure {
                kind: IncidentKind::Validation,
                detail: format!("post-stage spec failed to compile: {err}"),
                probe: None,
            })
        }
    };

    let sequences = probe::generate_sequences(&config.probe_config(), pre.num_classes());
    if let Some(div) = probe::find_divergence(&compiled_pre, &compiled_post, &sequences) {
        let minimized =
            probe::minimize_sequence(&compiled_pre, &compiled_post, &sequences[div.sequence]);
        return Some(OracleFailure {
            kind: IncidentKind::OracleProbe,
            detail: format!(
                "probe sequence {} diverged at op {} ({} op{} after minimization)",
                div.sequence,
                div.op_index,
                minimized.len(),
                if minimized.len() == 1 { "" } else { "s" }
            ),
            probe: Some(probe::render_sequence(&minimized)),
        });
    }

    let blocks = replay::replay_blocks(pre.num_classes(), &config.replay_config());
    if let Some((block, before, after)) =
        replay::find_schedule_divergence(&compiled_pre, &compiled_post, &blocks)
    {
        return Some(OracleFailure {
            kind: IncidentKind::OracleSchedule,
            detail: format!("replay block {block} scheduled differently: {before:?} vs {after:?}"),
            probe: None,
        });
    }

    None
}

/// Re-runs a recorded probe script against two compiled specs — the
/// reproduction path for a stored incident (same seed ⇒ same sequences ⇒
/// same divergence).
pub fn replay_probe(a: &CompiledMdes, b: &CompiledMdes, ops: &[ProbeOp]) -> bool {
    probe::run_sequence(a, ops) == probe::run_sequence(b, ops)
}
