//! End-to-end guard tests: every fault-injection corruption class must be
//! detected by the oracle, rolled back, surfaced in telemetry, and must
//! not prevent the remaining stages from running; a clean run must be
//! invisible (zero incidents, byte-identical output).

use mdes_core::compile::{CompiledMdes, UsageEncoding};
use mdes_core::lmdes;
use mdes_core::spec::MdesSpec;
use mdes_guard::{optimize_guarded, FaultKind, GuardConfig, GuardMode, IncidentKind};
use mdes_machines::Machine;
use mdes_opt::pipeline::{optimize, PipelineConfig, StageId};
use mdes_telemetry::Telemetry;

/// A machine with enough structure for every corruption class to have an
/// applicable, *observable* site.  The decode options use **disjoint**
/// resources (so neither is dead and priority matters), and two
/// single-resource classes can observe exactly which side effect a decode
/// option had — the probes that distinguish a priority reversal.
fn fixture() -> MdesSpec {
    mdes_lang::compile(
        "
        resource Dec[2];
        resource Bus;
        resource Port;
        or_tree AnyDec = first_of(
            { Dec[0] @ 0, Port @ 1 },
            { Dec[1] @ 0, Bus @ 1 });
        or_tree BusT  = first_of({ Bus @ 0 });
        or_tree PortT = first_of({ Port @ 0 });
        class alu     { constraint = AnyDec; latency = 1; }
        class bus_op  { constraint = BusT;   latency = 1; }
        class port_op { constraint = PortT;  latency = 2; }
        ",
    )
    .expect("fixture must compile")
}

/// Runs the full pipeline with `kind` injected after `stage`, returning
/// the guarded report, telemetry report, and the resulting spec.
fn run_injected(
    stage: StageId,
    kind: FaultKind,
) -> (mdes_guard::GuardedReport, mdes_telemetry::Report, MdesSpec) {
    let mut spec = fixture();
    let tel = Telemetry::new();
    let guard = GuardConfig::oracle(1234).with_fault(stage, kind);
    let report = optimize_guarded(&mut spec, &PipelineConfig::full(), &guard, &tel);
    (report, tel.report(), spec)
}

/// Asserts the common detection + rollback + continue contract for one
/// corruption class injected at `stage`.
fn assert_detected_and_recovered(stage: StageId, kind: FaultKind) {
    let (report, tel, spec) = run_injected(stage, kind);

    // The fault found a site and the guard rejected exactly that stage.
    assert!(
        !report.injected.is_empty(),
        "{kind}: fault found no applicable site in the fixture"
    );
    assert_eq!(
        report.incidents.len(),
        1,
        "{kind}: expected exactly one incident, got {:?}",
        report.incidents
    );
    let incident = &report.incidents[0];
    assert_eq!(incident.stage, stage.name(), "{kind}: wrong stage blamed");
    assert_eq!(incident.seed, 1234);
    assert_eq!(report.stages_rolled_back, 1);

    // Rollback-then-continue: the remaining stages still ran …
    assert_eq!(report.stages_run, 6, "{kind}: pipeline stopped early");
    // … and the surviving spec is exactly what the pipeline produces when
    // the corrupted stage is skipped outright (the rollback semantics).
    assert!(spec.validate().is_ok(), "{kind}: rolled-back spec invalid");

    // The corrupted result must NOT equal the healthy pipeline output of
    // that stage being applied with the corruption kept: i.e. the guard
    // actually discarded the damage.  Verify behaviourally — the guarded
    // spec must answer probes exactly like the never-corrupted input.
    let probes = mdes_core::probe::generate_sequences(
        &GuardConfig::oracle(1234).probe_config(),
        spec.num_classes(),
    );
    let healthy = CompiledMdes::compile(&fixture(), UsageEncoding::BitVector).unwrap();
    let survived = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
    assert!(
        mdes_core::probe::find_divergence(&healthy, &survived, &probes).is_none(),
        "{kind}: surviving spec is not behaviourally equivalent to the input"
    );

    // The incident surfaced in the telemetry JSON.
    assert_eq!(tel.counter("guard/incidents"), Some(1));
    assert_eq!(
        tel.counter(&format!("guard/incidents/{}", stage.name())),
        Some(1)
    );
    let events: Vec<_> = tel.events_named("guard/incident").collect();
    assert_eq!(events.len(), 1, "{kind}: missing guard/incident event");
    assert_eq!(events[0].fields["stage"], stage.name());
    assert_eq!(events[0].fields["seed"], "1234");
    let json = tel.to_json();
    assert!(
        json.contains("guard/incident"),
        "{kind}: incident absent from telemetry JSON"
    );
    let parsed = mdes_telemetry::Report::from_json(&json).unwrap();
    assert_eq!(parsed.events_named("guard/incident").count(), 1);
}

#[test]
fn dropped_usage_is_detected_and_rolled_back() {
    assert_detected_and_recovered(StageId::Redundancy, FaultKind::DropUsage);
}

#[test]
fn priority_reorder_is_detected_and_rolled_back() {
    assert_detected_and_recovered(StageId::Dominance, FaultKind::ReorderPriority);
}

#[test]
fn bad_timeshift_is_detected_and_rolled_back() {
    assert_detected_and_recovered(StageId::TimeShift, FaultKind::ShiftTime);
}

#[test]
fn over_packing_is_detected_and_rolled_back() {
    assert_detected_and_recovered(StageId::Factor, FaultKind::OverPack);
}

#[test]
fn cleared_usages_are_caught_by_the_validator_layer_alone() {
    // A structurally-invalid stage output is rejected even in the cheap
    // `validate` mode — the oracle is not needed for this class.
    let mut spec = fixture();
    let guard = GuardConfig {
        mode: GuardMode::Validate,
        ..GuardConfig::default()
    }
    .with_fault(StageId::Dominance, FaultKind::ClearUsages);
    let tel = Telemetry::new();
    let report = optimize_guarded(&mut spec, &PipelineConfig::full(), &guard, &tel);
    assert!(!report.injected.is_empty());
    assert_eq!(report.incidents.len(), 1);
    assert_eq!(report.incidents[0].kind, IncidentKind::Validation);
    assert_eq!(report.incidents[0].stage, StageId::Dominance.name());
    assert_eq!(report.stages_rolled_back, 1);
    assert_eq!(report.stages_run, 6);
    assert!(spec.validate().is_ok());
    assert_eq!(tel.report().counter("guard/incidents"), Some(1));
}

#[test]
fn incident_records_a_minimized_probe_for_checker_divergences() {
    let (report, _, _) = run_injected(StageId::Redundancy, FaultKind::DropUsage);
    let incident = &report.incidents[0];
    if incident.kind == IncidentKind::OracleProbe {
        let probe = incident.probe.as_deref().expect("probe missing");
        assert!(
            probe.contains("reserve") || probe.contains("query"),
            "{probe}"
        );
        // A minimized witness is short; the full sequence is 32 ops.
        assert!(probe.split(';').count() <= 8, "not minimized: {probe}");
    } else {
        panic!("drop-usage should diverge at the checker level: {incident}");
    }
}

#[test]
fn validate_mode_refuses_a_structurally_broken_input() {
    let mut spec = mdes_lang::compile(
        "resource ALU;
         resource Bus;
         or_tree A = first_of({ ALU @ 0, Bus @ 0 });
         class alu { constraint = A; latency = 1; }",
    )
    .unwrap();
    // Corrupt into a structurally-broken state: an empty option.
    let opt = spec.option_ids().next().unwrap();
    spec.option_mut(opt).usages.clear();
    assert!(spec.validate().is_err());

    let tel = Telemetry::new();
    let report = optimize_guarded(
        &mut spec,
        &PipelineConfig::full(),
        &GuardConfig::validate_only(),
        &tel,
    );
    assert!(report.has_validation_incident());
    assert_eq!(report.incidents[0].stage, "input");
    assert_eq!(report.stages_run, 0);
    assert_eq!(tel.report().counter("guard/incidents"), Some(1));
}

#[test]
fn guard_mode_off_lets_injected_corruption_through() {
    // The control experiment: with the guard off the same corruption
    // ships silently — exactly the failure mode the guard exists to stop.
    let mut spec = fixture();
    let guard = GuardConfig {
        mode: GuardMode::Off,
        inject: vec![mdes_guard::Fault {
            stage: StageId::Redundancy,
            kind: FaultKind::DropUsage,
        }],
        ..GuardConfig::default()
    };
    let report = optimize_guarded(
        &mut spec,
        &PipelineConfig::full(),
        &guard,
        &Telemetry::disabled(),
    );
    assert!(report.incidents.is_empty());
    assert!(!report.injected.is_empty());
    // The damage is present in the output: fewer total usages than the
    // healthy pipeline would leave.
    let mut healthy = fixture();
    optimize(&mut healthy, &PipelineConfig::full());
    let usages =
        |s: &MdesSpec| -> usize { s.option_ids().map(|id| s.option(id).usages.len()).sum() };
    assert!(usages(&spec) < usages(&healthy));
}

#[test]
fn bundled_machines_run_clean_and_byte_identical() {
    for machine in Machine::all() {
        let base = machine.spec();

        let mut unguarded = base.clone();
        optimize(&mut unguarded, &PipelineConfig::full());

        let mut guarded = base.clone();
        let tel = Telemetry::new();
        let report = optimize_guarded(
            &mut guarded,
            &PipelineConfig::full(),
            &GuardConfig::oracle(2024),
            &tel,
        );

        assert!(
            report.clean(),
            "{}: unexpected incidents: {:?}",
            machine.name(),
            report.incidents
        );
        assert_eq!(tel.report().counter("guard/incidents"), None);
        assert_eq!(guarded, unguarded, "{}: specs differ", machine.name());

        // Byte-identical low-level output.
        let img_a =
            lmdes::write(&CompiledMdes::compile(&unguarded, UsageEncoding::BitVector).unwrap());
        let img_b =
            lmdes::write(&CompiledMdes::compile(&guarded, UsageEncoding::BitVector).unwrap());
        assert_eq!(img_a, img_b, "{}: LMDES images differ", machine.name());
    }
}

#[test]
fn incidents_reproduce_from_their_seed() {
    // Same seed, same fault: the guard must report the identical incident
    // twice (determinism is what makes stored incidents actionable).
    let (a, _, _) = run_injected(StageId::Redundancy, FaultKind::DropUsage);
    let (b, _, _) = run_injected(StageId::Redundancy, FaultKind::DropUsage);
    assert_eq!(a.incidents, b.incidents);
    // A different seed may find a different witness but must still detect.
    let mut spec = fixture();
    let guard = GuardConfig::oracle(999).with_fault(StageId::Redundancy, FaultKind::DropUsage);
    let report = optimize_guarded(
        &mut spec,
        &PipelineConfig::full(),
        &guard,
        &Telemetry::disabled(),
    );
    assert_eq!(report.incidents.len(), 1);
    assert_eq!(report.incidents[0].seed, 999);
}
