//! Every fatal image-corruption class maps to a distinct static code.
//!
//! `guard`'s rollback tests prove the five fatal [`ImageFault`] classes
//! are *rejected*; this table proves they are rejected **statically and
//! distinguishably** — `mdes_analyze::analyze_image` classifies each
//! class into its own stable `MD10x` diagnostic, across many corruption
//! seeds, on every bundled machine image.

use mdes_analyze::analyze_image;
use mdes_core::compile::{CompiledMdes, UsageEncoding};
use mdes_core::lmdes;
use mdes_guard::{corrupt_image, ImageFault};
use mdes_machines::Machine;

fn bundled_images() -> Vec<(String, Vec<u8>)> {
    let mut specs: Vec<(String, mdes_core::spec::MdesSpec)> = Machine::all()
        .into_iter()
        .map(|m| (m.name().to_lowercase(), m.spec()))
        .collect();
    specs.push(("pentiumpro".into(), mdes_machines::pentium_pro()));
    specs.push((
        "superspark_approx".into(),
        mdes_machines::approximate_superspark(),
    ));
    specs
        .into_iter()
        .map(|(name, spec)| {
            let mdes = CompiledMdes::compile(&spec, UsageEncoding::BitVector).unwrap();
            (name, lmdes::write(&mdes))
        })
        .collect()
}

/// fault class -> the one diagnostic code it must always produce.
const EXPECTED: [(ImageFault, &str); 5] = [
    (ImageFault::SmashMagic, "MD101"),
    (ImageFault::TruncateHeader, "MD102"),
    (ImageFault::TruncateBody, "MD103"),
    (ImageFault::HugeCount, "MD104"),
    (ImageFault::GarbageTail, "MD105"),
];

#[test]
fn every_fatal_fault_class_gets_its_own_code() {
    for (machine, image) in bundled_images() {
        for (fault, code) in EXPECTED {
            for seed in 0..32u64 {
                let corrupt = corrupt_image(&image, fault, seed);
                let analysis = analyze_image(&corrupt);
                assert!(
                    analysis.has_fatal(),
                    "{machine}/{fault}/seed {seed}: corruption passed triage"
                );
                assert_eq!(
                    analysis.diagnostics[0].code, code,
                    "{machine}/{fault}/seed {seed}: {:?}",
                    analysis.diagnostics
                );
            }
        }
    }
}

#[test]
fn expected_table_covers_exactly_the_fatal_classes() {
    let mut table: Vec<ImageFault> = EXPECTED.iter().map(|&(f, _)| f).collect();
    let mut fatal = ImageFault::fatal().to_vec();
    table.sort_by_key(|f| f.name());
    fatal.sort_by_key(|f| f.name());
    assert_eq!(table, fatal);
    // ...and the codes are pairwise distinct.
    for (i, &(_, a)) in EXPECTED.iter().enumerate() {
        for &(_, b) in &EXPECTED[i + 1..] {
            assert_ne!(a, b);
        }
    }
}

/// The sixth class, `BitFlip`, may produce an image that still decodes;
/// triage must agree with the decoder either way — never accept what the
/// loader rejects, never invent a defect the loader accepts.
#[test]
fn bit_flips_triage_exactly_as_the_decoder_decides() {
    for (machine, image) in bundled_images() {
        for seed in 0..64u64 {
            let corrupt = corrupt_image(&image, ImageFault::BitFlip, seed);
            let decoded = lmdes::read(&corrupt);
            let analysis = analyze_image(&corrupt);
            assert_eq!(
                decoded.is_err(),
                analysis.has_fatal(),
                "{machine}/seed {seed}: decoder {decoded:?} vs triage {:?}",
                analysis.diagnostics
            );
        }
    }
}
